"""Reduction of matrix scenario results into a library verdict.

The reduction mirrors the cell-abutment auto-fix flow: per cell, a
*standalone* verdict (is the cell clean in isolation?) and an
*in-abutment* verdict (is it clean against every neighbor?); across
cells, the *weak-pair ranking* (unordered pairs by total findings over
orders, flips, corners, and checks) and a *fix-priority* ordering that
puts the cells implicated in the most findings first — flagging the
especially interesting ones that are clean standalone but weak abutted.

Everything in the report is derived from the JSON-pure scenario results,
so two runs that executed the same scenarios — at any worker count, in
process or through a daemon — reduce to the same report
(:meth:`LibraryComplianceReport.comparable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.report import BaseReport

from repro.matrix.scenarios import MatrixSpec, Scenario


@dataclass
class LibraryComplianceReport(BaseReport):
    """The library-scale compliance verdict (see module docstring)."""

    nodes: tuple[int, ...]
    cells: tuple[str, ...]
    checks: tuple[str, ...]
    corners: int
    scenario_count: int
    unique_windows: int
    deduped: int
    scenarios: list[dict]
    cell_verdicts: dict[str, dict]
    weak_pairs: list[dict]
    fix_priority: list[str]
    store: dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def findings(self) -> Sequence[dict]:
        """The failing scenario rows."""
        return [row for row in self.scenarios if row["findings"]]

    def comparable(self) -> dict[str, Any]:
        """The path-independent core: identical for the same spec no
        matter how (or how parallel) the scenarios were executed."""
        return {
            "cell_verdicts": self.cell_verdicts,
            "weak_pairs": self.weak_pairs,
            "fix_priority": self.fix_priority,
            "scenarios": self.scenarios,
        }

    def summary(self) -> str:
        status = "clean" if self.ok else f"{self.findings_count} failing scenarios"
        weak = (
            ", weakest pair " + "|".join(self.weak_pairs[0]["pair"])
            if self.weak_pairs
            else ""
        )
        return (
            f"LibraryComplianceReport: {status} of {self.scenario_count} "
            f"({len(self.cells)} cells x {len(self.nodes)} nodes, "
            f"{self.unique_windows} unique windows, {self.deduped} deduped{weak})"
        )


def build_report(
    spec: MatrixSpec,
    scenarios: list[Scenario],
    results: list[dict],
    *,
    cells: tuple[str, ...],
    store_stats: dict[str, Any],
    elapsed_s: float,
) -> LibraryComplianceReport:
    """Reduce per-scenario results (aligned with ``scenarios``) into the
    library report."""
    rows: list[dict] = []
    standalone: dict[str, int] = {c: 0 for c in cells}
    abutment: dict[str, int] = {c: 0 for c in cells}
    pair_findings: dict[tuple[str, str], int] = {}
    pair_scenarios: dict[tuple[str, str], int] = {}

    for scenario, result in zip(scenarios, results):
        findings = int(result["findings"])
        row = scenario.row()
        row["findings"] = findings
        row["ok"] = findings == 0
        row["result"] = result
        rows.append(row)
        if scenario.kind == "standalone":
            standalone[scenario.cell_a] += findings
        else:
            abutment[scenario.cell_a] += findings
            abutment[scenario.cell_b] += findings
            pair = tuple(sorted((scenario.cell_a, scenario.cell_b)))
            pair_findings[pair] = pair_findings.get(pair, 0) + findings
            pair_scenarios[pair] = pair_scenarios.get(pair, 0) + 1

    cell_verdicts = {
        c: {
            "standalone_ok": standalone[c] == 0,
            "abutment_ok": abutment[c] == 0,
            "standalone_findings": standalone[c],
            "abutment_findings": abutment[c],
            "abutment_only_weak": standalone[c] == 0 and abutment[c] > 0,
        }
        for c in cells
    }

    weak_pairs = [
        {
            "pair": list(pair),
            "findings": count,
            "scenarios": pair_scenarios[pair],
        }
        for pair, count in sorted(
            pair_findings.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if count > 0
    ]

    involvement = {
        c: standalone[c] + sum(
            count for pair, count in pair_findings.items() if c in pair
        )
        for c in cells
    }
    fix_priority = [
        c
        for c, score in sorted(involvement.items(), key=lambda kv: (-kv[1], kv[0]))
        if score > 0
    ]

    unique_windows = len({s.key for s in scenarios})
    return LibraryComplianceReport(
        nodes=tuple(spec.nodes),
        cells=cells,
        checks=tuple(spec.checks),
        corners=spec.corners,
        scenario_count=len(scenarios),
        unique_windows=unique_windows,
        deduped=len(scenarios) - unique_windows,
        scenarios=rows,
        cell_verdicts=cell_verdicts,
        weak_pairs=weak_pairs,
        fix_priority=fix_priority,
        store=store_stats,
        elapsed_s=round(elapsed_s, 6),
    )
