"""Scenario enumeration for the library compliance matrix.

A *scenario* is one atomic check: a metal-1 window (a standalone cell or
an abutment window straddling one shared cell boundary) evaluated under
one check kind — litho hotspot detection at a process corner, or DPT
two-colorability.  Enumeration is exhaustive and deterministic: every
ordered cell pair (including a cell against itself), both right-cell
flips, every requested node and corner.

Scenario identity is content-addressed at two levels:

* ``key`` — digest of the *physics*: check kind, node, corner, window
  dimensions, and the canonical rect decomposition of the window,
  normalized to the origin.  Two different cell pairs whose abutment
  windows contain identical geometry share a key, which is exactly what
  the :class:`~repro.service.store.ResultStore` deduplicates on.
* ``sid`` — digest of the key plus the *provenance* (pair, flip, kind),
  unique per scenario row in the report.

Both are :func:`~repro.parallel.cache.digest_parts` digests, so they are
stable across runs, processes, and hash seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designgen import abut_cells, make_stdcell_library
from repro.geometry import Rect, Region
from repro.litho.process import ProcessWindow
from repro.parallel.cache import digest_parts
from repro.tech import make_node

SCHEMA = "matrix-v1"
CHECKS = ("litho", "dpt")
KINDS = ("standalone", "abutment")


@dataclass(frozen=True)
class MatrixSpec:
    """What to enumerate: the cross product driving the matrix."""

    nodes: tuple[int, ...] = (45,)
    cells: tuple[str, ...] | None = None  # None: the whole library
    corners: int = 2                      # litho corners (nominal first)
    checks: tuple[str, ...] = CHECKS
    flips: tuple[bool, ...] = (False, True)
    window_nm: int | None = None          # half-width; None: 2 * poly_pitch

    def __post_init__(self) -> None:
        bad = [c for c in self.checks if c not in CHECKS]
        if bad:
            raise ValueError(f"unknown checks {bad}; expected subset of {CHECKS}")
        if self.corners < 1:
            raise ValueError("need at least one process corner")


@dataclass(frozen=True)
class Scenario:
    """One enumerated check, carrying its own window geometry."""

    sid: str
    key: str
    kind: str                  # "standalone" | "abutment"
    check: str                 # "litho" | "dpt"
    node: int
    cell_a: str
    cell_b: str | None         # None for standalone
    flip: bool
    corner: tuple[float, float] | None  # (dose, defocus_nm); None for dpt
    window_w: int
    window_h: int
    rects: tuple[tuple[int, int, int, int], ...] = field(repr=False)

    def item(self) -> dict:
        """The wire/executor form: JSON-pure, self-contained."""
        return {
            "key": self.key,
            "check": self.check,
            "node": self.node,
            "corner": list(self.corner) if self.corner is not None else None,
            "window_w": self.window_w,
            "window_h": self.window_h,
            "rects": [list(r) for r in self.rects],
        }

    def row(self) -> dict:
        """The report form: provenance without the geometry payload."""
        return {
            "sid": self.sid,
            "key": self.key,
            "kind": self.kind,
            "check": self.check,
            "node": self.node,
            "cell_a": self.cell_a,
            "cell_b": self.cell_b,
            "flip": self.flip,
            "corner": list(self.corner) if self.corner is not None else None,
        }


def corner_conditions(count: int) -> list[tuple[float, float]]:
    """The first ``count`` process corners, nominal first."""
    corners = ProcessWindow().corners()
    return [(c.dose, c.defocus_nm) for c in corners[:count]]


def _window_region(region: Region, window: Rect) -> tuple[Region, int, int]:
    """Clip ``region`` to ``window`` and normalize to the origin, so
    identical windows from different pairs digest identically."""
    normalized = region.clipped(window).translated(-window.x0, -window.y0)
    return normalized, window.x1 - window.x0, window.y1 - window.y0


def _scenarios_for(
    spec: MatrixSpec,
    *,
    kind: str,
    node: int,
    cell_a: str,
    cell_b: str | None,
    flip: bool,
    region: Region,
    width: int,
    height: int,
    corners: list[tuple[float, float]],
) -> list[Scenario]:
    rects = tuple(r.as_tuple() for r in region.rects())
    geometry = region.digest()
    out: list[Scenario] = []
    for check in spec.checks:
        for corner in corners if check == "litho" else [None]:
            key = digest_parts(
                SCHEMA, check, node, corner, (width, height), geometry
            )
            sid = digest_parts("matrix-sid", key, kind, cell_a, cell_b, flip)[:16]
            out.append(
                Scenario(
                    sid=sid,
                    key=key,
                    kind=kind,
                    check=check,
                    node=node,
                    cell_a=cell_a,
                    cell_b=cell_b,
                    flip=flip,
                    corner=corner,
                    window_w=width,
                    window_h=height,
                    rects=rects,
                )
            )
    return out


def enumerate_scenarios(spec: MatrixSpec) -> list[Scenario]:
    """Every scenario in the matrix, in deterministic order: node, then
    standalone cells, then ordered pairs x flips, checks/corners inner."""
    scenarios: list[Scenario] = []
    for node in spec.nodes:
        tech = make_node(node)
        library = make_stdcell_library(tech)
        names = list(spec.cells) if spec.cells is not None else library.names()
        missing = [n for n in names if n not in library.cells]
        if missing:
            raise ValueError(f"unknown cells {missing}; library has {library.names()}")
        layer = tech.layers.metal1
        half = spec.window_nm if spec.window_nm is not None else 2 * tech.poly_pitch
        corners = corner_conditions(spec.corners)

        for name in names:
            cell = library[name].cell
            bbox = cell.bbox
            region, width, height = _window_region(cell.region(layer), bbox)
            scenarios.extend(
                _scenarios_for(
                    spec, kind="standalone", node=node, cell_a=name, cell_b=None,
                    flip=False, region=region, width=width, height=height,
                    corners=corners,
                )
            )

        for a in names:
            for b in names:
                for flip in spec.flips:
                    left, right = library[a].cell, library[b].cell
                    pair = abut_cells(left, right, flip_right=flip)
                    lb = left.bbox
                    boundary = lb.x1 - lb.x0
                    pb = pair.bbox
                    window = Rect(boundary - half, pb.y0, boundary + half, pb.y1)
                    region, width, height = _window_region(
                        pair.region(layer, window), window
                    )
                    scenarios.extend(
                        _scenarios_for(
                            spec, kind="abutment", node=node, cell_a=a, cell_b=b,
                            flip=flip, region=region, width=width, height=height,
                            corners=corners,
                        )
                    )
    return scenarios
