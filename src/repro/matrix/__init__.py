"""Library-scale compliance matrix.

The paper's argument is that DFM verification pays off at *library*
scale: the real workload is every cell against every neighbor — the
cell x cell abutment matrix across nodes, flips, process corners, and
decomposability — not one block scanned once.  This package enumerates
that matrix with stable content-addressed scenario IDs, executes it
in-process or as batched service jobs (deduplicating identical abutment
windows through the result store either way), and reduces the results
into a :class:`LibraryComplianceReport`: per-cell standalone vs.
in-abutment verdicts, the weak-pair ranking, and a fix-priority order.

Entry points: :func:`run_matrix` here, ``api.run_compliance_matrix()``
on the facade, and the ``repro matrix`` CLI verb.
"""

from repro.matrix.engine import (
    MatrixPayload,
    execute_matrix_job,
    payload_for_nodes,
    run_matrix,
    run_scenario_check,
    scenario_namespace,
)
from repro.matrix.report import LibraryComplianceReport, build_report
from repro.matrix.scenarios import (
    CHECKS,
    MatrixSpec,
    Scenario,
    corner_conditions,
    enumerate_scenarios,
)

__all__ = [
    "CHECKS",
    "LibraryComplianceReport",
    "MatrixPayload",
    "MatrixSpec",
    "Scenario",
    "build_report",
    "corner_conditions",
    "enumerate_scenarios",
    "execute_matrix_job",
    "payload_for_nodes",
    "run_matrix",
    "run_scenario_check",
    "scenario_namespace",
]
