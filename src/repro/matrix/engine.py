"""Execution paths for the compliance matrix.

One worker function — :func:`run_scenario_check` — serves every path:

* in-process: deduplicated scenario items fan out over a
  :class:`~repro.parallel.TileExecutor` (``jobs=1`` is the serial path);
* service: each scenario becomes a ``matrix`` job; the daemon's shared
  :class:`~repro.service.store.ResultStore` deduplicates across jobs,
  clients, and batches (:func:`execute_matrix_job` is the branch
  :class:`~repro.service.core.VerificationService` dispatches to).

The function takes and returns only JSON-pure values, so a result that
rode the wire is byte-identical to one computed in process — the basis
of the path-independence guarantee the matrix report asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro import __version__
from repro.dpt import decompose_dpt
from repro.geometry import Rect, Region
from repro.litho.hotspots import find_hotspots
from repro.litho.model import LithoModel
from repro.litho.process import ProcessCondition
from repro.obs import get_registry, names
from repro.parallel import TileExecutor
from repro.service.store import ResultStore
from repro.tech import make_node
from repro.tech.technology import LithoSettings

from repro.matrix.report import LibraryComplianceReport, build_report
from repro.matrix.scenarios import (
    CHECKS,
    MatrixSpec,
    Scenario,
    enumerate_scenarios,
)


@dataclass(frozen=True)
class MatrixPayload:
    """Per-node check parameters; frozen and hashable so the persistent
    executor's warm pool recognizes repeat payloads."""

    # (node, litho settings, pinch limit nm, dpt same-mask space nm)
    nodes: tuple[tuple[int, LithoSettings, int, int], ...]

    def params_for(self, node: int) -> tuple[LithoSettings, int, int]:
        for entry, litho, pinch, space in self.nodes:
            if entry == node:
                return litho, pinch, space
        raise KeyError(f"node {node} not in payload")


def payload_for_nodes(nodes: tuple[int, ...]) -> MatrixPayload:
    entries = []
    for node in sorted(set(int(n) for n in nodes)):
        tech = make_node(node)
        entries.append(
            (node, tech.litho, tech.metal_width // 2, 2 * tech.metal_space)
        )
    return MatrixPayload(nodes=tuple(entries))


@dataclass(frozen=True)
class _CornerWindow:
    """Duck-typed single-corner stand-in for ``ProcessWindow``."""

    dose: float
    defocus_nm: float

    def corners(self) -> list[ProcessCondition]:
        return [ProcessCondition(self.dose, self.defocus_nm)]


_MODELS: dict[LithoSettings, LithoModel] = {}


def _model(settings: LithoSettings) -> LithoModel:
    model = _MODELS.get(settings)
    if model is None:
        model = _MODELS[settings] = LithoModel(settings)
    return model


def run_scenario_check(payload: MatrixPayload, item: dict) -> dict:
    """Execute one scenario item; JSON-pure in, JSON-pure out."""
    check = item["check"]
    if check not in CHECKS:
        raise ValueError(f"unknown check {check!r}")
    litho, pinch_limit, dpt_space = payload.params_for(int(item["node"]))
    region = Region([Rect(*r) for r in item["rects"]])
    window = Rect(0, 0, int(item["window_w"]), int(item["window_h"]))
    if check == "litho":
        dose, defocus = item["corner"]
        spots = find_hotspots(
            _model(litho),
            region,
            window,
            _CornerWindow(float(dose), float(defocus)),
            pinch_limit=pinch_limit,
        )
        kinds: dict[str, int] = {}
        for spot in spots:
            kinds[spot.kind.value] = kinds.get(spot.kind.value, 0) + 1
        return {
            "check": "litho",
            "findings": len(spots),
            "worst_severity": round(
                max((s.severity for s in spots), default=0.0), 3
            ),
            "kinds": kinds,
        }
    result = decompose_dpt(region, dpt_space)
    return {
        "check": "dpt",
        "findings": result.findings_count,
        "conflict_features": [int(i) for i in result.findings],
        "conflict_cycles": len(result.conflict_cycles),
    }


def scenario_namespace(node: int, check: str) -> str:
    """The store namespace one scenario's result lives in: keyed by code
    version, node, and check kind — the key itself addresses geometry."""
    return ResultStore.namespace("matrix", __version__, int(node), check)


def validate_item(params: Any) -> dict:
    """Validate a wire-shaped scenario item; raises ``ValueError`` with a
    message suitable for a typed bad-request."""
    if not isinstance(params, dict):
        raise ValueError("matrix params must be an object")
    for field_name in ("key", "check", "node", "window_w", "window_h", "rects"):
        if field_name not in params:
            raise ValueError(f"matrix params missing {field_name!r}")
    if params["check"] not in CHECKS:
        raise ValueError(f"unknown check {params['check']!r}")
    if params["check"] == "litho" and not params.get("corner"):
        raise ValueError("litho scenario requires a corner")
    return params


def execute_matrix_job(params: Any, *, store: ResultStore) -> dict:
    """Run one scenario item against a shared store (the service path)."""
    item = validate_item(params)
    ns = scenario_namespace(item["node"], item["check"])
    cached = store.get(ns, item["key"])
    hit = cached is not None
    if hit:
        result = cached
    else:
        result = run_scenario_check(payload_for_nodes((item["node"],)), item)
        store.put(ns, item["key"], result)
    findings = int(result["findings"])
    return {
        "ok": findings == 0,
        "findings": findings,
        "key": item["key"],
        "store_hit": hit,
        "summary": (
            f"matrix {item['check']} @ {item['node']}nm: "
            f"{findings} findings" + (" (store hit)" if hit else "")
        ),
        "scenario": result,
    }


def _run_in_process(
    scenarios: list[Scenario],
    payload: MatrixPayload,
    store: ResultStore,
    *,
    jobs: int,
    executor: TileExecutor | None,
) -> list[dict]:
    """Execute scenarios with store dedup, mirroring the sequential
    service semantics: first occurrence of a window misses and computes,
    every later duplicate hits."""
    results_by_key: dict[str, dict] = {}
    pending: list[dict] = []
    for scenario in scenarios:
        if scenario.key in results_by_key:
            continue
        cached = store.get(
            scenario_namespace(scenario.node, scenario.check), scenario.key
        )
        if cached is not None:
            results_by_key[scenario.key] = cached
        else:
            results_by_key[scenario.key] = {}  # placeholder: computed below
            pending.append(scenario.item())

    own_executor = executor is None
    pool = executor if executor is not None else TileExecutor(jobs=jobs)
    try:
        computed = pool.map(run_scenario_check, payload, pending)
    finally:
        if own_executor:
            pool.close()
    for item, result in zip(pending, computed):
        store.put(
            scenario_namespace(item["node"], item["check"]), item["key"], result
        )
        results_by_key[item["key"]] = result

    out: list[dict] = []
    seen: set[str] = set()
    for scenario in scenarios:
        if scenario.key in seen:
            # duplicate window: serve it from the store, like the
            # sequential service path would (counts a hit)
            out.append(
                store.get(
                    scenario_namespace(scenario.node, scenario.check),
                    scenario.key,
                )
            )
        else:
            seen.add(scenario.key)
            out.append(results_by_key[scenario.key])
    return out


def _run_via_client(scenarios: list[Scenario], client: Any) -> list[dict]:
    """Execute scenarios as a batch of ``matrix`` jobs through a client
    (in-process ``ServiceClient`` or socket ``SocketClient``): one batch,
    streamed results, background band so interactive submits preempt."""
    items = [{"kind": "matrix", "params": s.item()} for s in scenarios]
    results: list[dict | None] = [None] * len(scenarios)
    failures: list[str] = []
    for event in client.submit_batch(items, priority="background"):
        index = event["index"]
        if "error" in event:
            failures.append(f"#{index}: {event['error'].get('message')}")
            continue
        job = event["job"]
        if job.get("state") != "done" or not job.get("result"):
            failures.append(f"#{index}: job {job.get('state')}: {job.get('error')}")
            continue
        results[index] = job["result"]["scenario"]
    if failures:
        raise RuntimeError(
            f"{len(failures)} of {len(scenarios)} matrix scenarios failed: "
            + "; ".join(failures[:3])
        )
    return [r for r in results if r is not None]


def run_matrix(
    spec: MatrixSpec,
    *,
    jobs: int = 1,
    executor: TileExecutor | None = None,
    store: ResultStore | None = None,
    client: Any | None = None,
) -> LibraryComplianceReport:
    """Enumerate and execute the matrix, reduce to the library report.

    With ``client`` the scenarios run as batched service jobs (the
    daemon's store deduplicates); otherwise they run in process over a
    ``TileExecutor`` against ``store`` (fresh per run by default).
    """
    registry = get_registry()
    t0 = time.perf_counter()
    scenarios = enumerate_scenarios(spec)
    registry.inc(names.MATRIX_RUNS)
    registry.inc(names.MATRIX_SCENARIOS, len(scenarios))

    if client is not None:
        results = _run_via_client(scenarios, client)
        store_stats = {"mode": "service"}
    else:
        local_store = store if store is not None else ResultStore()
        hits0, misses0 = local_store.hits, local_store.misses
        payload = payload_for_nodes(tuple(spec.nodes))
        results = _run_in_process(
            scenarios, payload, local_store, jobs=jobs, executor=executor
        )
        hits = local_store.hits - hits0
        misses = local_store.misses - misses0
        store_stats = {
            "mode": "in-process",
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / max(hits + misses, 1), 4),
        }
        registry.inc(names.MATRIX_SCENARIOS_EXECUTED, misses)
        registry.inc(names.MATRIX_SCENARIOS_CACHED, hits)

    cells: tuple[str, ...]
    if spec.cells is not None:
        cells = tuple(spec.cells)
    else:
        from repro.designgen import make_stdcell_library

        cells = tuple(make_stdcell_library(make_node(spec.nodes[0])).names())

    report = build_report(
        spec,
        scenarios,
        results,
        cells=cells,
        store_stats=store_stats,
        elapsed_s=time.perf_counter() - t0,
    )
    registry.inc(names.MATRIX_FINDINGS, report.findings_count)
    registry.inc(names.MATRIX_WINDOWS_UNIQUE, report.unique_windows)
    return report
