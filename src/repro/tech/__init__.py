"""Technology descriptions: layer stacks, design-rule decks, litho and
defect parameters for parametric process nodes."""

from repro.tech.rules import (
    Rule,
    RuleKind,
    RuleSeverity,
    WidthRule,
    SpacingRule,
    EnclosureRule,
    AreaRule,
    DensityRule,
    ExtensionRule,
    RuleDeck,
)
from repro.tech.technology import (
    Technology,
    LithoSettings,
    DefectModel,
    CmpSettings,
    LayerStack,
)
from repro.tech.nodes import make_node, NODE_65, NODE_45, NODE_32

__all__ = [
    "Rule",
    "RuleKind",
    "RuleSeverity",
    "WidthRule",
    "SpacingRule",
    "EnclosureRule",
    "AreaRule",
    "DensityRule",
    "ExtensionRule",
    "RuleDeck",
    "Technology",
    "LithoSettings",
    "DefectModel",
    "CmpSettings",
    "LayerStack",
    "make_node",
    "NODE_65",
    "NODE_45",
    "NODE_32",
]
