"""Parametric process-node factory.

``make_node(65)`` / ``make_node(45)`` / ``make_node(32)`` build Technology
objects whose dimensions scale with the node the way real nodes did:
metal-1 half-pitch roughly equals the node name, via sizes track the metal
width, and recommended (DFM) rules sit 25-50% above minimum.  The litho
settings switch from dry (NA 0.93) to immersion (NA 1.35) below 65 nm,
mirroring the 2008 transition.
"""

from __future__ import annotations

from repro.tech.rules import (
    AreaRule,
    DensityRule,
    EnclosureRule,
    ExtensionRule,
    RuleDeck,
    RuleSeverity,
    SpacingRule,
    WidthRule,
)
from repro.tech.technology import (
    CmpSettings,
    DefectModel,
    LayerStack,
    LithoSettings,
    Technology,
)

REC = RuleSeverity.RECOMMENDED


def make_node(node_nm: int, name: str | None = None) -> Technology:
    """Build a Technology for a metal-1 half-pitch of ``node_nm`` nm."""
    if node_nm < 20 or node_nm > 250:
        raise ValueError("supported node range is 20-250 nm")
    layers = LayerStack()
    w = node_nm  # metal min width
    s = node_nm  # metal min space
    via = node_nm  # via edge
    enc = max(node_nm // 4, 5)
    poly_w = max(int(node_nm * 0.7), 15)
    poly_pitch = 4 * node_nm
    deck = _make_rules(layers, w, s, via, enc, poly_w, node_nm)
    litho = LithoSettings(
        wavelength_nm=193.0,
        na=0.93 if node_nm >= 65 else 1.35,
        grid_nm=max(node_nm // 8, 4),
    )
    defects = DefectModel(x0_nm=node_nm, max_size_nm=40 * node_nm)
    cmp = CmpSettings(window_nm=200 * node_nm, step_nm=100 * node_nm)
    return Technology(
        name=name or f"generic{node_nm}",
        node_nm=node_nm,
        layers=layers,
        rules=deck,
        litho=litho,
        defects=defects,
        cmp=cmp,
        metal_width=w,
        metal_space=s,
        via_size=via,
        via_enclosure=enc,
        poly_width=poly_w,
        poly_pitch=poly_pitch,
        cell_height=14 * node_nm,
    )


def _make_rules(
    layers: LayerStack, w: int, s: int, via: int, enc: int, poly_w: int, node: int
) -> RuleDeck:
    deck = RuleDeck(f"rules{node}")
    # --- minimum (hard) rules ---
    for metal in layers.metals():
        ln = metal.name
        deck.add(WidthRule(f"{ln}.W.1", metal, w))
        deck.add(SpacingRule(f"{ln}.S.1", metal, s))
        deck.add(AreaRule(f"{ln}.A.1", metal, int(1.4 * w * w)))
    deck.add(WidthRule("POLY.W.1", layers.poly, poly_w))
    deck.add(SpacingRule("POLY.S.1", layers.poly, int(2.2 * poly_w)))
    deck.add(WidthRule("ACT.W.1", layers.active, 2 * node))
    deck.add(SpacingRule("ACT.S.1", layers.active, 2 * node))
    deck.add(ExtensionRule("POLY.EXT.1", layers.poly, layers.active, int(1.3 * node)))
    for cut in layers.vias():
        ln = cut.name
        deck.add(WidthRule(f"{ln}.W.1", cut, via))
        deck.add(SpacingRule(f"{ln}.S.1", cut, int(1.2 * via)))
    deck.add(EnclosureRule("M1.ENC.CT", layers.contact, layers.metal1, enc, two_sided=True))
    deck.add(EnclosureRule("M1.ENC.V1", layers.via1, layers.metal1, enc, two_sided=True))
    deck.add(EnclosureRule("M2.ENC.V1", layers.via1, layers.metal2, enc, two_sided=True))
    deck.add(EnclosureRule("M2.ENC.V2", layers.via2, layers.metal2, enc, two_sided=True))
    deck.add(EnclosureRule("M3.ENC.V2", layers.via2, layers.metal3, enc, two_sided=True))
    # contacts land on poly OR on diffusion: each enclosure applies only
    # to the contacts that overlap that layer
    deck.add(EnclosureRule("POLY.ENC.CT", layers.contact, layers.poly, max(enc // 2, 2), conditional=True))
    deck.add(EnclosureRule("ACT.ENC.CT", layers.contact, layers.active, max(enc // 2, 2), conditional=True))
    # --- recommended (DFM) rules ---
    for metal in layers.metals():
        ln = metal.name
        deck.add(WidthRule(f"{ln}.W.R", metal, int(1.25 * w), severity=REC))
        deck.add(SpacingRule(f"{ln}.S.R", metal, int(1.5 * s), severity=REC))
    deck.add(EnclosureRule("M1.ENC.V1.R", layers.via1, layers.metal1, 2 * enc, severity=REC))
    deck.add(EnclosureRule("M2.ENC.V1.R", layers.via1, layers.metal2, 2 * enc, severity=REC))
    deck.add(SpacingRule("V1.S.R", layers.via1, 2 * via, severity=REC))
    for metal in layers.metals():
        deck.add(
            DensityRule(
                f"{metal.name}.DEN.R",
                metal,
                window=200 * node,
                min_density=0.2,
                max_density=0.8,
                severity=REC,
            )
        )
    return deck


NODE_65 = make_node(65)
NODE_45 = make_node(45)
NODE_32 = make_node(32)
