"""Design rules and rule decks.

Two severities mirror industry practice circa 2008:

* ``MINIMUM`` — hard manufacturing limits; violating one is a DRC error.
* ``RECOMMENDED`` — DFM guidance beyond minimum; compliance is scored, not
  enforced (the "recommended rules" the DAC'08 panel argued about).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.layout import Layer


class RuleKind(Enum):
    WIDTH = "width"
    SPACING = "spacing"
    ENCLOSURE = "enclosure"
    AREA = "area"
    DENSITY = "density"
    EXTENSION = "extension"


class RuleSeverity(Enum):
    MINIMUM = "minimum"
    RECOMMENDED = "recommended"


@dataclass(frozen=True, slots=True)
class Rule:
    """Base design rule; concrete kinds subclass this."""

    name: str
    severity: RuleSeverity = field(default=RuleSeverity.MINIMUM, kw_only=True)

    @property
    def kind(self) -> RuleKind:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class WidthRule(Rule):
    """Minimum feature width on ``layer``."""

    layer: Layer
    min_width: int

    @property
    def kind(self) -> RuleKind:
        return RuleKind.WIDTH


@dataclass(frozen=True, slots=True)
class SpacingRule(Rule):
    """Minimum spacing on ``layer`` (or between ``layer`` and ``other``)."""

    layer: Layer
    min_space: int
    other: Layer | None = None

    @property
    def kind(self) -> RuleKind:
        return RuleKind.SPACING


@dataclass(frozen=True, slots=True)
class EnclosureRule(Rule):
    """``outer`` must enclose ``inner`` by at least ``min_enclosure`` on
    all sides.

    ``conditional`` restricts the check to inner shapes that overlap the
    outer layer at all — e.g. a contact must be enclosed by poly *if it
    is a poly contact* (diffusion contacts are exempt), whereas a via
    must always be enclosed by both routing layers (unconditional).

    ``two_sided`` implements the 45 nm-era asymmetric ("end-cap")
    enclosure: the inner shape needs ``min_enclosure`` on two *opposite*
    sides (either axis) and only full coverage on the others — the rule
    that makes minimum-width via landings legal.
    """

    inner: Layer
    outer: Layer
    min_enclosure: int
    conditional: bool = False
    two_sided: bool = False

    @property
    def kind(self) -> RuleKind:
        return RuleKind.ENCLOSURE


@dataclass(frozen=True, slots=True)
class AreaRule(Rule):
    """Minimum area of any connected component on ``layer``."""

    layer: Layer
    min_area: int

    @property
    def kind(self) -> RuleKind:
        return RuleKind.AREA


@dataclass(frozen=True, slots=True)
class DensityRule(Rule):
    """Pattern density of ``layer`` in every ``window`` x ``window`` tile
    must lie within [min_density, max_density] (fractions of 1)."""

    layer: Layer
    window: int
    min_density: float
    max_density: float

    @property
    def kind(self) -> RuleKind:
        return RuleKind.DENSITY


@dataclass(frozen=True, slots=True)
class ExtensionRule(Rule):
    """``layer`` must extend past ``other`` by at least ``min_extension``
    where they cross (e.g. poly endcap over active)."""

    layer: Layer
    other: Layer
    min_extension: int

    @property
    def kind(self) -> RuleKind:
        return RuleKind.EXTENSION


class RuleDeck:
    """An ordered collection of rules with filtered views."""

    def __init__(self, name: str, rules: list[Rule] | None = None):
        self.name = name
        self._rules: list[Rule] = list(rules or [])
        names = [r.name for r in self._rules]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate rule names: {dupes}")

    def add(self, rule: Rule) -> None:
        if any(r.name == rule.name for r in self._rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def rule(self, name: str) -> Rule:
        for r in self._rules:
            if r.name == name:
                return r
        raise KeyError(name)

    def minimum(self) -> "RuleDeck":
        return RuleDeck(
            f"{self.name}.minimum",
            [r for r in self._rules if r.severity is RuleSeverity.MINIMUM],
        )

    def recommended(self) -> "RuleDeck":
        return RuleDeck(
            f"{self.name}.recommended",
            [r for r in self._rules if r.severity is RuleSeverity.RECOMMENDED],
        )

    def for_layer(self, layer: Layer) -> "RuleDeck":
        picked = []
        for r in self._rules:
            layers = [getattr(r, a) for a in ("layer", "other", "inner", "outer") if hasattr(r, a)]
            if layer in [l for l in layers if l is not None]:
                picked.append(r)
        return RuleDeck(f"{self.name}.{layer.name or layer.gds_layer}", picked)

    def of_kind(self, kind: RuleKind) -> "RuleDeck":
        return RuleDeck(f"{self.name}.{kind.value}", [r for r in self._rules if r.kind is kind])

    def __repr__(self) -> str:
        return f"RuleDeck({self.name!r}, {len(self._rules)} rules)"
