"""The Technology object: everything an experiment needs to know about a
process node in one place."""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout import Layer
from repro.tech.rules import RuleDeck


@dataclass(frozen=True, slots=True)
class LayerStack:
    """The canonical layer set used throughout the project."""

    nwell: Layer = Layer(1, 0, "NWELL")
    active: Layer = Layer(2, 0, "ACTIVE")
    poly: Layer = Layer(3, 0, "POLY")
    implant_n: Layer = Layer(4, 0, "NIMP")
    implant_p: Layer = Layer(5, 0, "PIMP")
    contact: Layer = Layer(6, 0, "CONT")
    metal1: Layer = Layer(10, 0, "M1")
    via1: Layer = Layer(11, 0, "V1")
    metal2: Layer = Layer(12, 0, "M2")
    via2: Layer = Layer(13, 0, "V2")
    metal3: Layer = Layer(14, 0, "M3")

    def metals(self) -> list[Layer]:
        return [self.metal1, self.metal2, self.metal3]

    def vias(self) -> list[Layer]:
        return [self.contact, self.via1, self.via2]

    def via_between(self, lower: Layer, upper: Layer) -> Layer:
        """The cut layer connecting two adjacent routing layers."""
        pairs = {
            (self.poly.name, self.metal1.name): self.contact,
            (self.active.name, self.metal1.name): self.contact,
            (self.metal1.name, self.metal2.name): self.via1,
            (self.metal2.name, self.metal3.name): self.via2,
        }
        key = (lower.name, upper.name)
        if key not in pairs:
            raise KeyError(f"no via layer between {lower} and {upper}")
        return pairs[key]

    def routing_layers_for(self, via: Layer) -> tuple[Layer, Layer]:
        """The (lower, upper) routing layers a cut layer connects."""
        table = {
            self.contact.name: (self.poly, self.metal1),
            self.via1.name: (self.metal1, self.metal2),
            self.via2.name: (self.metal2, self.metal3),
        }
        if via.name not in table:
            raise KeyError(f"{via} is not a cut layer")
        return table[via.name]


@dataclass(frozen=True, slots=True)
class LithoSettings:
    """Scalar-litho model parameters.

    ``wavelength_nm / na`` sets the optical resolution; the simulator uses
    a Gaussian point-spread approximation with an effective sigma of
    ``k_sigma * lambda / NA``.  ``k_sigma = 0.16`` folds in the resolution
    enhancement (off-axis illumination, strong RET) that let 2008-era
    scanners image k1 ~ 0.3 pitches; with it, the node's minimum pitch is
    resolvable but heavily dose/defocus sensitive — the regime OPC lives
    in.  Defocus adds blur in quadrature.  ``resist_threshold = 0.5`` is
    the self-calibrating choice: a long straight edge prints exactly in
    place at nominal dose, so all CD error comes from proximity.
    """

    wavelength_nm: float = 193.0
    na: float = 1.2
    k_sigma: float = 0.16
    k_defocus: float = 0.12
    resist_threshold: float = 0.50
    nominal_dose: float = 1.0
    max_defocus_nm: float = 120.0
    grid_nm: int = 4

    @property
    def psf_sigma_nm(self) -> float:
        return self.k_sigma * self.wavelength_nm / self.na

    def defocus_sigma_nm(self, defocus_nm: float) -> float:
        """Extra blur contributed by defocus (linear proxy)."""
        return self.k_defocus * abs(defocus_nm)


@dataclass(frozen=True, slots=True)
class DefectModel:
    """Random-defect statistics for critical-area yield analysis.

    The defect size distribution follows the standard ``k / x^3`` form
    above a peak size ``x0`` (Stapper), normalized so the total density is
    ``d0_per_cm2`` defects per cm^2 per defect type.
    """

    d0_per_cm2: float = 0.1
    x0_nm: int = 40
    max_size_nm: int = 2000
    via_fail_prob: float = 1e-8
    clustering_alpha: float = 2.0  # negative-binomial clustering parameter


@dataclass(frozen=True, slots=True)
class CmpSettings:
    """Density-driven CMP model parameters."""

    window_nm: int = 10000
    step_nm: int = 5000
    target_density: float = 0.5
    min_density: float = 0.2
    max_density: float = 0.8
    # post-polish thickness deviation per unit density deviation
    thickness_per_density_nm: float = 60.0
    nominal_thickness_nm: float = 250.0


@dataclass(frozen=True, slots=True)
class Technology:
    """A process node: layers + rules + litho + defects + CMP."""

    name: str
    node_nm: int
    layers: LayerStack
    rules: RuleDeck
    litho: LithoSettings
    defects: DefectModel
    cmp: CmpSettings
    # convenience dimensions (all in nm) used by generators and optimizers
    metal_width: int = 0
    metal_space: int = 0
    via_size: int = 0
    via_enclosure: int = 0
    poly_width: int = 0
    poly_pitch: int = 0
    cell_height: int = 0

    @property
    def metal_pitch(self) -> int:
        return self.metal_width + self.metal_space

    def __repr__(self) -> str:
        return f"Technology({self.name!r}, {self.node_nm} nm, {len(self.rules)} rules)"
