"""The DFM technique catalog.

Each technique transforms a :class:`DesignContext` copy and reports its
direct costs; benefits are measured by the harness as metric deltas.  The
set mirrors the catalog the DAC'08 panel debated (see DESIGN.md §1).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.context import DesignContext
from repro.geometry import Rect, Region
from repro.litho.model import LithoModel
from repro.opc.modelbased import ModelOpcSettings, apply_model_opc
from repro.opc.rulebased import apply_rule_opc
from repro.yieldmodels.redundant_via import insert_redundant_vias
from repro.yieldmodels.wire_spread import spread_wires, widen_wires
from repro.cmp.density import density_map
from repro.cmp.fill import dummy_fill


@dataclass
class TechniqueOutcome:
    """What a technique did and what it charged."""

    ctx: DesignContext
    runtime_s: float = 0.0
    area_delta_nm2: int = 0
    shapes_added: int = 0
    mask_vertex_factor: float = 1.0  # mask-complexity multiplier (OPC)
    notes: dict[str, float] = field(default_factory=dict)


class DFMTechnique(ABC):
    """One DFM technique under evaluation."""

    name: str = "technique"
    category: str = "generic"

    @abstractmethod
    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        """Apply to (a copy of) the context; return the outcome."""

    def apply(self, ctx: DesignContext) -> TechniqueOutcome:
        work = ctx.copy(f"_{self.name}")
        t0 = time.perf_counter()
        outcome = self.transform(work)
        outcome.runtime_s = time.perf_counter() - t0
        return outcome


class RecommendedRulesTechnique(DFMTechnique):
    """Blanket recommended rules: widen and spread every routing layer to
    the recommended width/space.  The panel's 'hype' suspect: real yield
    help, but paid in area everywhere, needed or not."""

    name = "recommended-rules"
    category = "rules"

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        tech = ctx.tech
        outcome = TechniqueOutcome(ctx=ctx)
        widen_by = max((int(1.25 * tech.metal_width) - tech.metal_width) // 2, 1)
        target_space = int(1.5 * tech.metal_space)
        for layer in (tech.layers.metal1, tech.layers.metal2, tech.layers.metal3):
            region = ctx.region(layer)
            if region.is_empty:
                continue
            before_area = region.area
            if layer is not tech.layers.metal1:
                # routing layers may be spread; M1 carries cell pins whose
                # positions are fixed by the placement
                region, _ = spread_wires(region, tech.metal_space, target_space)
            widened, _ = widen_wires(region, tech.metal_space, widen_by)
            ctx.replace_layer(layer, widened)
            outcome.area_delta_nm2 += widened.area - before_area
        return outcome


class PatternCheckTechnique(DFMTechnique):
    """DRC Plus with auto-fixing: find the line-end patterns DRC cannot
    express and retarget them on the *mask* (design intent untouched).

    Every tip (a boundary edge at most ~1.5x the metal width) gets a small
    mask-side extension where there is clearance, compensating line-end
    pullback — the pattern-matching-driven selective retargeting flow.
    Cheap, targeted; the panel's 'hit' candidate.
    """

    name = "pattern-check"
    category = "patterns"

    def __init__(self, extension: int | None = None, safe_gap: int | None = None):
        self.extension = extension
        self.safe_gap = safe_gap

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        tech = ctx.tech
        outcome = TechniqueOutcome(ctx=ctx)
        layer = tech.layers.metal1
        region = ctx.region(layer)
        if region.is_empty:
            return outcome
        ext = self.extension or max(tech.node_nm // 6, 5)
        safe = self.safe_gap or int(0.6 * tech.metal_space)
        mask, fixed = _extend_line_ends(region, int(1.5 * tech.metal_width), ext, safe)
        ctx.set_mask(layer, mask)
        outcome.notes["tips_retargeted"] = fixed
        outcome.mask_vertex_factor = 1.0 + 0.5 * fixed / max(len(region.edges()) / 4, 1)
        return outcome


def _extend_line_ends(
    region: Region, tip_max_width: int, ext: int, safe: int
) -> tuple[Region, int]:
    """Extend every clear line-end tip outward by ``ext`` on the mask."""
    additions: list[Rect] = []
    for start, end in region.edges():
        if start.manhattan(end) > tip_max_width:
            continue
        dx = end.x - start.x
        dy = end.y - start.y
        nx, ny = ((dy > 0) - (dy < 0)), -((dx > 0) - (dx < 0))  # outward normal
        x0, x1 = sorted((start.x, end.x))
        y0, y1 = sorted((start.y, end.y))
        reach = ext + safe
        probe = Rect(
            x0 + (nx if nx > 0 else nx * reach),
            y0 + (ny if ny > 0 else ny * reach),
            x1 + (nx * reach if nx > 0 else -(-nx)),
            y1 + (ny * reach if ny > 0 else -(-ny)),
        )
        if region.overlaps(Region(probe)):
            continue
        additions.append(
            Rect(
                x0 + min(nx * ext, 0),
                y0 + min(ny * ext, 0),
                x1 + max(nx * ext, 0),
                y1 + max(ny * ext, 0),
            )
        )
    if not additions:
        return region, 0
    return region | Region(additions), len(additions)


class _OpcTechnique(DFMTechnique):
    """Shared machinery: OPC the M1 layer inside the metric sample window
    (full-chip OPC at benchmark scale would dominate runtime without
    changing the comparison)."""

    def _window(self, ctx: DesignContext) -> Rect:
        from repro.core.metrics import _default_window

        return _default_window(ctx)


class RuleOpcTechnique(_OpcTechnique):
    name = "rule-opc"
    category = "litho"

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        outcome = TechniqueOutcome(ctx=ctx)
        layer = ctx.tech.layers.metal1
        window = self._window(ctx)
        region = ctx.region(layer)
        clip = region & Region(window.expanded(400))
        mask = apply_rule_opc(clip)
        # the mask replaces the drawn geometry only for exposure
        ctx.set_mask(layer, (region - clip) | mask)
        outcome.mask_vertex_factor = _vertex_factor(mask, clip)
        return outcome


class ModelOpcTechnique(_OpcTechnique):
    """Tip retargeting followed by process-window-aware model iteration.

    The model loop aims the printed contour at the *retargeted* geometry
    (tips pre-extended against pullback) — the production recipe.  On a
    binary hotspot metric this buys CD fidelity that the scorecard only
    partially rewards; the process-window bench (F2) is where its
    advantage over rule OPC shows.
    """

    name = "model-opc"
    category = "litho"

    def __init__(self, pw_aware: bool = True):
        self.pw_aware = pw_aware

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        outcome = TechniqueOutcome(ctx=ctx)
        tech = ctx.tech
        layer = tech.layers.metal1
        window = self._window(ctx)
        region = ctx.region(layer)
        clip = region & Region(window.expanded(400))
        if clip.is_empty:
            return outcome
        ext = max(tech.node_nm // 6, 5)
        target, _tips = _extend_line_ends(
            clip, int(1.5 * tech.metal_width), ext, int(0.6 * tech.metal_space)
        )
        model = LithoModel(tech.litho)
        settings = ModelOpcSettings(
            iterations=8, gain=0.5, max_len=60, pw_aware=self.pw_aware
        )
        result = apply_model_opc(
            target, model, window.expanded(600), settings, active_window=window
        )
        ctx.set_mask(layer, (region - clip) | result.mask)
        outcome.mask_vertex_factor = _vertex_factor(result.mask, clip)
        outcome.notes["final_rms_epe"] = result.final_rms_epe
        return outcome


def _vertex_factor(mask: Region, drawn: Region) -> float:
    drawn_edges = max(len(drawn.edges()), 1)
    return len(mask.edges()) / drawn_edges


class RedundantViaTechnique(DFMTechnique):
    name = "redundant-via"
    category = "yield"

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        outcome = TechniqueOutcome(ctx=ctx)
        report = insert_redundant_vias(ctx.cell, ctx.tech)
        ctx.invalidate()
        outcome.shapes_added = report.inserted
        outcome.area_delta_nm2 = report.added_metal_area
        outcome.notes["coverage"] = report.coverage
        return outcome


class WireSpreadTechnique(DFMTechnique):
    name = "wire-spread"
    category = "yield"

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        tech = ctx.tech
        outcome = TechniqueOutcome(ctx=ctx)
        for layer in (tech.layers.metal2, tech.layers.metal3):
            region = ctx.region(layer)
            if region.is_empty:
                continue
            spreaded, report = spread_wires(
                region, tech.metal_space, 2 * tech.metal_space
            )
            ctx.replace_layer(layer, spreaded)
            outcome.notes[f"moved:{layer.name}"] = report.moved
        return outcome


class DummyFillTechnique(DFMTechnique):
    name = "dummy-fill"
    category = "cmp"

    def transform(self, ctx: DesignContext) -> TechniqueOutcome:
        from dataclasses import replace

        tech = ctx.tech
        outcome = TechniqueOutcome(ctx=ctx)
        layer = tech.layers.metal1
        region = ctx.region(layer)
        extent = ctx.extent
        # adapt the CMP window to the block so small blocks still get
        # multiple tiles (the metric does the same)
        window = min(tech.cmp.window_nm, max(min(extent.width, extent.height) // 2, 1000))
        cmp_settings = replace(tech.cmp, window_nm=window, step_nm=max(window // 2, 1))
        before = density_map(region, extent, window)
        fill_size = max(8 * tech.metal_width, 200)
        fill, report = dummy_fill(
            region,
            extent,
            cmp_settings,
            fill_size=fill_size,
            fill_space=2 * tech.metal_space,
            keepout=2 * tech.metal_space,
        )
        fill_layer = layer.with_datatype(20)
        for rect in fill.rects():
            ctx.cell.add_rect(fill_layer, rect)
        ctx.invalidate(fill_layer)
        after = density_map(region | fill, extent, window)
        outcome.shapes_added = report.shapes_added
        outcome.area_delta_nm2 = 0  # fill does not grow the die
        outcome.notes["density_range_before"] = before.range
        outcome.notes["density_range_after"] = after.range
        return outcome


def default_techniques() -> list[DFMTechnique]:
    """The evaluation set for the headline scorecard (T1)."""
    return [
        RecommendedRulesTechnique(),
        PatternCheckTechnique(),
        RuleOpcTechnique(),
        ModelOpcTechnique(),
        RedundantViaTechnique(),
        WireSpreadTechnique(),
        DummyFillTechnique(),
    ]
