"""The evaluation harness: baseline, apply, re-measure, verdict."""

from __future__ import annotations

from repro.core.context import DesignContext
from repro.core.metrics import measure_design
from repro.core.scorecard import Scorecard, ScorecardRow
from repro.core.techniques import DFMTechnique, default_techniques
from repro.geometry import Rect
from repro.layout import Cell
from repro.obs import span
from repro.tech.technology import Technology


def evaluate_techniques(
    cell: Cell,
    tech: Technology,
    techniques: list[DFMTechnique] | None = None,
    d0_per_cm2: float | None = None,
    hotspot_window: Rect | None = None,
) -> Scorecard:
    """Run the full hit-or-hype evaluation on a design.

    Every technique starts from the same flattened baseline; benefits are
    deltas against the shared baseline measurement, so techniques can be
    compared directly.
    """
    techniques = techniques if techniques is not None else default_techniques()
    with span("scorecard.baseline"):
        base_ctx = DesignContext.from_cell(cell, tech)
        baseline = measure_design(base_ctx, d0_per_cm2, hotspot_window)
    card = Scorecard(design=cell.name, node=tech.name, baseline=baseline)
    for technique in techniques:
        with span(f"technique.{technique.name}"):
            outcome = technique.apply(base_ctx)
            after = measure_design(outcome.ctx, d0_per_cm2, hotspot_window)
        area_pct = (
            100.0 * outcome.area_delta_nm2 / baseline.area_nm2
            if baseline.area_nm2
            else 0.0
        )
        card.add(
            ScorecardRow(
                technique=technique.name,
                category=technique.category,
                yield_before=baseline.yield_proxy,
                yield_after=after.yield_proxy,
                hotspots_before=baseline.hotspot_count,
                hotspots_after=after.hotspot_count,
                area_percent=area_pct,
                mask_vertex_factor=outcome.mask_vertex_factor,
                runtime_s=outcome.runtime_s,
                notes=outcome.notes,
            )
        )
    return card
