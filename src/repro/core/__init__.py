"""The paper's contribution, made executable: a quantitative evaluation
harness that measures, for each DFM technique of the 2008 era, the benefit
it delivers and the cost it charges — and renders the hit-or-hype verdict
the panel could only argue about.
"""

from repro.core.context import DesignContext
from repro.core.metrics import DesignMetrics, measure_design
from repro.core.techniques import (
    DFMTechnique,
    TechniqueOutcome,
    RecommendedRulesTechnique,
    PatternCheckTechnique,
    RuleOpcTechnique,
    ModelOpcTechnique,
    RedundantViaTechnique,
    WireSpreadTechnique,
    DummyFillTechnique,
    default_techniques,
)
from repro.core.scorecard import Scorecard, ScorecardRow, Verdict
from repro.core.harness import evaluate_techniques

__all__ = [
    "DesignContext",
    "DesignMetrics",
    "measure_design",
    "DFMTechnique",
    "TechniqueOutcome",
    "RecommendedRulesTechnique",
    "PatternCheckTechnique",
    "RuleOpcTechnique",
    "ModelOpcTechnique",
    "RedundantViaTechnique",
    "WireSpreadTechnique",
    "DummyFillTechnique",
    "default_techniques",
    "Scorecard",
    "ScorecardRow",
    "Verdict",
    "evaluate_techniques",
]
