"""The paper's contribution, made executable: a quantitative evaluation
harness that measures, for each DFM technique of the 2008 era, the benefit
it delivers and the cost it charges — and renders the hit-or-hype verdict
the panel could only argue about.

:mod:`repro.core.report` also lives here: the :class:`BaseReport`
contract every engine report implements.  It is imported eagerly (it is
dependency-free); the evaluation harness below is imported lazily so
low-level modules (``repro.drc``, ``repro.litho``, ...) can import
``repro.core.report`` without creating an import cycle with the
technique implementations, which themselves build on those engines.
"""

from importlib import import_module

from repro.core.report import BaseReport, deprecated_alias, jsonable

# Lazy exports (PEP 562): name -> defining submodule.  Resolved on first
# attribute access, after which the value is cached in module globals.
_LAZY = {
    "DesignContext": "repro.core.context",
    "DesignMetrics": "repro.core.metrics",
    "measure_design": "repro.core.metrics",
    "DFMTechnique": "repro.core.techniques",
    "TechniqueOutcome": "repro.core.techniques",
    "RecommendedRulesTechnique": "repro.core.techniques",
    "PatternCheckTechnique": "repro.core.techniques",
    "RuleOpcTechnique": "repro.core.techniques",
    "ModelOpcTechnique": "repro.core.techniques",
    "RedundantViaTechnique": "repro.core.techniques",
    "WireSpreadTechnique": "repro.core.techniques",
    "DummyFillTechnique": "repro.core.techniques",
    "default_techniques": "repro.core.techniques",
    "Scorecard": "repro.core.scorecard",
    "ScorecardRow": "repro.core.scorecard",
    "Verdict": "repro.core.scorecard",
    "evaluate_techniques": "repro.core.harness",
}

__all__ = [
    "BaseReport",
    "deprecated_alias",
    "jsonable",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
