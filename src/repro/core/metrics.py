"""Design-quality metrics: the common yardstick every technique is
measured against.

The yield proxy combines the three dominant loss mechanisms of the era:

* random-defect faults on the routing layers (critical-area lambda),
* via failures (single vs. redundant cuts),
* systematic litho faults (hotspots found in a sampled window, each
  assigned a fault probability).

All three become lambdas and multiply into a negative-binomial yield.
Costs are measured separately (area, added shapes, runtime) by the
harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.context import DesignContext
from repro.geometry import GridIndex, Rect, Region
from repro.litho.hotspots import find_hotspots
from repro.litho.model import LithoModel
from repro.obs import get_registry, names, span
from repro.yieldmodels.critical_area import weighted_critical_area
from repro.yieldmodels.dsd import DefectSizeDistribution
from repro.yieldmodels.via_yield import via_failure_lambda
from repro.yieldmodels.yield_model import (
    NM2_PER_CM2,
    yield_negative_binomial,
)

# Per-instance failure probability of a marginal (hotspot) site: the site
# prints, but process fluctuation occasionally kills one occurrence.  With
# die-level extrapolation a single hotspot class costs a few yield points.
HOTSPOT_FAULT_PROB = 1e-8

# Parametric-yield proxy for CMP: fault rate per nm of across-die
# post-polish thickness range (thickness excursions break timing or etch).
CMP_FAULT_PER_NM = 0.002


@dataclass
class DesignMetrics:
    area_nm2: int = 0
    lambda_defects: float = 0.0
    lambda_vias: float = 0.0
    lambda_hotspots: float = 0.0
    lambda_cmp: float = 0.0
    thickness_range_nm: float = 0.0
    hotspot_count: int = 0
    via_sites: int = 0
    redundant_via_sites: int = 0
    drawn_shape_count: int = 0
    measure_seconds: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def total_lambda(self) -> float:
        return (
            self.lambda_defects
            + self.lambda_vias
            + self.lambda_hotspots
            + self.lambda_cmp
        )

    @property
    def yield_proxy(self) -> float:
        return yield_negative_binomial(self.total_lambda, alpha=2.0)

    def summary(self) -> str:
        return (
            f"metrics: yield proxy {self.yield_proxy:.4f} "
            f"(defects {self.lambda_defects:.4g}, vias {self.lambda_vias:.4g}, "
            f"hotspots {self.lambda_hotspots:.4g}), "
            f"{self.hotspot_count} hotspots, area {self.area_nm2 / 1e6:.2f} um^2"
        )


def count_via_sites(region: Region, pitch: int) -> tuple[int, int]:
    """(sites, redundant_sites): cuts within one pitch form one site."""
    vias = list(region.rects())
    if not vias:
        return 0, 0
    index: GridIndex[int] = GridIndex(cell_size=max(8 * pitch, 256))
    for i, rect in enumerate(vias):
        index.insert(rect, i)
    parent = list(range(len(vias)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, j in index.query_pairs(pitch):
        if vias[i].distance(vias[j]) <= pitch:
            parent[find(j)] = find(i)
    sizes: dict[int, int] = {}
    for i in range(len(vias)):
        root = find(i)
        sizes[root] = sizes.get(root, 0) + 1
    sites = len(sizes)
    redundant = sum(1 for s in sizes.values() if s >= 2)
    return sites, redundant


def measure_design(
    ctx: DesignContext,
    d0_per_cm2: float | None = None,
    hotspot_window: Rect | None = None,
    die_area_cm2: float | None = 0.25,
) -> DesignMetrics:
    """Measure a design context.

    Hotspot detection simulates a sample window (default: a centred clip
    of roughly a quarter of the extent's short side) using the layer's
    *mask* (OPC'd if the context carries one) against the drawn intent.

    ``die_area_cm2`` extrapolates every lambda from the measured block to
    a full die of that area, treating the block as representative tiling
    — the standard way block-level statistics become die yields.  Pass
    ``None`` to keep raw block-level lambdas.
    """
    t0 = time.perf_counter()
    tech = ctx.tech
    L = tech.layers
    defects = tech.defects
    d0 = defects.d0_per_cm2 if d0_per_cm2 is None else d0_per_cm2
    dsd = DefectSizeDistribution(x0_nm=defects.x0_nm, x_max_nm=defects.max_size_nm)

    metrics = DesignMetrics(area_nm2=ctx.area_nm2)
    metrics.drawn_shape_count = ctx.cell.shape_count()
    die_scale = 1.0
    if die_area_cm2 is not None and ctx.area_nm2 > 0:
        die_scale = die_area_cm2 * NM2_PER_CM2 / ctx.area_nm2

    # random-defect lambda over the routing layers
    with span("measure.defects"):
        for layer in (L.metal1, L.metal2, L.metal3):
            region = ctx.region(layer)
            if region.is_empty:
                continue
            ca_s = weighted_critical_area(region, dsd, "shorts")
            ca_o = weighted_critical_area(region, dsd, "opens")
            lam = die_scale * d0 * (ca_s + ca_o) / NM2_PER_CM2
            metrics.lambda_defects += lam
            metrics.breakdown[f"defects:{layer.name}"] = lam

    # via failures
    with span("measure.vias"):
        pitch = tech.via_size + int(1.2 * tech.via_size)
        for layer in (L.via1, L.via2):
            sites, redundant = count_via_sites(ctx.region(layer), pitch)
            metrics.via_sites += sites
            metrics.redundant_via_sites += redundant
            lam = die_scale * via_failure_lambda(
                sites - redundant, redundant, defects.via_fail_prob
            )
            metrics.lambda_vias += lam
            metrics.breakdown[f"vias:{layer.name}"] = lam

    # litho hotspots in a sample window on M1: expose the mask, judge
    # against the drawn intent
    window = hotspot_window or _default_window(ctx)
    m1 = ctx.region(L.metal1)
    if not m1.is_empty:
        with span("measure.hotspots"):
            model = LithoModel(tech.litho)
            mask = ctx.mask_for(L.metal1)
            # fixed pinch limit: detection sensitivity must not depend on the
            # technique under test
            hotspots = find_hotspots(
                model, m1, window, mask=mask, pinch_limit=tech.metal_width // 2
            )
            metrics.hotspot_count = len(hotspots)
            window_scale = (ctx.area_nm2 / window.area) if window.area else 1.0
            lam = die_scale * window_scale * len(hotspots) * HOTSPOT_FAULT_PROB
            metrics.lambda_hotspots = lam
            metrics.breakdown["hotspots:M1"] = lam

    # CMP thickness variability on M1 (including any dummy fill, which
    # lands on datatype 20 of the same GDS layer)
    extent = ctx.extent
    fill = ctx.region(L.metal1.with_datatype(20))
    m1_full = m1 | fill
    if not m1_full.is_empty:
        with span("measure.cmp"):
            from repro.cmp.density import density_map
            from repro.cmp.model import thickness_map

            window_nm = min(tech.cmp.window_nm, max(min(extent.width, extent.height) // 2, 1000))
            dmap = density_map(m1_full, extent, window_nm)
            thickness = thickness_map(dmap, tech.cmp)
            metrics.thickness_range_nm = thickness.range
            lam = CMP_FAULT_PER_NM * thickness.range
            metrics.lambda_cmp = lam
            metrics.breakdown["cmp:M1"] = lam

    metrics.measure_seconds = time.perf_counter() - t0
    registry = get_registry()
    registry.inc(names.MEASURE_RUNS)
    registry.inc(names.MEASURE_HOTSPOTS, metrics.hotspot_count)
    registry.inc(names.MEASURE_VIA_SITES, metrics.via_sites)
    registry.observe(names.MEASURE_DESIGN_TIMER, metrics.measure_seconds)
    return metrics


def _default_window(ctx: DesignContext) -> Rect:
    """A full-height vertical band around the extent centre — sees every
    row of the block (and any weak-spot strip) with bounded sim cost."""
    extent = ctx.extent
    band = max(extent.width // 8, 2000)
    cx = extent.center.x
    return Rect(cx - band // 2, extent.y0, cx + band // 2, extent.y1)
