"""The hit-or-hype scorecard.

For each technique the harness records the yield benefit (delta in the
yield proxy, in points), the systematic-defect benefit (hotspot delta),
and the costs (area %, mask complexity, runtime).  Benefit and cost are
normalized onto a common unitless scale and the verdict is their ratio:

* ``HIT``   — normalized benefit at least 2x cost and a material benefit.
* ``HYPE``  — cost exceeds benefit, or no measurable benefit at all.
* ``MIXED`` — everything in between (real benefit, real cost).

The thresholds are deliberately published constants: the point of the
reproduction is that the verdicts become *arguable numbers* instead of
panel opinions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.metrics import DesignMetrics
from repro.obs import get_registry, names

YIELD_POINT_WEIGHT = 1.0     # 1 yield point (0.01) = 1 benefit unit
HOTSPOT_WEIGHT = 0.25        # one hotspot removed (per window) = 0.25 units
AREA_PERCENT_WEIGHT = 2.0    # 1% area = 2 cost units (area is expensive)
RUNTIME_WEIGHT = 0.05        # 1 s runtime = 0.05 cost units
MASK_FACTOR_WEIGHT = 1.0     # doubling mask vertices = 1 cost unit
COST_FLOOR = 0.05            # every technique has engineering overhead
HIT_RATIO = 2.0
MATERIAL_BENEFIT = 0.05


class Verdict(Enum):
    HIT = "HIT"
    MIXED = "MIXED"
    HYPE = "HYPE"


@dataclass
class ScorecardRow:
    technique: str
    category: str
    yield_before: float
    yield_after: float
    hotspots_before: int
    hotspots_after: int
    area_percent: float
    mask_vertex_factor: float
    runtime_s: float
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def yield_delta_points(self) -> float:
        return 100.0 * (self.yield_after - self.yield_before)

    @property
    def hotspot_delta(self) -> int:
        return self.hotspots_before - self.hotspots_after

    @property
    def benefit(self) -> float:
        return max(
            YIELD_POINT_WEIGHT * self.yield_delta_points
            + HOTSPOT_WEIGHT * self.hotspot_delta,
            0.0,
        )

    @property
    def cost(self) -> float:
        return (
            COST_FLOOR
            + AREA_PERCENT_WEIGHT * max(self.area_percent, 0.0)
            + RUNTIME_WEIGHT * self.runtime_s
            + MASK_FACTOR_WEIGHT * max(self.mask_vertex_factor - 1.0, 0.0)
        )

    @property
    def ratio(self) -> float:
        return self.benefit / self.cost if self.cost > 0 else float("inf")

    @property
    def verdict(self) -> Verdict:
        if self.benefit < MATERIAL_BENEFIT:
            return Verdict.HYPE
        if self.ratio >= HIT_RATIO:
            return Verdict.HIT
        if self.ratio < 1.0:
            return Verdict.HYPE
        return Verdict.MIXED


@dataclass
class Scorecard:
    design: str
    node: str
    baseline: DesignMetrics
    rows: list[ScorecardRow] = field(default_factory=list)

    def add(self, row: ScorecardRow) -> None:
        self.rows.append(row)
        registry = get_registry()
        registry.inc(names.SCORECARD_ROWS)
        registry.inc(names.scorecard_verdict(row.verdict.value.lower()))

    def row(self, technique: str) -> ScorecardRow:
        for row in self.rows:
            if row.technique == technique:
                return row
        raise KeyError(technique)

    def render(self) -> str:
        header = (
            f"{'technique':<18} {'dY(pts)':>8} {'dHS':>5} {'area%':>7} "
            f"{'maskX':>6} {'t(s)':>6} {'benefit':>8} {'cost':>6} {'B/C':>6}  verdict"
        )
        lines = [
            f"Hit-or-Hype scorecard: {self.design} @ {self.node} "
            f"(baseline yield {self.baseline.yield_proxy:.4f}, "
            f"{self.baseline.hotspot_count} hotspots)",
            header,
            "-" * len(header),
        ]
        for row in sorted(self.rows, key=lambda r: -r.ratio):
            lines.append(
                f"{row.technique:<18} {row.yield_delta_points:>8.3f} "
                f"{row.hotspot_delta:>5d} {row.area_percent:>7.3f} "
                f"{row.mask_vertex_factor:>6.2f} {row.runtime_s:>6.2f} "
                f"{row.benefit:>8.3f} {row.cost:>6.2f} "
                f"{min(row.ratio, 999.0):>6.2f}  {row.verdict.value}"
            )
        return "\n".join(lines)
