"""The common report surface every ``*Report`` class shares.

Every engine in the package returns a report object (``DrcReport``,
``FullChipScanReport``, ``OrcReport``, ...).  Historically each invented
its own field names and serialization; :class:`BaseReport` is the
compatibility contract they all implement now:

* ``ok`` — True when the run is clean: no findings and no quarantined
  tiles.  The canonical health check (replaces the ad-hoc ``is_clean``
  / ``passed`` spellings, which remain as deprecated aliases).
* ``findings`` / ``findings_count`` — the engine's findings (violations,
  hotspots, opens/shorts, ...) as a sequence and a count.
* ``to_dict()`` / ``to_json()`` — deterministic JSON-able serialization
  of every dataclass field, for dashboards and programmatic consumers.
* ``summary()`` — the one-paragraph human rendering.

Field-naming conventions for tiled engines: ``tiles``, ``tiles_computed``,
``tiles_cached``, ``tiles_resumed``, ``quarantined``, ``compute_s``,
``elapsed_s``.  Renamed legacy attributes (``elapsed_seconds``,
``compute_seconds``, ``is_clean``, ``passed``) are kept as properties
that forward to the new name and raise a :class:`DeprecationWarning`.

This module is dependency-free on purpose: any subpackage may import it
without risking an import cycle.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from enum import Enum
from typing import Any, Sequence


def jsonable(value: Any) -> Any:
    """Reduce ``value`` to JSON-serializable primitives, recursively.

    Dataclasses become dicts (reports via their own :meth:`to_dict`),
    enums become their values, and anything else unrepresentable falls
    back to ``repr`` — lossy but deterministic.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Enum):
        return jsonable(value.value)
    if isinstance(value, BaseReport):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return repr(value)


class BaseReport:
    """Mixin giving every engine report one consistent API.

    Subclasses are dataclasses; they override :attr:`findings` (or
    :attr:`findings_count` directly when the findings are counted, not
    collected) and keep their domain-specific ``summary()``.
    """

    @property
    def findings(self) -> Sequence[Any]:
        """The run's findings; empty for measurement-only reports."""
        return ()

    @property
    def findings_count(self) -> int:
        """Number of findings reported by the run."""
        return len(self.findings)

    @property
    def ok(self) -> bool:
        """True when the run is clean: no findings, nothing quarantined."""
        return self.findings_count == 0 and not getattr(self, "quarantined", ())

    def to_dict(self) -> dict[str, Any]:
        """Every dataclass field plus ``ok``/``findings_count``, JSON-able."""
        out: dict[str, Any] = {
            "report": type(self).__name__,
            "ok": self.ok,
            "findings_count": self.findings_count,
        }
        if dataclasses.is_dataclass(self):
            for f in dataclasses.fields(self):
                out[f.name] = jsonable(getattr(self, f.name))
        return out

    def to_json(self, indent: int | None = None) -> str:
        """Deterministic (sorted-keys) JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        status = "clean" if self.ok else f"{self.findings_count} findings"
        return f"{type(self).__name__}: {status}"


def deprecated_alias(old: str, new: str) -> property:
    """A property forwarding the legacy attribute ``old`` to ``new``.

    Reads and writes both work, each warning once per call site via
    :class:`DeprecationWarning` so downstream code keeps running while
    it migrates.
    """

    def getter(self: Any) -> Any:
        warnings.warn(
            f"{type(self).__name__}.{old} is deprecated; use .{new}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self, new)

    def setter(self: Any, value: Any) -> None:
        warnings.warn(
            f"{type(self).__name__}.{old} is deprecated; use .{new}",
            DeprecationWarning,
            stacklevel=2,
        )
        setattr(self, new, value)

    return property(getter, setter, doc=f"Deprecated alias for ``{new}``.")
