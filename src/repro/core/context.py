"""The design context a technique operates on."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect, Region
from repro.layout import Cell, Layer
from repro.tech.technology import Technology


@dataclass
class DesignContext:
    """A flattened design plus its technology.

    Techniques mutate the context's cell (or replace layer regions); the
    harness hands each technique a fresh copy so measurements stay
    independent.
    """

    tech: Technology
    cell: Cell
    mask_overrides: dict[Layer, Region] = field(default_factory=dict)
    _region_cache: dict[Layer, Region] = field(default_factory=dict, repr=False)

    @classmethod
    def from_cell(cls, cell: Cell, tech: Technology) -> "DesignContext":
        return cls(tech=tech, cell=cell.flattened(f"{cell.name}_ctx"))

    def copy(self, suffix: str = "_mod") -> "DesignContext":
        return DesignContext(
            tech=self.tech,
            cell=self.cell.copy(self.cell.name + suffix),
            mask_overrides=dict(self.mask_overrides),
        )

    def set_mask(self, layer: Layer, mask: Region) -> None:
        """Record an OPC'd mask for a layer.  The drawn geometry stays the
        design intent; litho simulation exposes the mask instead."""
        self.mask_overrides[layer] = mask

    def mask_for(self, layer: Layer) -> Region:
        return self.mask_overrides.get(layer, self.region(layer))

    def region(self, layer: Layer) -> Region:
        if layer not in self._region_cache:
            self._region_cache[layer] = self.cell.region(layer)
        return self._region_cache[layer]

    def replace_layer(self, layer: Layer, region: Region) -> None:
        """Swap a layer's geometry (e.g. after wire spreading)."""
        self.cell._shapes[layer] = list(region.rects())
        self._region_cache.pop(layer, None)

    def invalidate(self, layer: Layer | None = None) -> None:
        if layer is None:
            self._region_cache.clear()
        else:
            self._region_cache.pop(layer, None)

    @property
    def extent(self) -> Rect:
        bb = self.cell.bbox
        return bb if bb is not None else Rect(0, 0, 1, 1)

    @property
    def area_nm2(self) -> int:
        return self.extent.area
