"""Scalar lithography simulation.

The model is a two-kernel scalar approximation: the mask raster is
convolved with a positive Gaussian point-spread (width set by lambda/NA
plus defocus blur in quadrature) and a wider negative flare kernel that
produces the dense/iso proximity bias real OPC has to fight.  A constant
resist threshold, scaled by dose, turns intensity into printed geometry.

This substitutes for the proprietary Hopkins/SOCS foundry models (see
DESIGN.md): corner rounding, line-end pullback, pitch-dependent CD, and
pinch/bridge hotspots all emerge with the correct shapes.
"""

from repro.litho.raster import rasterize, raster_to_region
from repro.litho.model import LithoModel, SimCache, simulate
from repro.litho.process import ProcessCondition, ProcessWindow, pv_bands, sweep_contours
from repro.litho.cd import measure_cd, cd_error, Cutline
from repro.litho.hotspots import Hotspot, HotspotKind, find_hotspots
from repro.litho.fullchip import FullChipScanReport, scan_full_chip
from repro.litho.metrology import (
    Gauge,
    MetrologyPlan,
    CdRecord,
    build_metrology_plan,
    measure_plan,
    cd_statistics,
)

__all__ = [
    "rasterize",
    "raster_to_region",
    "LithoModel",
    "SimCache",
    "simulate",
    "ProcessCondition",
    "ProcessWindow",
    "pv_bands",
    "sweep_contours",
    "measure_cd",
    "cd_error",
    "Cutline",
    "Hotspot",
    "HotspotKind",
    "find_hotspots",
    "FullChipScanReport",
    "scan_full_chip",
    "Gauge",
    "MetrologyPlan",
    "CdRecord",
    "build_metrology_plan",
    "measure_plan",
    "cd_statistics",
]
