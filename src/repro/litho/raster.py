"""Exact area-weighted rasterization of regions, and the inverse."""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect, Region
from repro.geometry.intervals import merge_intervals


def _axis_coverage(lo: float, hi: float, origin: int, n: int, grid: int) -> tuple[int, int, np.ndarray]:
    """Fractional coverage of pixels [start, stop) along one axis.

    Returns (start, stop, weights) where weights[i] is the covered
    fraction of pixel start+i.
    """
    a = (lo - origin) / grid
    b = (hi - origin) / grid
    a = max(a, 0.0)
    b = min(b, float(n))
    if b <= a:
        return 0, 0, np.empty(0)
    start = int(np.floor(a))
    stop = int(np.ceil(b))
    weights = np.ones(stop - start)
    weights[0] -= a - start
    weights[-1] -= stop - b
    # single-pixel span: both trims apply to the same entry (handled by the
    # two in-place subtractions above)
    return start, stop, weights


def rasterize(region: Region, window: Rect, grid: int) -> np.ndarray:
    """Rasterize a region into a float array of per-pixel coverage.

    Pixel (row j, col i) covers ``[x0 + i*grid, x0 + (i+1)*grid] x
    [y0 + j*grid, ...]``; values are exact covered-area fractions in
    [0, 1].  The array shape is (ny, nx), row 0 at the window bottom.
    """
    if grid <= 0:
        raise ValueError("grid must be positive")
    nx = -(-(window.x1 - window.x0) // grid)
    ny = -(-(window.y1 - window.y0) // grid)
    img = np.zeros((ny, nx))
    clipped = region & Region(window)
    for rect in clipped.rects():
        ix0, ix1, wx = _axis_coverage(rect.x0, rect.x1, window.x0, nx, grid)
        iy0, iy1, wy = _axis_coverage(rect.y0, rect.y1, window.y0, ny, grid)
        if ix1 > ix0 and iy1 > iy0:
            img[iy0:iy1, ix0:ix1] += np.outer(wy, wx)
    np.clip(img, 0.0, 1.0, out=img)
    return img


def raster_to_region(mask: np.ndarray, window: Rect, grid: int) -> Region:
    """Convert a boolean raster back into a Region (pixel-resolution)."""
    ny, nx = mask.shape
    rects: list[Rect] = []
    x0w, y0w = window.x0, window.y0
    for j in range(ny):
        row = mask[j]
        y0 = y0w + j * grid
        y1 = min(y0 + grid, window.y1)
        runs = _row_runs(row)
        for a, b in runs:
            rects.append(Rect(x0w + a * grid, y0, min(x0w + b * grid, window.x1), y1))
    return Region(rects)


def _row_runs(row: np.ndarray) -> list[tuple[int, int]]:
    """Start/stop indices of True runs in a boolean row."""
    idx = np.flatnonzero(np.diff(np.concatenate(([False], row, [False]))))
    return merge_intervals([(int(idx[k]), int(idx[k + 1])) for k in range(0, len(idx), 2)])
