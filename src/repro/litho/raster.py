"""Exact area-weighted rasterization of regions, and the inverse.

Both directions are vectorized: :func:`rasterize` scatters each
rectangle's separable coverage profile into a 2-D difference array (a
constant number of ``np.add.at`` updates per rectangle, then one
inclusive 2-D prefix sum), and :func:`raster_to_region` extracts every
row's True-runs from a single whole-array transition scan instead of a
Python loop per row.

Coverage is accumulated in *integer* area units (nm² — all layout
coordinates are integers) and divided by the pixel area exactly once at
the end.  That makes the result independent of how the region happens to
be decomposed into rectangles and of window translation by whole pixels:
the raster of a window is bit-identical to the centred slice of the
raster of any larger, pixel-aligned window.  The litho fast path
(:class:`repro.litho.model.SimCache`) relies on exactly this property to
rasterize once per tile and reuse slices across process conditions.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect, Region


def _axis_profile(
    lo: np.ndarray, hi: np.ndarray, grid: int
) -> tuple[np.ndarray, np.ndarray]:
    """Difference-array form of per-pixel covered length along one axis.

    ``lo``/``hi`` are window-relative integer coordinates (already
    clipped to ``[0, n*grid]``).  Returns ``(positions, values)`` of
    shape ``(R, 4)``: scattering ``values`` at ``positions`` into a
    length ``n+1`` array and prefix-summing yields, for every pixel, the
    integer length of ``[lo, hi]`` covering it.  The four-entry form
    ``(+a at c0, g-a at c0+1, b-g at c1-1, -b at c1)`` is exact for
    single-pixel spans too: the inverted middle range cancels the
    double-counted partial weights.
    """
    c0 = lo // grid
    c1 = -(-hi // grid)
    a = (c0 + 1) * grid - lo  # covered length in the first pixel column
    b = hi - (c1 - 1) * grid  # covered length in the last pixel column
    positions = np.stack([c0, c0 + 1, c1 - 1, c1], axis=1)
    values = np.stack([a, grid - a, b - grid, -b], axis=1)
    return positions, values


def rasterize(region: Region, window: Rect, grid: int) -> np.ndarray:
    """Rasterize a region into a float array of per-pixel coverage.

    Pixel (row j, col i) covers ``[x0 + i*grid, x0 + (i+1)*grid] x
    [y0 + j*grid, ...]``; values are exact covered-area fractions in
    [0, 1].  The array shape is (ny, nx), row 0 at the window bottom.
    """
    if grid <= 0:
        raise ValueError("grid must be positive")
    nx = -(-(window.x1 - window.x0) // grid)
    ny = -(-(window.y1 - window.y0) // grid)
    clipped = region & Region(window)
    if clipped.is_empty:
        return np.zeros((ny, nx))
    boxes = np.array(
        [(r.x0, r.y0, r.x1, r.y1) for r in clipped.rects()], dtype=np.int64
    )
    px, vx = _axis_profile(boxes[:, 0] - window.x0, boxes[:, 2] - window.x0, grid)
    py, vy = _axis_profile(boxes[:, 1] - window.y0, boxes[:, 3] - window.y0, grid)
    # separable 2-D scatter: the outer product of the two axis profiles
    diff = np.zeros((ny + 1, nx + 1), dtype=np.int64)
    rows = np.broadcast_to(py[:, :, None], (len(boxes), 4, 4))
    cols = np.broadcast_to(px[:, None, :], (len(boxes), 4, 4))
    vals = vy[:, :, None] * vx[:, None, :]
    np.add.at(diff, (rows.ravel(), cols.ravel()), vals.ravel())
    area = diff.cumsum(axis=0).cumsum(axis=1)[:ny, :nx]
    img = area / float(grid * grid)
    np.clip(img, 0.0, 1.0, out=img)
    return img


def raster_to_region(mask: np.ndarray, window: Rect, grid: int) -> Region:
    """Convert a boolean raster back into a Region (pixel-resolution)."""
    ny, nx = mask.shape
    if ny == 0 or nx == 0 or not mask.any():
        return Region()
    # one whole-array transition scan: +1 marks a run start, -1 the pixel
    # after a run end; np.nonzero is row-major, so starts and ends align
    # pairwise and arrive already sorted by (row, column)
    transitions = np.diff(mask.astype(np.int8), axis=1, prepend=0, append=0)
    jj, ii = np.nonzero(transitions)
    rising = transitions[jj, ii] > 0
    j_start, i_start = jj[rising], ii[rising]
    i_stop = ii[~rising]
    x0w, y0w = window.x0, window.y0
    x0 = x0w + i_start * grid
    x1 = np.minimum(x0w + i_stop * grid, window.x1)
    y0 = y0w + j_start * grid
    y1 = np.minimum(y0 + grid, window.y1)
    return Region(
        [Rect(int(a), int(b), int(c), int(d)) for a, b, c, d in zip(x0, y0, x1, y1)]
    )
