"""Model-based hotspot detection: pinching, bridging, and CD failures.

A hotspot is a location where the printed image departs from the drawn
intent badly enough to threaten yield:

* **PINCH** — drawn metal whose printed image locally necks below the
  pinch limit (open-circuit risk).
* **BRIDGE** — printed material in the gap between distinct drawn
  features (short-circuit risk).
* **MISSING** — a drawn feature that failed to print at all.

Detection runs at the worst process corners so marginal sites are caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry import GridIndex, Rect, Region
from repro.litho.model import LithoModel
from repro.litho.process import ProcessCondition, ProcessWindow, sweep_contours


class HotspotKind(Enum):
    PINCH = "pinch"
    BRIDGE = "bridge"
    MISSING = "missing"


@dataclass(frozen=True, slots=True)
class Hotspot:
    kind: HotspotKind
    marker: Rect
    severity: float  # violation area in nm^2 (bigger = worse)
    condition: ProcessCondition

    def __str__(self) -> str:
        return (
            f"{self.kind.value} @ {self.marker.as_tuple()} "
            f"severity={self.severity:g} [{self.condition}]"
        )


def find_hotspots(
    model: LithoModel,
    drawn: Region,
    window: Rect,
    process: ProcessWindow | None = None,
    pinch_limit: int | None = None,
    grid: int | None = None,
    mask: Region | None = None,
    min_severity: float = 50.0,
    use_cache: bool = True,
) -> list[Hotspot]:
    """Detect pinch/bridge/missing hotspots over the process corners.

    ``pinch_limit`` defaults to half the smallest drawn feature width in
    the window (estimated from the drawn region).  Bridging is defined by
    connectivity: a printed component touching two or more distinct drawn
    features shorts them.  ``mask`` is what gets exposed (defaults to the
    drawn layer itself — i.e. no OPC); hotspots are always judged against
    the drawn intent.

    ``min_severity`` drops sub-threshold detections (area in nm^2):
    contour micro-necks at the raster noise floor are metrology noise,
    and filtering them keeps results window- and tiling-invariant.

    The corner sweep runs through a :class:`~repro.litho.model.SimCache`
    (one rasterization, one blur per unique defocus) with indexed
    detection; ``use_cache=False`` runs the *reference engine* instead —
    one independent simulation per corner, pairwise detection and merge
    loops — an independent implementation that must produce identical
    results, kept as the verification baseline (and the before/after
    "before" row in the full-chip bench).
    """
    process = process or ProcessWindow()
    g = grid or model.settings.grid_nm
    exposed = mask if mask is not None else drawn
    drawn_in_window = drawn & Region(window)
    if drawn_in_window.is_empty:
        return []
    min_width = _min_feature_width(drawn_in_window)
    pinch_limit = pinch_limit if pinch_limit is not None else max(min_width // 2, g)

    raw: list[Hotspot] = []
    contours = sweep_contours(
        model, exposed, window, process.corners(), g, use_cache=use_cache
    )
    if use_cache:
        # everything derived from the drawn layer alone is corner-invariant:
        # compute it once here instead of once per corner
        ctx = _DrawnContext(drawn_in_window, min_width)
        for condition, printed in contours:
            raw.extend(
                h
                for h in _hotspots_at_condition(printed, drawn_in_window, condition, pinch_limit, ctx=ctx)
                if h.severity >= min_severity
            )
        return _merge_across_corners(raw)
    for condition, printed in contours:
        raw.extend(
            h
            for h in _hotspots_at_condition_reference(printed, drawn_in_window, condition, pinch_limit)
            if h.severity >= min_severity
        )
    return _merge_across_corners_reference(raw)


def _merge_across_corners(raw: list[Hotspot]) -> list[Hotspot]:
    """Coalesce hotspots of the same kind whose markers overlap or touch
    (the same physical site seen at several corners); keep the worst.

    Clustering is the closure of "touches the cluster's growing bounding
    box (expanded by 1)" — a bbox-indexed frontier walk, so merging n
    markers costs near-linear index queries instead of the O(n²)
    pairwise rescans the naive loop needs.
    """
    out: list[Hotspot] = []
    by_kind: dict[HotspotKind, list[Hotspot]] = {}
    for h in raw:
        by_kind.setdefault(h.kind, []).append(h)
    buf: list[int] = []
    for kind, group in by_kind.items():
        index: GridIndex[int] = GridIndex(cell_size=512)
        for i, h in enumerate(group):
            index.insert(h.marker, i)
        claimed = [False] * len(group)
        for seed in range(len(group)):
            if claimed[seed]:
                continue
            claimed[seed] = True
            cluster = [group[seed]]
            marker = group[seed].marker
            changed = True
            while changed:
                changed = False
                # query == "bbox touches the probe window", exactly the
                # old absorption test, so the closure is identical
                for j in index.query_into(marker.expanded(1), buf):
                    if not claimed[j]:
                        claimed[j] = True
                        cluster.append(group[j])
                        marker = marker.union_bbox(group[j].marker)
                        changed = True
            worst = max(cluster, key=lambda h: h.severity)
            out.append(Hotspot(kind, marker, worst.severity, worst.condition))
    out.sort(key=lambda h: (-h.severity, h.marker.as_tuple()))
    return out


def _merge_across_corners_reference(raw: list[Hotspot]) -> list[Hotspot]:
    """The original pairwise-rescan merge: every absorption rescans the
    whole remaining list.  O(n²) — kept as the independent reference for
    :func:`_merge_across_corners`, which must produce identical output.
    """
    out: list[Hotspot] = []
    by_kind: dict[HotspotKind, list[Hotspot]] = {}
    for h in raw:
        by_kind.setdefault(h.kind, []).append(h)
    for kind, group in by_kind.items():
        remaining = list(group)
        while remaining:
            seed = remaining.pop(0)
            cluster = [seed]
            marker = seed.marker
            changed = True
            while changed:
                changed = False
                for other in list(remaining):
                    if marker.expanded(1).touches(other.marker):
                        cluster.append(other)
                        remaining.remove(other)
                        marker = marker.union_bbox(other.marker)
                        changed = True
            worst = max(cluster, key=lambda h: h.severity)
            out.append(Hotspot(kind, marker, worst.severity, worst.condition))
    out.sort(key=lambda h: (-h.severity, h.marker.as_tuple()))
    return out


def _hotspots_at_condition_reference(
    printed: Region,
    drawn: Region,
    condition: ProcessCondition,
    pinch_limit: int,
    boundary_tol: int = 6,
) -> list[Hotspot]:
    """The original single-condition detector: plain pairwise loops, no
    index, no cross-corner reuse.  An independent implementation of
    :func:`_hotspots_at_condition` (same fixed ``_min_feature_width``),
    kept as the verification baseline the fast path is tested against.
    """
    out: list[Hotspot] = []
    drawn_components = drawn.components()

    # pinch (identical formulation to the indexed engine)
    printed_on_drawn = printed & drawn
    doubled = printed_on_drawn.scaled(2)
    necked = doubled - doubled.opened(max(pinch_limit - 1, 1))
    core = drawn.grown(-min(boundary_tol, _min_feature_width(drawn) // 2 - 1)).scaled(2) if not drawn.is_empty else Region()
    for comp in necked.components():
        if (comp & core).is_empty:
            continue
        bb = comp.bbox
        marker = Rect(bb.x0 // 2, bb.y0 // 2, -(-bb.x1 // 2), -(-bb.y1 // 2))
        out.append(Hotspot(HotspotKind.PINCH, marker, comp.area / 4.0, condition))

    # bridge: every (printed, drawn) component pair pays an exact test
    for comp in printed.components():
        touched = [d for d in drawn_components if comp.overlaps(d)]
        if len(touched) >= 2:
            gap_fill = comp - drawn
            marker_src = gap_fill if not gap_fill.is_empty else comp
            out.append(
                Hotspot(HotspotKind.BRIDGE, marker_src.bbox, marker_src.area, condition)
            )

    # missing: an entire drawn component printed nothing
    for comp in drawn_components:
        if (printed & comp).is_empty:
            out.append(Hotspot(HotspotKind.MISSING, comp.bbox, comp.area, condition))
    return out


def _min_feature_width(region: Region) -> int:
    """Smallest drawn feature width in the region.

    The canonical slab decomposition slices wide features at every x
    coordinate where *any* feature's boundary changes, so the raw rect
    list understates widths (a 1000-wide bar crossed by another
    feature's edges decomposes into arbitrarily narrow slab rects).
    Re-merge x-adjacent rects that carry an identical y-interval — the
    pieces of one horizontal run — and take the min caliper of the
    merged extents instead.
    """
    best: int | None = None
    run: tuple[int, int, int, int] | None = None  # (x0, y0, x1, y1)
    for r in sorted(region.rects(), key=lambda r: (r.y0, r.y1, r.x0)):
        if run is not None and r.y0 == run[1] and r.y1 == run[3] and r.x0 == run[2]:
            run = (run[0], run[1], r.x1, run[3])  # continues the current run
        else:
            if run is not None:
                w = min(run[2] - run[0], run[3] - run[1])
                best = w if best is None else min(best, w)
            run = (r.x0, r.y0, r.x1, r.y1)
    assert run is not None  # callers guard against empty regions
    w = min(run[2] - run[0], run[3] - run[1])
    return w if best is None else min(best, w)


class _DrawnContext:
    """Corner-invariant precomputation for one drawn window.

    The corner sweep calls :func:`_hotspots_at_condition` once per
    process corner with the *same* drawn region — its component split,
    the bbox index over those components, and the pinch core (drawn
    shrunk by the boundary tolerance) never change across corners, so
    they are computed once per window here instead of once per corner.
    """

    __slots__ = ("components", "index", "core", "buf")

    def __init__(self, drawn: Region, min_width: int, boundary_tol: int = 6):
        self.components = drawn.components()
        self.index: GridIndex[int] = GridIndex(cell_size=2048)
        for i, d in enumerate(self.components):
            self.index.insert(d.bbox, i)
        self.core = (
            drawn.grown(-min(boundary_tol, min_width // 2 - 1)).scaled(2)
            if not drawn.is_empty
            else Region()
        )
        self.buf: list[int] = []


def _hotspots_at_condition(
    printed: Region,
    drawn: Region,
    condition: ProcessCondition,
    pinch_limit: int,
    boundary_tol: int = 6,
    ctx: _DrawnContext | None = None,
) -> list[Hotspot]:
    out: list[Hotspot] = []
    if ctx is None:
        min_width = _min_feature_width(drawn) if not drawn.is_empty else 0
        ctx = _DrawnContext(drawn, min_width, boundary_tol)
    drawn_components = ctx.components

    # pinch: printed image of drawn features necks below the limit.
    # Work in the doubled lattice for parity-free opening.  Necks that
    # never reach the feature core (drawn shrunk by the tolerance) are
    # contour staircase artefacts at the boundary, not electrical necks.
    printed_on_drawn = printed & drawn
    doubled = printed_on_drawn.scaled(2)
    necked = doubled - doubled.opened(max(pinch_limit - 1, 1))
    core = ctx.core
    for comp in necked.components():
        if not comp.overlaps(core):
            continue
        bb = comp.bbox
        marker = Rect(bb.x0 // 2, bb.y0 // 2, -(-bb.x1 // 2), -(-bb.y1 // 2))
        out.append(Hotspot(HotspotKind.PINCH, marker, comp.area / 4.0, condition))

    # bridge: one printed component shorting >= 2 distinct drawn features.
    # The overlap tests are bbox-prefiltered through a GridIndex — only
    # drawn components whose bbox touches the printed component's bbox
    # pay for an exact overlap sweep; the same pass marks which drawn
    # components printed at all, giving the missing check for free.
    drawn_index = ctx.index
    printed_any = [False] * len(drawn_components)
    buf = ctx.buf
    for comp in printed.components():
        bb = comp.bbox
        touched = [
            i
            for i in sorted(drawn_index.query_into(bb, buf))
            if comp.overlaps(drawn_components[i])
        ]
        for i in touched:
            printed_any[i] = True
        if len(touched) >= 2:
            gap_fill = comp - drawn
            marker_src = gap_fill if not gap_fill.is_empty else comp
            out.append(
                Hotspot(HotspotKind.BRIDGE, marker_src.bbox, marker_src.area, condition)
            )

    # missing: an entire drawn component printed nothing (equivalently,
    # no printed component overlaps it)
    for i, comp in enumerate(drawn_components):
        if not printed_any[i]:
            out.append(Hotspot(HotspotKind.MISSING, comp.bbox, comp.area, condition))
    return out
