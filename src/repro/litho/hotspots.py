"""Model-based hotspot detection: pinching, bridging, and CD failures.

A hotspot is a location where the printed image departs from the drawn
intent badly enough to threaten yield:

* **PINCH** — drawn metal whose printed image locally necks below the
  pinch limit (open-circuit risk).
* **BRIDGE** — printed material in the gap between distinct drawn
  features (short-circuit risk).
* **MISSING** — a drawn feature that failed to print at all.

Detection runs at the worst process corners so marginal sites are caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry import Rect, Region
from repro.litho.model import LithoModel
from repro.litho.process import ProcessCondition, ProcessWindow


class HotspotKind(Enum):
    PINCH = "pinch"
    BRIDGE = "bridge"
    MISSING = "missing"


@dataclass(frozen=True, slots=True)
class Hotspot:
    kind: HotspotKind
    marker: Rect
    severity: float  # violation area in nm^2 (bigger = worse)
    condition: ProcessCondition

    def __str__(self) -> str:
        return (
            f"{self.kind.value} @ {self.marker.as_tuple()} "
            f"severity={self.severity:g} [{self.condition}]"
        )


def find_hotspots(
    model: LithoModel,
    drawn: Region,
    window: Rect,
    process: ProcessWindow | None = None,
    pinch_limit: int | None = None,
    grid: int | None = None,
    mask: Region | None = None,
    min_severity: float = 50.0,
) -> list[Hotspot]:
    """Detect pinch/bridge/missing hotspots over the process corners.

    ``pinch_limit`` defaults to half the smallest drawn feature width in
    the window (estimated from the drawn region).  Bridging is defined by
    connectivity: a printed component touching two or more distinct drawn
    features shorts them.  ``mask`` is what gets exposed (defaults to the
    drawn layer itself — i.e. no OPC); hotspots are always judged against
    the drawn intent.

    ``min_severity`` drops sub-threshold detections (area in nm^2):
    contour micro-necks at the raster noise floor are metrology noise,
    and filtering them keeps results window- and tiling-invariant.
    """
    process = process or ProcessWindow()
    g = grid or model.settings.grid_nm
    exposed = mask if mask is not None else drawn
    drawn_in_window = drawn & Region(window)
    if drawn_in_window.is_empty:
        return []
    min_width = _min_feature_width(drawn_in_window)
    pinch_limit = pinch_limit if pinch_limit is not None else max(min_width // 2, g)

    raw: list[Hotspot] = []
    for condition in process.corners():
        printed = model.print_contour(exposed, window, condition.dose, condition.defocus_nm, g)
        raw.extend(
            h
            for h in _hotspots_at_condition(printed, drawn_in_window, condition, pinch_limit)
            if h.severity >= min_severity
        )
    return _merge_across_corners(raw)


def _merge_across_corners(raw: list[Hotspot]) -> list[Hotspot]:
    """Coalesce hotspots of the same kind whose markers overlap or touch
    (the same physical site seen at several corners); keep the worst."""
    out: list[Hotspot] = []
    by_kind: dict[HotspotKind, list[Hotspot]] = {}
    for h in raw:
        by_kind.setdefault(h.kind, []).append(h)
    for kind, group in by_kind.items():
        remaining = list(group)
        while remaining:
            seed = remaining.pop(0)
            cluster = [seed]
            marker = seed.marker
            changed = True
            while changed:
                changed = False
                for other in list(remaining):
                    if marker.expanded(1).touches(other.marker):
                        cluster.append(other)
                        remaining.remove(other)
                        marker = marker.union_bbox(other.marker)
                        changed = True
            worst = max(cluster, key=lambda h: h.severity)
            out.append(Hotspot(kind, marker, worst.severity, worst.condition))
    out.sort(key=lambda h: (-h.severity, h.marker.as_tuple()))
    return out


def _min_feature_width(region: Region) -> int:
    return min(min(r.width, r.height) for r in region.rects())


def _hotspots_at_condition(
    printed: Region,
    drawn: Region,
    condition: ProcessCondition,
    pinch_limit: int,
    boundary_tol: int = 6,
) -> list[Hotspot]:
    out: list[Hotspot] = []
    drawn_components = drawn.components()

    # pinch: printed image of drawn features necks below the limit.
    # Work in the doubled lattice for parity-free opening.  Necks that
    # never reach the feature core (drawn shrunk by the tolerance) are
    # contour staircase artefacts at the boundary, not electrical necks.
    printed_on_drawn = printed & drawn
    doubled = printed_on_drawn.scaled(2)
    necked = doubled - doubled.opened(max(pinch_limit - 1, 1))
    core = drawn.grown(-min(boundary_tol, _min_feature_width(drawn) // 2 - 1)).scaled(2) if not drawn.is_empty else Region()
    for comp in necked.components():
        if (comp & core).is_empty:
            continue
        bb = comp.bbox
        marker = Rect(bb.x0 // 2, bb.y0 // 2, -(-bb.x1 // 2), -(-bb.y1 // 2))
        out.append(Hotspot(HotspotKind.PINCH, marker, comp.area / 4.0, condition))

    # bridge: one printed component shorting >= 2 distinct drawn features
    for comp in printed.components():
        touched = [d for d in drawn_components if comp.overlaps(d)]
        if len(touched) >= 2:
            gap_fill = comp - drawn
            marker_src = gap_fill if not gap_fill.is_empty else comp
            out.append(
                Hotspot(HotspotKind.BRIDGE, marker_src.bbox, marker_src.area, condition)
            )

    # missing: an entire drawn component printed nothing
    for comp in drawn_components:
        if (printed & comp).is_empty:
            out.append(Hotspot(HotspotKind.MISSING, comp.bbox, comp.area, condition))
    return out
