"""Design-driven metrology: generate CD measurement plans from layout.

The design-based-metrology idea: instead of hand-picking SEM sites,
derive them from the layout — every distinct context (dense line, iso
line, line end, via landing) gets gauges placed automatically, and the
measurement results come back keyed to design coordinates.  Here the
"SEM" is the litho simulator, which closes the loop for model calibration
studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import GridIndex, Rect, Region
from repro.litho.cd import Cutline
from repro.litho.model import LithoModel


@dataclass(frozen=True, slots=True)
class Gauge:
    """One measurement site: a cutline plus its design intent."""

    name: str
    cut: Cutline
    drawn_cd: int
    context: str  # "dense" | "iso" | "line-end" | ...


@dataclass
class MetrologyPlan:
    gauges: list[Gauge] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.gauges)

    def by_context(self) -> dict[str, list[Gauge]]:
        out: dict[str, list[Gauge]] = {}
        for g in self.gauges:
            out.setdefault(g.context, []).append(g)
        return out


@dataclass
class CdRecord:
    gauge: Gauge
    printed_cd: float

    @property
    def error(self) -> float:
        return self.printed_cd - self.gauge.drawn_cd


def build_metrology_plan(
    region: Region,
    iso_distance: int = 200,
    max_gauges_per_context: int = 50,
    min_run: int = 200,
) -> MetrologyPlan:
    """Derive gauges from a layer's geometry.

    Only *simple* features (connected components that are a single
    rectangle — straight wire runs) are gauged: a fragment of a merged
    polygon has no well-defined drawn CD.  Long runs become width gauges,
    classified dense or iso by the presence of a neighbour within
    ``iso_distance``; their run direction also gets a line-end gauge.
    """
    plan = MetrologyPlan()
    components = region.components()
    simple = [next(c.rects()) for c in components if len(c) == 1]
    index: GridIndex[Rect] = GridIndex(cell_size=max(4 * iso_distance, 512))
    for comp in components:
        index.insert(comp.bbox, comp.bbox)
    counts: dict[str, int] = {}

    def add(gauge: Gauge) -> None:
        if counts.get(gauge.context, 0) < max_gauges_per_context:
            plan.gauges.append(gauge)
            counts[gauge.context] = counts.get(gauge.context, 0) + 1

    for k, r in enumerate(simple):
        vertical = r.height >= r.width
        run = r.height if vertical else r.width
        width = r.width if vertical else r.height
        if run < min_run:
            continue
        centre = r.center
        cut = Cutline(centre, horizontal=vertical)
        neighbours = [
            other
            for other in index.query(r.expanded(iso_distance))
            if other != r and r.distance(other) < iso_distance
        ]
        context = "dense" if neighbours else "iso"
        add(Gauge(f"g{k}", cut, width, context))
        # line-end gauge along the run direction
        end_cut = Cutline(centre, horizontal=not vertical)
        add(Gauge(f"g{k}e", end_cut, run, "line-end"))
    return plan


def measure_plan(
    model: LithoModel,
    mask: Region,
    plan: MetrologyPlan,
    dose: float = 1.0,
    defocus_nm: float = 0.0,
    grid: int | None = None,
) -> list[CdRecord]:
    """Run every gauge through the simulator (the virtual CD-SEM).

    The measurement strip reaches past the gauge's drawn CD so long
    features (line-end gauges) are captured whole.
    """
    records = []
    for gauge in plan.gauges:
        reach = max(400, gauge.drawn_cd // 2 + 200)
        printed = model.measure_cd(
            mask, gauge.cut, dose=dose, defocus_nm=defocus_nm, grid=grid, reach_nm=reach
        )
        records.append(CdRecord(gauge=gauge, printed_cd=printed))
    return records


def cd_statistics(records: list[CdRecord]) -> dict[str, tuple[float, float, int]]:
    """(mean error, max |error|, count) per context."""
    out: dict[str, tuple[float, float, int]] = {}
    groups: dict[str, list[float]] = {}
    for record in records:
        groups.setdefault(record.gauge.context, []).append(record.error)
    for context, errors in groups.items():
        mean = sum(errors) / len(errors)
        worst = max(abs(e) for e in errors)
        out[context] = (mean, worst, len(errors))
    return out
