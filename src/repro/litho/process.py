"""Process conditions, corner sets, and PV bands."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.geometry import Rect, Region
from repro.litho.model import LithoModel


@dataclass(frozen=True, slots=True)
class ProcessCondition:
    """One (dose, defocus) point in the process space."""

    dose: float = 1.0
    defocus_nm: float = 0.0

    def __str__(self) -> str:
        return f"dose={self.dose:.3f}, defocus={self.defocus_nm:g}nm"


@dataclass(frozen=True, slots=True)
class ProcessWindow:
    """A rectangular dose/defocus window with corner enumeration."""

    dose_min: float = 0.95
    dose_max: float = 1.05
    defocus_max_nm: float = 80.0

    def corners(self) -> list[ProcessCondition]:
        """Nominal plus the four worst-case corners."""
        return [
            ProcessCondition(1.0, 0.0),
            ProcessCondition(self.dose_min, 0.0),
            ProcessCondition(self.dose_max, 0.0),
            ProcessCondition(self.dose_min, self.defocus_max_nm),
            ProcessCondition(self.dose_max, self.defocus_max_nm),
        ]

    def grid(self, n_dose: int = 5, n_defocus: int = 3) -> Iterator[ProcessCondition]:
        """A full dose x defocus sampling of the window."""
        for i in range(n_dose):
            dose = self.dose_min + (self.dose_max - self.dose_min) * i / max(n_dose - 1, 1)
            for j in range(n_defocus):
                defocus = self.defocus_max_nm * j / max(n_defocus - 1, 1)
                yield ProcessCondition(dose, defocus)


def sweep_contours(
    model: LithoModel,
    mask: Region,
    window: Rect,
    conditions: Iterable[ProcessCondition],
    grid: int | None = None,
    use_cache: bool = True,
) -> Iterator[tuple[ProcessCondition, Region]]:
    """Printed contours at each condition, through one :class:`SimCache
    <repro.litho.model.SimCache>`.

    The sweep rasterizes the mask once and blurs once per unique defocus,
    so a five-corner set costs 1 rasterization + 4 Gaussian filters and a
    5x3 :meth:`ProcessWindow.grid` sweep costs 1 + 6 (instead of 15 +
    30).  ``use_cache=False`` falls back to one independent simulation
    per condition — bit-identical output, for verification.
    """
    conditions = list(conditions)
    if use_cache:
        sim = model.sim_cache(
            mask, window, grid, defocus_hint=[c.defocus_nm for c in conditions]
        )
        for condition in conditions:
            yield condition, sim.print_contour(condition.dose, condition.defocus_nm)
    else:
        for condition in conditions:
            yield (
                condition,
                model.print_contour(
                    mask, window, condition.dose, condition.defocus_nm, grid
                ),
            )


def pv_bands(
    model: LithoModel,
    mask: Region,
    window: Rect,
    process: ProcessWindow | None = None,
    grid: int | None = None,
    conditions: Iterable[ProcessCondition] | None = None,
    use_cache: bool = True,
) -> tuple[Region, Region]:
    """Process-variability bands over the window corners.

    Returns ``(inner, outer)``: the geometry printed under *all* corners
    and under *any* corner.  The band ``outer - inner`` is the variability
    region whose area is the standard printability metric.  Pass
    ``conditions`` (e.g. :meth:`ProcessWindow.grid`) to band over an
    arbitrary condition set instead of the five corners.
    """
    process = process or ProcessWindow()
    if conditions is None:
        conditions = process.corners()
    inner: Region | None = None
    outer = Region()
    for _, printed in sweep_contours(model, mask, window, conditions, grid, use_cache):
        inner = printed if inner is None else (inner & printed)
        outer = outer | printed
    assert inner is not None
    return inner, outer


def pv_band_area(
    model: LithoModel,
    mask: Region,
    window: Rect,
    process: ProcessWindow | None = None,
    grid: int | None = None,
) -> int:
    """Area of the PV band (smaller = more robust printing)."""
    inner, outer = pv_bands(model, mask, window, process, grid)
    return (outer - inner).area
