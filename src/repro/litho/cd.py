"""Critical-dimension metrology on printed (or drawn) geometry."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect, Region
from repro.geometry.intervals import intersect_intervals, merge_intervals


@dataclass(frozen=True, slots=True)
class Cutline:
    """A measurement cut: a point and a direction.

    ``horizontal=True`` measures the feature width along x at the given y
    (i.e. a horizontal cut through a vertical line); ``False`` measures
    along y.
    """

    at: Point
    horizontal: bool = True

    def __str__(self) -> str:
        axis = "x" if self.horizontal else "y"
        return f"cut@({self.at.x},{self.at.y})/{axis}"


def _spans_at(region: Region, cut: Cutline) -> list[tuple[int, int]]:
    """The 1-D occupied spans along the cut direction."""
    if cut.horizontal:
        probe = Rect(-(1 << 40), cut.at.y, 1 << 40, cut.at.y + 1)
        sliced = region & Region(probe)
        return merge_intervals([(r.x0, r.x1) for r in sliced.rects()])
    probe = Rect(cut.at.x, -(1 << 40), cut.at.x + 1, 1 << 40)
    sliced = region & Region(probe)
    return merge_intervals([(r.y0, r.y1) for r in sliced.rects()])


def measure_cd(region: Region, cut: Cutline) -> int:
    """Width of the feature under the cut point, 0 if nothing prints
    there.

    The measured span is the one containing the cut coordinate (or the
    nearest span within half a typical pitch if the feature drifted).
    """
    spans = _spans_at(region, cut)
    if not spans:
        return 0
    coord = cut.at.x if cut.horizontal else cut.at.y
    for a, b in spans:
        if a <= coord <= b:
            return b - a
    # feature moved: take the closest span
    a, b = min(spans, key=lambda s: min(abs(s[0] - coord), abs(s[1] - coord)))
    return b - a


def measure_space(region: Region, cut: Cutline) -> int:
    """Gap width at the cut point, 0 if the point is covered."""
    spans = _spans_at(region, cut)
    coord = cut.at.x if cut.horizontal else cut.at.y
    prev_end = None
    for a, b in spans:
        if a <= coord <= b:
            return 0
        if a > coord:
            lo = prev_end if prev_end is not None else -(1 << 40)
            return a - lo
        prev_end = b
    return (1 << 40) if prev_end is None else (1 << 40) - prev_end


def cd_error(printed: Region, drawn: Region, cut: Cutline) -> int:
    """Printed minus drawn CD at the cut (positive: printed fat)."""
    return measure_cd(printed, cut) - measure_cd(drawn, cut)


def subpixel_cd(
    image, window: Rect, grid: int, cut: Cutline, threshold: float
) -> float:
    """Sub-pixel CD from an aerial-image array via linear interpolation.

    ``image`` is the array returned by ``LithoModel.aerial_image`` over
    ``window`` at ``grid`` nm/pixel.  The profile along the cut is
    threshold-crossed with linear interpolation, giving ~0.1 nm CD
    resolution regardless of the simulation grid — the tool to use for
    dose/focus CD sensitivity studies.
    """
    import numpy as np

    ny, nx = image.shape
    if cut.horizontal:
        j = (cut.at.y - window.y0) // grid
        if not 0 <= j < ny:
            raise ValueError("cut outside window")
        profile = np.asarray(image[j, :], dtype=float)
        coord_px = (cut.at.x - window.x0) / grid
        origin = window.x0
    else:
        i = (cut.at.x - window.x0) // grid
        if not 0 <= i < nx:
            raise ValueError("cut outside window")
        profile = np.asarray(image[:, i], dtype=float)
        coord_px = (cut.at.y - window.y0) / grid
        origin = window.y0
    above = profile >= threshold
    k = int(round(coord_px))
    k = max(0, min(k, len(profile) - 1))
    if not above[k]:
        return 0.0
    # walk out to the crossings on each side
    lo = k
    while lo > 0 and above[lo - 1]:
        lo -= 1
    hi = k
    while hi < len(profile) - 1 and above[hi + 1]:
        hi += 1
    # interpolate the left crossing between lo-1 and lo
    if lo == 0:
        left = 0.0
    else:
        f = (threshold - profile[lo - 1]) / (profile[lo] - profile[lo - 1])
        left = (lo - 1) + f
    if hi == len(profile) - 1:
        right = float(hi)
    else:
        f = (threshold - profile[hi]) / (profile[hi + 1] - profile[hi])
        right = hi + f
    # crossings are at pixel centres; convert to nm
    return (right - left) * grid


def line_end_pullback(printed: Region, drawn: Region, cut: Cutline) -> int:
    """How far a line end retreated along the cut direction.

    The cut should run along the line (horizontal=False for a vertical
    line).  Positive values mean the printed line is shorter.
    """
    drawn_spans = _spans_at(drawn, cut)
    printed_spans = _spans_at(printed, cut)
    if not drawn_spans:
        return 0
    coord = cut.at.x if cut.horizontal else cut.at.y
    drawn_span = next(((a, b) for a, b in drawn_spans if a <= coord <= b), drawn_spans[0])
    overlapping = intersect_intervals([drawn_span], printed_spans)
    if not overlapping:
        return drawn_span[1] - drawn_span[0]  # line vanished entirely
    printed_hi = max(b for _, b in overlapping)
    printed_lo = min(a for a, _ in overlapping)
    return max(drawn_span[1] - printed_hi, printed_lo - drawn_span[0], 0)
