"""The two-kernel scalar aerial-image model."""

from __future__ import annotations

import math

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.geometry import Rect, Region
from repro.litho.raster import raster_to_region, rasterize
from repro.obs import get_registry, names
from repro.tech.technology import LithoSettings


class LithoModel:
    """Aerial-image simulator for a litho settings object.

    Intensity model::

        I = (1 + flare) * G[sigma](mask) - flare * G[flare_ratio * sigma](mask)

    where ``sigma`` combines the optical PSF width and defocus blur in
    quadrature.  A clear field prints at intensity 1.0; the printed
    contour is ``I * dose >= resist_threshold``.
    """

    def __init__(
        self,
        settings: LithoSettings | None = None,
        flare: float = 0.35,
        flare_ratio: float = 3.0,
    ):
        self.settings = settings or LithoSettings()
        self.flare = flare
        self.flare_ratio = flare_ratio

    # -- derived quantities --------------------------------------------------
    def blur_sigma_nm(self, defocus_nm: float = 0.0) -> float:
        s0 = self.settings.psf_sigma_nm
        sd = self.settings.defocus_sigma_nm(defocus_nm)
        return math.hypot(s0, sd)

    def halo_nm(self, defocus_nm: float = 0.0) -> int:
        """Guard band needed around a simulation window: 2.5x the widest
        kernel (residual tail < 2% of the flare term)."""
        return int(math.ceil(2.5 * self.flare_ratio * self.blur_sigma_nm(defocus_nm)))

    def _halo_px(self, defocus_nm: float, grid: int) -> int:
        """The halo in whole pixels (rounded up to the pixel grid)."""
        return -(-self.halo_nm(defocus_nm) // grid)

    def _blur(self, raster: np.ndarray, sigma_px: float) -> np.ndarray:
        """The intensity field of a raster: main PSF minus flare kernel."""
        main = gaussian_filter(raster, sigma_px, mode="constant")
        wide = gaussian_filter(raster, sigma_px * self.flare_ratio, mode="constant")
        return (1.0 + self.flare) * main - self.flare * wide

    # -- core simulation --------------------------------------------------------
    def aerial_image(
        self,
        mask: Region,
        window: Rect,
        defocus_nm: float = 0.0,
        grid: int | None = None,
    ) -> np.ndarray:
        """Aerial intensity over ``window``.

        The mask is rasterized over the window expanded by the optical
        halo so border effects are exact inside the window.
        """
        g = grid or self.settings.grid_nm
        trim = self._halo_px(defocus_nm, g)
        halo = trim * g
        big = Rect(window.x0 - halo, window.y0 - halo, window.x1 + halo, window.y1 + halo)
        raster = rasterize(mask, big, g)
        image = self._blur(raster, self.blur_sigma_nm(defocus_nm) / g)
        return image[trim:-trim or None, trim:-trim or None]

    def print_image(
        self,
        mask: Region,
        window: Rect,
        dose: float = 1.0,
        defocus_nm: float = 0.0,
        grid: int | None = None,
    ) -> np.ndarray:
        """Boolean printed raster at the given process condition."""
        if dose <= 0:
            raise ValueError("dose must be positive")
        image = self.aerial_image(mask, window, defocus_nm, grid)
        return image * dose >= self.settings.resist_threshold

    def print_contour(
        self,
        mask: Region,
        window: Rect,
        dose: float = 1.0,
        defocus_nm: float = 0.0,
        grid: int | None = None,
    ) -> Region:
        """Printed geometry as a Region (pixel-resolution contour)."""
        g = grid or self.settings.grid_nm
        printed = self.print_image(mask, window, dose, defocus_nm, g)
        return raster_to_region(printed, window, g)

    def sim_cache(
        self,
        mask: Region,
        window: Rect,
        grid: int | None = None,
        defocus_hint: tuple[float, ...] | list[float] = (),
    ) -> "SimCache":
        """A :class:`SimCache` for repeated simulation of one window.

        ``defocus_hint`` lists the defocus values the caller intends to
        simulate, so the mask is rasterized exactly once, at the widest
        halo any of them needs.
        """
        return SimCache(self, mask, window, grid, defocus_hint)

    def measure_cd(
        self,
        mask: Region,
        cut,
        dose: float = 1.0,
        defocus_nm: float = 0.0,
        grid: int | None = None,
        reach_nm: int = 400,
    ) -> float:
        """Sub-pixel printed CD at a cutline (see litho.cd.subpixel_cd).

        Simulates a small strip window around the cut (``reach_nm`` each
        way along the cut direction) — cheap enough for dose/focus sweeps.
        """
        from repro.litho.cd import subpixel_cd

        g = grid or self.settings.grid_nm
        x, y = cut.at.x, cut.at.y
        if cut.horizontal:
            window = Rect(x - reach_nm, y - 4 * g, x + reach_nm, y + 4 * g)
        else:
            window = Rect(x - 4 * g, y - reach_nm, x + 4 * g, y + reach_nm)
        image = self.aerial_image(mask, window, defocus_nm, g)
        threshold = self.settings.resist_threshold / dose
        return subpixel_cd(image, window, g, cut, threshold)


class SimCache:
    """Unique-condition reuse for one (mask, window, grid) simulation.

    Process-corner and process-window sweeps re-simulate the same mask
    over the same window at many (dose, defocus) conditions, but the
    expensive work depends on far fewer degrees of freedom:

    * the mask raster depends only on the window and grid — the cache
      rasterizes once, at the widest halo requested, and serves every
      narrower halo as a centred slice (exact, because
      :func:`repro.litho.raster.rasterize` accumulates integer areas,
      making rasters slice-invariant across pixel-aligned windows);
    * the aerial image depends only on the blur sigma — ±defocus
      collapse under ``hypot``, so the cache blurs once per unique
      sigma;
    * dose only scales the resist threshold — thresholding a cached
      aerial image is nearly free.

    A five-corner sweep therefore costs 1 rasterization and 4 Gaussian
    filters instead of 5 and 10, and a 5x3 process-window grid costs 1
    and 6 instead of 15 and 30.  Every result is bit-identical to the
    uncached :class:`LithoModel` methods — asserted by the fast-path
    equivalence tests.
    """

    def __init__(
        self,
        model: LithoModel,
        mask: Region,
        window: Rect,
        grid: int | None = None,
        defocus_hint: tuple[float, ...] | list[float] = (),
    ):
        self.model = model
        self.mask = mask
        self.window = window
        self.grid = grid or model.settings.grid_nm
        self._raster: np.ndarray | None = None
        self._raster_halo_px = 0
        self._images: dict[float, np.ndarray] = {}  # blur sigma (nm) -> image
        if defocus_hint:
            self._raster_halo_px = max(
                model._halo_px(d, self.grid) for d in defocus_hint
            )

    def _raster_for(self, halo_px: int) -> np.ndarray:
        """The mask raster over the window expanded by ``halo_px`` pixels."""
        registry = get_registry()
        if self._raster is None or halo_px > self._raster_halo_px:
            g = self.grid
            halo = max(halo_px, self._raster_halo_px) * g
            w = self.window
            big = Rect(w.x0 - halo, w.y0 - halo, w.x1 + halo, w.y1 + halo)
            self._raster = rasterize(self.mask, big, g)
            self._raster_halo_px = halo // g
        else:
            registry.inc(names.SIM_RASTER_REUSE)
        trim = self._raster_halo_px - halo_px
        if trim == 0:
            return self._raster
        # exact thanks to integer-area rasterization (see raster.py)
        return np.ascontiguousarray(self._raster[trim:-trim, trim:-trim])

    def aerial_image(self, defocus_nm: float = 0.0) -> np.ndarray:
        """Aerial intensity over the window; bit-identical to
        :meth:`LithoModel.aerial_image` at the same condition."""
        sigma = self.model.blur_sigma_nm(defocus_nm)
        image = self._images.get(sigma)
        if image is None:
            g = self.grid
            trim = self.model._halo_px(defocus_nm, g)
            raster = self._raster_for(trim)
            image = self.model._blur(raster, sigma / g)
            image = image[trim:-trim or None, trim:-trim or None]
            self._images[sigma] = image
            get_registry().inc(names.SIM_BLUR_UNIQUE, 2)  # main + flare kernels
        return image

    def print_image(self, dose: float = 1.0, defocus_nm: float = 0.0) -> np.ndarray:
        """Boolean printed raster at the given process condition."""
        if dose <= 0:
            raise ValueError("dose must be positive")
        image = self.aerial_image(defocus_nm)
        return image * dose >= self.model.settings.resist_threshold

    def print_contour(self, dose: float = 1.0, defocus_nm: float = 0.0) -> Region:
        """Printed geometry as a Region (pixel-resolution contour)."""
        printed = self.print_image(dose, defocus_nm)
        return raster_to_region(printed, self.window, self.grid)


def simulate(
    mask: Region,
    window: Rect,
    settings: LithoSettings | None = None,
    dose: float = 1.0,
    defocus_nm: float = 0.0,
) -> Region:
    """Convenience one-shot: printed contour of a mask region."""
    return LithoModel(settings).print_contour(mask, window, dose, defocus_nm)
