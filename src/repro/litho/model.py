"""The two-kernel scalar aerial-image model."""

from __future__ import annotations

import math

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.geometry import Rect, Region
from repro.litho.raster import raster_to_region, rasterize
from repro.tech.technology import LithoSettings


class LithoModel:
    """Aerial-image simulator for a litho settings object.

    Intensity model::

        I = (1 + flare) * G[sigma](mask) - flare * G[flare_ratio * sigma](mask)

    where ``sigma`` combines the optical PSF width and defocus blur in
    quadrature.  A clear field prints at intensity 1.0; the printed
    contour is ``I * dose >= resist_threshold``.
    """

    def __init__(
        self,
        settings: LithoSettings | None = None,
        flare: float = 0.35,
        flare_ratio: float = 3.0,
    ):
        self.settings = settings or LithoSettings()
        self.flare = flare
        self.flare_ratio = flare_ratio

    # -- derived quantities --------------------------------------------------
    def blur_sigma_nm(self, defocus_nm: float = 0.0) -> float:
        s0 = self.settings.psf_sigma_nm
        sd = self.settings.defocus_sigma_nm(defocus_nm)
        return math.hypot(s0, sd)

    def halo_nm(self, defocus_nm: float = 0.0) -> int:
        """Guard band needed around a simulation window: 2.5x the widest
        kernel (residual tail < 2% of the flare term)."""
        return int(math.ceil(2.5 * self.flare_ratio * self.blur_sigma_nm(defocus_nm)))

    # -- core simulation --------------------------------------------------------
    def aerial_image(
        self,
        mask: Region,
        window: Rect,
        defocus_nm: float = 0.0,
        grid: int | None = None,
    ) -> np.ndarray:
        """Aerial intensity over ``window``.

        The mask is rasterized over the window expanded by the optical
        halo so border effects are exact inside the window.
        """
        g = grid or self.settings.grid_nm
        halo = self.halo_nm(defocus_nm)
        halo = -(-halo // g) * g  # round up to the pixel grid
        big = Rect(window.x0 - halo, window.y0 - halo, window.x1 + halo, window.y1 + halo)
        raster = rasterize(mask, big, g)
        sigma_px = self.blur_sigma_nm(defocus_nm) / g
        main = gaussian_filter(raster, sigma_px, mode="constant")
        wide = gaussian_filter(raster, sigma_px * self.flare_ratio, mode="constant")
        image = (1.0 + self.flare) * main - self.flare * wide
        trim = halo // g
        return image[trim:-trim or None, trim:-trim or None]

    def print_image(
        self,
        mask: Region,
        window: Rect,
        dose: float = 1.0,
        defocus_nm: float = 0.0,
        grid: int | None = None,
    ) -> np.ndarray:
        """Boolean printed raster at the given process condition."""
        if dose <= 0:
            raise ValueError("dose must be positive")
        image = self.aerial_image(mask, window, defocus_nm, grid)
        return image * dose >= self.settings.resist_threshold

    def print_contour(
        self,
        mask: Region,
        window: Rect,
        dose: float = 1.0,
        defocus_nm: float = 0.0,
        grid: int | None = None,
    ) -> Region:
        """Printed geometry as a Region (pixel-resolution contour)."""
        g = grid or self.settings.grid_nm
        printed = self.print_image(mask, window, dose, defocus_nm, g)
        return raster_to_region(printed, window, g)


    def measure_cd(
        self,
        mask: Region,
        cut,
        dose: float = 1.0,
        defocus_nm: float = 0.0,
        grid: int | None = None,
        reach_nm: int = 400,
    ) -> float:
        """Sub-pixel printed CD at a cutline (see litho.cd.subpixel_cd).

        Simulates a small strip window around the cut (``reach_nm`` each
        way along the cut direction) — cheap enough for dose/focus sweeps.
        """
        from repro.litho.cd import subpixel_cd

        g = grid or self.settings.grid_nm
        x, y = cut.at.x, cut.at.y
        if cut.horizontal:
            window = Rect(x - reach_nm, y - 4 * g, x + reach_nm, y + 4 * g)
        else:
            window = Rect(x - 4 * g, y - reach_nm, x + 4 * g, y + reach_nm)
        image = self.aerial_image(mask, window, defocus_nm, g)
        threshold = self.settings.resist_threshold / dose
        return subpixel_cd(image, window, g, cut, threshold)


def simulate(
    mask: Region,
    window: Rect,
    settings: LithoSettings | None = None,
    dose: float = 1.0,
    defocus_nm: float = 0.0,
) -> Region:
    """Convenience one-shot: printed contour of a mask region."""
    return LithoModel(settings).print_contour(mask, window, dose, defocus_nm)
