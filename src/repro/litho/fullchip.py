"""Tiled full-chip litho verification.

Hotspot detection simulates a raster whose cost grows with window area,
so full-chip scans tile the layout into windows with an optical halo —
every pixel inside a tile sees its true neighbourhood, and hotspots are
deduplicated across tile seams.  This is the "layout printability
verification" flow run at tape-out.

The tile loop is built on :mod:`repro.parallel`: tiles fan out across a
worker pool (``jobs``) and, when a :class:`~repro.parallel.TileCache`
is supplied, each tile's result is cached under a content hash of the
geometry inside its optical influence window — so a re-scan after a
local edit re-simulates only the dirty tiles, which is what makes
in-design (rather than tape-out-only) full-chip scanning affordable.

The loop is fault-tolerant: a tile that keeps failing is quarantined
(recorded on the report) instead of killing the scan, hung chunks can
be timed out, and ``checkpoint_file``/``resume`` let an interrupted
scan pick up from its last checkpoint with byte-identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.report import BaseReport, deprecated_alias
from repro.geometry import GridIndex, Rect, Region
from repro.layout.store import StoreLayer, StoreRects
from repro.litho.hotspots import Hotspot, _merge_across_corners, find_hotspots
from repro.litho.model import LithoModel
from repro.litho.process import ProcessWindow
from repro.obs import get_registry, names, span
from repro.parallel import (
    Checkpoint,
    FaultPlan,
    QuarantinedTile,
    SharedPayload,
    ShmArena,
    ShmRects,
    Tile,
    TileCache,
    TileExecutor,
    digest_parts,
    tile_grid,
)


@dataclass
class FullChipScanReport(BaseReport):
    tiles: int = 0
    simulated_area_nm2: int = 0
    hotspots: list[Hotspot] = field(default_factory=list)
    tiles_computed: int = 0
    tiles_cached: int = 0
    tiles_resumed: int = 0
    quarantined: list[QuarantinedTile] = field(default_factory=list)
    compute_s: float = 0.0
    elapsed_s: float = 0.0

    # legacy spellings (pre-BaseReport), kept as warning aliases
    compute_seconds = deprecated_alias("compute_seconds", "compute_s")
    elapsed_seconds = deprecated_alias("elapsed_seconds", "elapsed_s")

    @property
    def findings(self) -> list[Hotspot]:
        return self.hotspots

    @property
    def cache_hit_rate(self) -> float:
        return self.tiles_cached / self.tiles if self.tiles else 0.0

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for h in self.hotspots:
            out[h.kind.value] = out.get(h.kind.value, 0) + 1
        return out

    def summary(self) -> str:
        kinds = ", ".join(f"{k}: {n}" for k, n in sorted(self.by_kind().items()))
        line = (
            f"full-chip scan: {self.tiles} tiles, {len(self.hotspots)} hotspots "
            f"({kinds or 'clean'})"
        )
        if self.tiles_cached:
            line += (
                f" [incremental: {self.tiles_cached}/{self.tiles} cached, "
                f"{self.cache_hit_rate:.0%} hit rate]"
            )
        if self.tiles_resumed:
            line += f" [resumed: {self.tiles_resumed} tiles from checkpoint]"
        if self.quarantined:
            line += f" [QUARANTINED: {len(self.quarantined)} tiles failed]"
        return line


class _ScanGeometry:
    """One layer's canonical rects plus a lazily-built spatial index.

    Shipped to workers instead of the whole-chip :class:`Region`: only
    the flat rect list travels over the wire (the grid buckets are
    rebuilt on first use in each process), and every per-tile operation
    — window clipping, cache-key digesting — queries the index so it
    touches only the geometry near the tile instead of sweeping the
    full chip.

    The rect source is one of three shapes: the flat list itself; a
    :class:`~repro.parallel.ShmRects` handle (after :meth:`shared`
    repacks it for a pooled run), which pickles as a name and offset
    and materializes the same list from shared memory on first use in
    each worker; or — when the scan is store-backed — a
    :class:`~repro.layout.store.StoreRects` handle, which pickles as
    ``(path, offset, count)`` and answers window queries straight from
    the mmapped store without ever materializing the layer.  Every
    source preserves canonical rect order and the closed-touches window
    contract, so indexes, clips, and digests are identical throughout.
    """

    __slots__ = ("_source", "cell_nm", "_index", "_buf")

    def __init__(self, region: "Region | StoreLayer", cell_nm: int = 2048):
        if isinstance(region, StoreLayer):
            self._source: list[Rect] | ShmRects | StoreRects = region.handle()
        else:
            self._source = list(region.rects())
        self.cell_nm = cell_nm
        self._index: GridIndex[Rect] | None = None
        self._buf: list[Rect] = []

    @property
    def rects(self) -> list[Rect]:
        source = self._source
        if isinstance(source, (ShmRects, StoreRects)):
            return source.rects()
        return source

    @property
    def store_backed(self) -> bool:
        return isinstance(self._source, StoreRects)

    def shared(self, handle: ShmRects) -> "_ScanGeometry":
        """Clone of this geometry backed by a shared-memory handle."""
        clone = _ScanGeometry.__new__(_ScanGeometry)
        clone._source = handle
        clone.cell_nm = self.cell_nm
        clone._index = None
        clone._buf = []
        return clone

    def __getstate__(self):
        return (self._source, self.cell_nm)

    def __setstate__(self, state):
        self._source, self.cell_nm = state
        self._index = None
        self._buf = []

    def near(self, window: Rect) -> list[Rect]:
        """Canonical rects whose bbox touches ``window`` (a shared
        buffer, valid until the next call in this process).

        A store-backed source answers from the mmapped file's sorted
        runs instead of building an index: the candidate set is the
        same (both apply the closed-touches contract), so counters,
        clips, and digests downstream are unchanged.
        """
        source = self._source
        if isinstance(source, StoreRects):
            return source.window(window)
        if self._index is None:
            self._index = GridIndex(cell_size=self.cell_nm)
            for r in self.rects:
                self._index.insert(r, r)
        return self._index.query_into(window, self._buf)

    def clipped(self, window: Rect) -> Region:
        """``region & Region(window)`` computed from local rects only.

        Exact: canonical rects are disjoint, and rects not touching the
        window contribute nothing to the intersection, so the local
        point set (hence the canonical form and digest) is identical to
        the full-chip sweep's.

        The local rects are fragments of the source region's canonical
        slabs — rects sharing an x-range belong to one slab, distinct
        x-ranges never partially overlap — so sorting restores canonical
        iteration order and the slab list is rebuilt by grouping instead
        of a from-scratch plane sweep; only the window intersection pays
        for a sweep.
        """
        local = Region.from_canonical_rects(
            sorted(self.near(window), key=lambda r: (r.x0, r.y0))
        )
        return local & Region(window)


@dataclass(frozen=True, slots=True)
class _ScanPayload:
    """Read-only per-scan state shipped to each worker once.

    On the fast path (the default) ``drawn``/``mask`` are
    :class:`_ScanGeometry` indexes and ``halo_nm`` is the widest corner
    halo (pixel-aligned): each tile simulates from the geometry inside
    its influence window only.  With ``fast_path=False`` they are the
    whole-chip regions and every tile re-sweeps the full chip — the
    legacy path, kept as the verification baseline.
    """

    model: LithoModel
    drawn: "_ScanGeometry | Region"
    mask: "_ScanGeometry | Region | None"
    process: ProcessWindow
    pinch_limit: int | None
    grid: int | None
    halo_nm: int = 0
    fast_path: bool = True


def _share_payload(payload: _ScanPayload) -> SharedPayload | None:
    """Repack a fast-path payload's rect lists into shared memory.

    Only the small scalar state (model, process window, limits) then
    travels over the pickle wire; the whole-chip geometry is mapped by
    each worker from one shared block.  Returns ``None`` — caller ships
    the payload pickled — when shared memory is unavailable.
    """
    geometries = [payload.drawn]
    if payload.mask is not None:
        geometries.append(payload.mask)
    arena = ShmArena.pack([g.rects for g in geometries])
    if arena is None:
        return None
    shared = [g.shared(h) for g, h in zip(geometries, arena.handles)]
    inner = replace(
        payload,
        drawn=shared[0],
        mask=shared[1] if payload.mask is not None else None,
    )
    return SharedPayload(inner, arena)


def _scan_tile(payload: _ScanPayload, tile: Tile) -> tuple[list[Hotspot], float]:
    """Detect hotspots over one tile window and keep the owned ones."""
    registry = get_registry()
    t0 = time.perf_counter()
    if payload.fast_path:
        # geometry local to the tile's optical influence window; exact
        # because rects beyond it cannot affect the rasterized halo
        influence = tile.window.expanded(payload.halo_nm)
        drawn_local = payload.drawn.near(influence)
        registry.inc(names.SCAN_CLIP_CANDIDATES, len(drawn_local))
        drawn = Region(drawn_local)
        mask = None
        if payload.mask is not None:
            mask_local = payload.mask.near(influence)
            registry.inc(names.SCAN_CLIP_CANDIDATES, len(mask_local))
            mask = Region(mask_local)
    else:
        drawn = payload.drawn
        mask = payload.mask
    found = find_hotspots(
        payload.model,
        drawn,
        tile.window,
        process=payload.process,
        pinch_limit=payload.pinch_limit,
        grid=payload.grid,
        mask=mask,
        use_cache=payload.fast_path,
    )
    owned = [
        h for h in found if tile.owns(h.marker.center.x, h.marker.center.y)
    ]
    seconds = time.perf_counter() - t0
    registry.inc(names.SCAN_TILES_SIMULATED)
    registry.inc(names.SCAN_HOTSPOTS_RAW, len(found))
    registry.inc(names.SCAN_HOTSPOTS_OWNED, len(owned))
    registry.observe(names.SCAN_TILE_TIMER, seconds)
    registry.observe_hist(names.SCAN_TILE_SECONDS_HIST, seconds)
    return owned, seconds


def _clip_influence(geometry: "_ScanGeometry | Region", influence: Rect) -> Region:
    if isinstance(geometry, _ScanGeometry):
        return geometry.clipped(influence)
    return geometry & Region(influence)


def _tile_key(payload: _ScanPayload, tile: Tile, params: str, halo_nm: int) -> str:
    """Content hash of everything that can change this tile's result.

    The geometry is clipped to the tile window expanded by the optical
    halo — the full influence region rasterized by the aerial-image
    model — so any edit outside that window leaves the key (and the
    cached result) valid.  The clip is computed from the spatial index
    (local geometry only), which keeps cache-hit tiles O(local area)
    instead of O(full chip); the digest — hence the key — is identical
    to the full-sweep clip's, so caches written by either path replay
    under the other.
    """
    influence = tile.window.expanded(halo_nm)
    parts = [
        "scan-v1",
        params,
        tile.core.as_tuple(),
        tile.window.as_tuple(),
        tile.x_edge,
        tile.y_edge,
        _clip_influence(payload.drawn, influence).digest(),
    ]
    if payload.mask is not None:
        parts.append(_clip_influence(payload.mask, influence).digest())
    return digest_parts(*parts)


def _scan_params(payload: _ScanPayload, pinch_limit: int | None, grid: int | None) -> str:
    model = payload.model
    return digest_parts(
        model.settings,
        model.flare,
        model.flare_ratio,
        tuple(payload.process.corners()),
        pinch_limit,
        grid,
    )


def scan_full_chip(
    model: LithoModel,
    drawn: "Region | StoreLayer",
    extent: Rect | None = None,
    tile_nm: int = 4000,
    process: ProcessWindow | None = None,
    pinch_limit: int | None = None,
    mask: "Region | StoreLayer | None" = None,
    grid: int | None = None,
    overlap_nm: int = 200,
    jobs: int = 1,
    cache: TileCache | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    fault_plan: FaultPlan | None = None,
    checkpoint_file: str | None = None,
    resume: bool = False,
    fast_path: bool = True,
    executor: TileExecutor | None = None,
    sharer: "Callable[[_ScanPayload], SharedPayload | None] | None" = None,
) -> FullChipScanReport:
    """Scan an entire layout tile by tile.

    Tiles are detected over a window expanded by ``overlap_nm`` (so
    geometry clipped at a seam is seen whole by the tile that owns it)
    and each hotspot is attributed to the tile that owns its marker
    centre (see :meth:`repro.parallel.Tile.owns`) — the combination
    that makes the result tiling-invariant.  The optical halo itself is
    handled inside :func:`find_hotspots`.

    ``jobs > 1`` fans tiles out over a process pool; results are
    reassembled in tile order, so the hotspot population is identical
    to a serial scan.  Passing a :class:`~repro.parallel.TileCache`
    makes the scan incremental: clean tiles replay their cached result
    and only dirty tiles are re-simulated.

    Execution is fault-tolerant (see :meth:`TileExecutor.run
    <repro.parallel.TileExecutor.run>`): a tile failing more than
    ``max_retries`` times is quarantined on ``report.quarantined``
    rather than aborting the scan, ``timeout`` bounds each chunk's wall
    time, and ``checkpoint_file`` (+ ``resume``) persists completed
    tiles so an interrupted scan restarts where it left off.  The
    checkpoint is signature-guarded: it is only replayed against the
    same geometry and scan parameters, and is deleted once the scan
    completes.

    ``fast_path`` (the default) runs the layered aerial-image fast path:
    geometry is pre-binned into a spatial index so each tile touches only
    the rects inside its optical influence window, and each tile's corner
    sweep reuses one mask raster and one blur per unique defocus (see
    :class:`~repro.litho.model.SimCache`).  ``fast_path=False`` runs the
    legacy whole-chip-sweep-per-tile engine; both produce bit-identical
    reports and interchangeable tile-cache entries.

    ``executor`` lets a long-lived caller (the verification service)
    supply its own — typically persistent — :class:`TileExecutor`
    instead of a per-run one; its ``jobs`` takes precedence.  ``sharer``
    overrides how a pooled run's payload moves into shared memory: the
    default packs (and unlinks) a fresh arena per run, while a
    resident-layout session serves a pre-packed, session-owned one.
    Both hooks leave results and cache keys byte-identical.

    ``drawn`` (and ``mask``) may be a
    :class:`~repro.layout.store.StoreLayer` instead of a region: the
    scan then runs out of core — workers mmap the layout store
    read-only and window it per tile, the shm sharer is skipped (the
    payload is already a constant-size handle), and hotspots, counters,
    and tile-cache keys are bit-identical to the in-RAM path because
    the store serves the same canonical rects and digests.
    """
    t_start = time.perf_counter()
    report = FullChipScanReport()
    if not fast_path:
        # the legacy whole-chip-sweep baseline works on materialized
        # regions only; a store input is hydrated once up front
        if isinstance(drawn, StoreLayer):
            drawn = drawn.region()
        if isinstance(mask, StoreLayer):
            mask = mask.region()
    if extent is None:
        bb = drawn.bbox
        if bb is None:
            return report
        extent = bb
    process = process or ProcessWindow()
    g = grid or model.settings.grid_nm
    halo = max(model.halo_nm(c.defocus_nm) for c in process.corners())
    halo = -(-halo // g) * g  # pixel-grid round-up, as in aerial_image
    if fast_path:
        payload = _ScanPayload(
            model,
            _ScanGeometry(drawn),
            _ScanGeometry(mask) if mask is not None else None,
            process,
            pinch_limit,
            grid,
            halo,
            True,
        )
    else:
        payload = _ScanPayload(
            model, drawn, mask, process, pinch_limit, grid, halo, False
        )
    checkpoint: Checkpoint | None = None
    with span("scan.plan"):
        tiles = tile_grid(extent, tile_nm, overlap_nm)
        report.tiles = len(tiles)
        report.simulated_area_nm2 = sum(t.window.area for t in tiles)

        if checkpoint_file is not None:
            signature = digest_parts(
                "scan-ckpt-v1",
                _scan_params(payload, pinch_limit, grid),
                extent.as_tuple(),
                tile_nm,
                overlap_nm,
                drawn.digest(),
                mask.digest() if mask is not None else None,
            )
            checkpoint = Checkpoint.open(checkpoint_file, signature, resume=resume)

        owned_by_tile: dict[int, list[Hotspot]] = {}
        pending: list[Tile] = tiles
        keys: dict[int, str] = {}
        if cache is not None:
            params = _scan_params(payload, pinch_limit, grid)
            pending = []
            for tile in tiles:
                key = _tile_key(payload, tile, params, halo)
                keys[tile.index] = key
                hit = cache.get(key)
                if hit is None:
                    pending.append(tile)
                else:
                    owned_by_tile[tile.index] = hit

    with span("scan.compute"):
        # only a pooled run pays the pickle wire; the fast path then
        # moves its geometry into shared memory so the per-worker
        # payload stays constant-size as the chip grows.  Cache keys
        # were already computed above from the in-process payload and
        # are bit-identical either way.
        tile_executor = executor if executor is not None else TileExecutor(jobs)
        exec_payload: _ScanPayload | SharedPayload = payload
        store_backed = (
            fast_path
            and payload.drawn.store_backed
            and (payload.mask is None or payload.mask.store_backed)
        )
        if (
            pending
            and fast_path
            and not store_backed  # store handles already pickle tiny
            and (tile_executor.jobs > 1 or timeout is not None)
        ):
            shared = (sharer or _share_payload)(payload)
            if shared is not None:
                exec_payload = shared
        outcome = tile_executor.run(
            _scan_tile,
            exec_payload,
            pending,
            keys=[t.index for t in pending],
            timeout=timeout,
            max_retries=max_retries,
            fault_plan=fault_plan,
            checkpoint=checkpoint,
        )
    for tile, value in zip(pending, outcome.results):
        if value is None:  # quarantined: no result for this tile
            continue
        owned, seconds = value
        owned_by_tile[tile.index] = owned
        if tile.index in outcome.resumed_keys:
            continue  # replayed from checkpoint; costs belong to the prior run
        report.compute_s += seconds
        if cache is not None:
            cache.put(keys[tile.index], owned)

    report.quarantined = outcome.quarantined
    report.tiles_resumed = len(outcome.resumed_keys)
    report.tiles_computed = outcome.computed
    report.tiles_cached = report.tiles - len(pending)
    with span("scan.merge"):
        raw = [h for tile in tiles for h in owned_by_tile.get(tile.index, [])]
        # residual duplicates (markers straddling a seam) merge here
        report.hotspots = _merge_across_corners(raw)
    report.elapsed_s = time.perf_counter() - t_start
    if checkpoint is not None:
        # the run completed (quarantine included): nothing left to resume
        checkpoint.clear()
    registry = get_registry()
    registry.inc(names.SCAN_RUNS)
    registry.inc(names.SCAN_TILES, report.tiles)
    registry.inc(names.SCAN_TILES_COMPUTED, report.tiles_computed)
    registry.inc(names.SCAN_TILES_CACHED, report.tiles_cached)
    registry.inc(names.SCAN_TILES_RESUMED, report.tiles_resumed)
    registry.inc(names.SCAN_TILES_QUARANTINED, len(report.quarantined))
    registry.inc(names.SCAN_HOTSPOTS, len(report.hotspots))
    return report
