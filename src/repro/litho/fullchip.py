"""Tiled full-chip litho verification.

Hotspot detection simulates a raster whose cost grows with window area,
so full-chip scans tile the layout into windows with an optical halo —
every pixel inside a tile sees its true neighbourhood, and hotspots are
deduplicated across tile seams.  This is the "layout printability
verification" flow run at tape-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect, Region
from repro.litho.hotspots import Hotspot, _merge_across_corners, find_hotspots
from repro.litho.model import LithoModel
from repro.litho.process import ProcessWindow


@dataclass
class FullChipScanReport:
    tiles: int = 0
    simulated_area_nm2: int = 0
    hotspots: list[Hotspot] = field(default_factory=list)

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for h in self.hotspots:
            out[h.kind.value] = out.get(h.kind.value, 0) + 1
        return out

    def summary(self) -> str:
        kinds = ", ".join(f"{k}: {n}" for k, n in sorted(self.by_kind().items()))
        return (
            f"full-chip scan: {self.tiles} tiles, {len(self.hotspots)} hotspots "
            f"({kinds or 'clean'})"
        )


def scan_full_chip(
    model: LithoModel,
    drawn: Region,
    extent: Rect | None = None,
    tile_nm: int = 4000,
    process: ProcessWindow | None = None,
    pinch_limit: int | None = None,
    mask: Region | None = None,
    grid: int | None = None,
    overlap_nm: int = 200,
) -> FullChipScanReport:
    """Scan an entire layout tile by tile.

    Tiles are detected over a window expanded by ``overlap_nm`` (so
    geometry clipped at a seam is seen whole by the tile that owns it)
    and each hotspot is attributed to the tile containing its marker
    centre — the combination that makes the result tiling-invariant.
    The optical halo itself is handled inside :func:`find_hotspots`.
    """
    report = FullChipScanReport()
    if extent is None:
        bb = drawn.bbox
        if bb is None:
            return report
        extent = bb
    raw: list[Hotspot] = []
    y = extent.y0
    while y < extent.y1:
        x = extent.x0
        y1 = min(y + tile_nm, extent.y1)
        while x < extent.x1:
            x1 = min(x + tile_nm, extent.x1)
            core = Rect(x, y, x1, y1)
            window = Rect(
                max(core.x0 - overlap_nm, extent.x0),
                max(core.y0 - overlap_nm, extent.y0),
                min(core.x1 + overlap_nm, extent.x1),
                min(core.y1 + overlap_nm, extent.y1),
            )
            report.tiles += 1
            report.simulated_area_nm2 += window.area
            found = find_hotspots(
                model,
                drawn,
                window,
                process=process,
                pinch_limit=pinch_limit,
                grid=grid,
                mask=mask,
            )
            # own only the hotspots centred in the core tile (half-open
            # on the high edges so seam centres have a unique owner)
            for h in found:
                cx, cy = h.marker.center.x, h.marker.center.y
                if core.x0 <= cx < core.x1 and core.y0 <= cy < core.y1:
                    raw.append(h)
                elif cx == extent.x1 and core.x1 == extent.x1 and core.y0 <= cy < core.y1:
                    raw.append(h)
                elif cy == extent.y1 and core.y1 == extent.y1 and core.x0 <= cx < core.x1:
                    raw.append(h)
            x += tile_nm
        y += tile_nm
    # residual duplicates (markers straddling a seam) merge here
    report.hotspots = _merge_across_corners(raw)
    return report
