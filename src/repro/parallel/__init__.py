"""Parallel, incremental, and fault-tolerant verification.

The shared machinery behind the full-chip litho scan
(:func:`repro.litho.scan_full_chip`) and tiled DRC
(:func:`repro.drc.run_drc`), exposed on the command line as
``--jobs`` / ``--incremental`` / ``--timeout`` / ``--resume``:

* :func:`tile_grid` / :class:`Tile` — cut an extent into core tiles
  with halo windows.  Seam ownership is half-open on interior high
  edges and closed on the extent's high edges, so every point
  (including the extreme corner) has exactly one owning tile and tiled
  results are independent of the tiling.
* :class:`TileExecutor` — deterministic chunked fan-out of tile work
  over a ``multiprocessing`` pool.  Results are reassembled in tile
  order, so a ``jobs=N`` run is byte-identical to ``jobs=1``.
  :meth:`TileExecutor.run` adds the fault-tolerant contract: per-chunk
  timeouts, bounded retry with exponential backoff, poison-tile
  quarantine (:class:`QuarantinedTile`), and checkpoint/resume.
* :class:`TileCache` — incremental result cache.  Each tile's entry is
  keyed by a content hash (:meth:`repro.geometry.Region.digest`) of
  the geometry clipped to the tile's *halo window* — the full region
  that can influence the tile's result (optical influence radius for
  litho, rule reach for DRC) — plus the engine parameters.  An edit
  therefore invalidates exactly the tiles whose halo window it
  touches: a re-scan after a local edit re-verifies only dirty tiles,
  and an unedited re-scan re-verifies nothing (100% hit rate).  Hashes
  are taken over canonical-form geometry, so rebuilding the same point
  set differently still hits.
* :class:`Checkpoint` — signature-guarded persistence of completed tile
  results, so an interrupted run resumes instead of starting over.
* :class:`FaultPlan` — deterministic fault injection (``fail`` /
  ``hang`` / ``abort`` at exact tiles), driven programmatically or via
  ``$REPRO_FAULT_SPEC``, so the retry/timeout/quarantine matrix is
  testable in CI.
* :class:`ShmArena` / :class:`ShmRects` / :class:`SharedPayload` —
  zero-copy payload transport: the engines pack their whole-chip rect
  lists into one ``multiprocessing.shared_memory`` block per run, so
  what crosses the pickle wire per worker is a constant-size handle
  instead of the full geometry (``pool.payload_bytes`` stays flat as
  the chip grows).  Hosts without shared memory fall back to the
  pickled path with a ``pool.shm_fallback`` gauge.
"""

from repro.parallel.cache import TileCache, digest_parts
from repro.parallel.checkpoint import Checkpoint
from repro.parallel.faults import (
    AbortRun,
    FaultPlan,
    FaultRule,
    InjectedAbort,
    InjectedFault,
    QuarantinedTile,
)
from repro.parallel.pool import (
    ExecutionOutcome,
    TileExecutor,
    WorkerFailure,
    resolve_jobs,
)
from repro.parallel.shm import SharedPayload, ShmArena, ShmRects
from repro.parallel.tiles import Tile, tile_grid

__all__ = [
    "Tile",
    "tile_grid",
    "TileExecutor",
    "ExecutionOutcome",
    "WorkerFailure",
    "resolve_jobs",
    "TileCache",
    "digest_parts",
    "Checkpoint",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedAbort",
    "AbortRun",
    "QuarantinedTile",
    "SharedPayload",
    "ShmArena",
    "ShmRects",
]
