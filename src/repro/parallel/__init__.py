"""Parallel & incremental verification.

The shared machinery behind the full-chip litho scan
(:func:`repro.litho.scan_full_chip`) and tiled DRC
(:func:`repro.drc.run_drc`), exposed on the command line as
``--jobs`` / ``--incremental``:

* :func:`tile_grid` / :class:`Tile` — cut an extent into core tiles
  with halo windows.  Seam ownership is half-open on interior high
  edges and closed on the extent's high edges, so every point
  (including the extreme corner) has exactly one owning tile and tiled
  results are independent of the tiling.
* :class:`TileExecutor` — deterministic chunked fan-out of tile work
  over a ``concurrent.futures`` process pool.  Results are reassembled
  in tile order, so a ``jobs=N`` run is byte-identical to ``jobs=1``.
* :class:`TileCache` — incremental result cache.  Each tile's entry is
  keyed by a content hash (:meth:`repro.geometry.Region.digest`) of
  the geometry clipped to the tile's *halo window* — the full region
  that can influence the tile's result (optical influence radius for
  litho, rule reach for DRC) — plus the engine parameters.  An edit
  therefore invalidates exactly the tiles whose halo window it
  touches: a re-scan after a local edit re-verifies only dirty tiles,
  and an unedited re-scan re-verifies nothing (100% hit rate).  Hashes
  are taken over canonical-form geometry, so rebuilding the same point
  set differently still hits.
"""

from repro.parallel.cache import TileCache, digest_parts
from repro.parallel.pool import TileExecutor, resolve_jobs
from repro.parallel.tiles import Tile, tile_grid

__all__ = [
    "Tile",
    "tile_grid",
    "TileExecutor",
    "resolve_jobs",
    "TileCache",
    "digest_parts",
]
