"""Tile decomposition with seam ownership.

Every tiled engine (full-chip litho scan, tiled DRC) cuts the chip
extent into core tiles, analyses each core over a *window* expanded by
an overlap so seam-clipped geometry is seen whole, and then keeps only
the findings each tile *owns*.  Ownership is half-open on the high
edges — a marker centred exactly on a seam belongs to the tile on its
high side — except at the extent's own high edges, which the edge tiles
own inclusively.  Together these rules give every point of the closed
extent exactly one owner, which is what makes tiled results independent
of the tiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect


@dataclass(frozen=True, slots=True)
class Tile:
    """One unit of tiled work: a core rectangle plus its halo window.

    ``x_edge``/``y_edge`` record whether the core abuts the extent's
    high edge — the only places where ownership is closed rather than
    half-open.
    """

    index: int
    core: Rect
    window: Rect
    x_edge: bool
    y_edge: bool

    def owns(self, x: int, y: int) -> bool:
        """True when this tile owns the point ``(x, y)``.

        Half-open on the high edges so interior seam points have a
        unique owner; closed on the extent's high edges so points on
        the outer boundary (including the extreme corner) are not
        dropped.
        """
        x_ok = self.core.x0 <= x < self.core.x1 or (self.x_edge and x == self.core.x1)
        y_ok = self.core.y0 <= y < self.core.y1 or (self.y_edge and y == self.core.y1)
        return x_ok and y_ok


def tile_grid(extent: Rect, tile_nm: int, overlap_nm: int = 0) -> list[Tile]:
    """Cut ``extent`` into a row-major grid of :class:`Tile`.

    Cores partition the extent exactly; windows are cores expanded by
    ``overlap_nm`` and clamped back to the extent.  The returned order
    (bottom-to-top rows, left-to-right within a row) is the canonical
    deterministic ordering used to make parallel results reproducible.
    """
    if tile_nm <= 0:
        raise ValueError("tile_nm must be positive")
    if overlap_nm < 0:
        raise ValueError("overlap_nm must be non-negative")
    tiles: list[Tile] = []
    index = 0
    y = extent.y0
    while y < extent.y1:
        y1 = min(y + tile_nm, extent.y1)
        x = extent.x0
        while x < extent.x1:
            x1 = min(x + tile_nm, extent.x1)
            core = Rect(x, y, x1, y1)
            window = Rect(
                max(core.x0 - overlap_nm, extent.x0),
                max(core.y0 - overlap_nm, extent.y0),
                min(core.x1 + overlap_nm, extent.x1),
                min(core.y1 + overlap_nm, extent.y1),
            )
            tiles.append(Tile(index, core, window, x1 == extent.x1, y1 == extent.y1))
            index += 1
            x += tile_nm
        y += tile_nm
    return tiles
