"""Deterministic fault injection for the tile executor.

Long-running batch verification has to survive flaky tiles, hung
workers, and operator interrupts — and that behavior has to be testable
in CI without real flakiness.  A :class:`FaultPlan` injects failures at
exact, reproducible points of a run: *tile 17 raises twice then
succeeds*, *chunk 3 hangs*, *tile 40 aborts the run*.  The executor
consults the plan immediately before executing each tile (and each
chunk), keyed by the tile's stable key and its execution ordinal — so a
given plan produces the same fault sequence on every run.

Plans come from the ``REPRO_FAULT_SPEC`` environment variable (parsed
by :meth:`FaultPlan.from_env`, picked up automatically by
:meth:`TileExecutor.run <repro.parallel.TileExecutor.run>`) or are
passed explicitly as ``fault_plan=``.  The grammar::

    spec   := entry ("," entry)*
    entry  := scope ":" index ":" action [":" arg]
    scope  := "tile" | "chunk"
    action := "fail" | "hang" | "abort"

* ``fail`` — raise :class:`InjectedFault`; ``arg`` is how many
  executions fail before succeeding (``forever`` or omitted = always).
* ``hang`` — sleep ``arg`` seconds (default 3600) before proceeding,
  simulating a hung worker for the timeout path to kill.
* ``abort`` — raise :class:`InjectedAbort`, which the executor converts
  into :class:`AbortRun` after flushing the checkpoint: a deterministic
  stand-in for an operator interrupt, used to test ``--resume``.

Example: ``REPRO_FAULT_SPEC="tile:5:fail:1,tile:40:fail"`` makes tile 5
transiently fail once (a retry recovers it) and tile 40 fail permanently
(quarantined after retries are exhausted).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, Mapping

ENV_VAR = "REPRO_FAULT_SPEC"

_SCOPES = ("tile", "chunk")
_ACTIONS = ("fail", "hang", "abort")
_FOREVER = float("inf")
_DEFAULT_HANG_S = 3600.0


class InjectedFault(RuntimeError):
    """A failure raised on purpose by a :class:`FaultPlan`."""


class InjectedAbort(RuntimeError):
    """An injected run interrupt (simulates Ctrl-C / operator kill)."""


class AbortRun(RuntimeError):
    """The run was interrupted; completed tiles are in the checkpoint.

    Raised by the executor after an :class:`InjectedAbort` (or any
    interrupt) once the checkpoint has been flushed — re-running with
    ``resume=True`` recomputes only the unfinished tiles.
    """


@dataclass(frozen=True, slots=True)
class QuarantinedTile:
    """A tile (or task) excluded from the run after exhausting retries.

    ``index`` is the tile's stable key (the :class:`~repro.parallel.Tile`
    index for scans, the task index for tiled DRC); ``error`` is the
    last failure observed; ``attempts`` is how many executions were
    tried before giving up.
    """

    index: int
    error: str
    attempts: int

    def __str__(self) -> str:
        return f"tile {self.index}: {self.error} (after {self.attempts} attempts)"


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One injection point: ``scope:index:action:arg``."""

    scope: str
    index: int
    action: str
    # fail/abort: executions that fire (inf = every one); hang: seconds
    arg: float

    def __post_init__(self) -> None:
        if self.scope not in _SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r} (expected {_SCOPES})")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} (expected {_ACTIONS})")


class FaultPlan:
    """An immutable, picklable set of :class:`FaultRule` entries."""

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self._rules = tuple(rules)

    @property
    def rules(self) -> tuple[FaultRule, ...]:
        return self._rules

    def __bool__(self) -> bool:
        return bool(self._rules)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self._rules)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self._rules == other._rules

    def __hash__(self) -> int:
        return hash(self._rules)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULT_SPEC``-grammar string (see module doc)."""
        rules: list[FaultRule] = []
        for raw in spec.split(","):
            raw = raw.strip()
            if not raw:
                continue
            parts = raw.split(":")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"bad fault entry {raw!r}: expected scope:index:action[:arg]"
                )
            scope, index_text, action = parts[0], parts[1], parts[2]
            try:
                index = int(index_text)
            except ValueError:
                raise ValueError(f"bad fault index in {raw!r}") from None
            arg_text = parts[3] if len(parts) == 4 else None
            if action == "hang":
                arg = float(arg_text) if arg_text is not None else _DEFAULT_HANG_S
            elif arg_text is None or arg_text == "forever":
                arg = _FOREVER
            else:
                try:
                    arg = float(int(arg_text))
                except ValueError:
                    raise ValueError(f"bad fault count in {raw!r}") from None
            rules.append(FaultRule(scope, index, action, arg))
        return cls(rules)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """The plan in ``$REPRO_FAULT_SPEC``, or None when unset/empty."""
        spec = (os.environ if environ is None else environ).get(ENV_VAR, "").strip()
        return cls.parse(spec) if spec else None

    def _match(self, scope: str, index: int, attempt: int) -> FaultRule | None:
        for rule in self._rules:
            if rule.scope != scope or rule.index != index:
                continue
            if rule.action == "hang" or attempt < rule.arg:
                return rule
        return None

    def fire(self, scope: str, index: int, attempt: int) -> None:
        """Trigger the matching rule, if any, for this execution.

        ``attempt`` is the zero-based execution ordinal of the tile (or
        chunk): ``fail:2`` fires on attempts 0 and 1 and lets attempt 2
        through — *raises twice then succeeds*.
        """
        rule = self._match(scope, index, attempt)
        if rule is None:
            return
        if rule.action == "hang":
            time.sleep(rule.arg)
        elif rule.action == "abort":
            raise InjectedAbort(
                f"injected abort at {scope} {index} (attempt {attempt})"
            )
        else:
            raise InjectedFault(
                f"injected fault at {scope} {index} (attempt {attempt})"
            )
