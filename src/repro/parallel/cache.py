"""Incremental tile cache keyed by clipped-geometry content hashes.

A tile's verification result is a pure function of (a) the engine
parameters and (b) the geometry inside the tile's halo window.  Hashing
exactly those inputs gives an *incremental* engine for free: after a
local edit, only tiles whose halo window intersects the edit change
their key, so a re-scan re-simulates just the dirty tiles.  Keys hash
canonical-form geometry (see :meth:`repro.geometry.Region.digest`), so
two layouts describing the same point set always hit the same entry.

The cache is an in-memory dict with hit/miss counters, optionally
persisted with :meth:`save`/:meth:`load` so command-line re-runs can
reuse a previous invocation's work.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from typing import Any

from repro.obs import get_registry, names

log = logging.getLogger("repro.parallel")

# On-disk format sentinel.  Bump whenever the shape of cached values
# changes (new result fields, key-scheme changes): a mismatched file is
# discarded — full recompute — instead of serving stale-shaped values
# to an --incremental run.
_FORMAT_VERSION = "tilecache-v1"


def digest_parts(*parts: Any) -> str:
    """Stable hex digest of a heterogeneous key tuple.

    Parts are reduced to their ``repr`` — fine for the primitives,
    tuples, and frozen dataclasses used in cache keys.  Pre-hashed
    geometry digests are passed through as strings.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return h.hexdigest()


class TileCache:
    """Content-addressed store of per-tile verification results."""

    def __init__(self) -> None:
        self._store: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: str) -> Any:
        """Look up ``key``, counting the hit or miss; None on miss."""
        if key in self._store:
            self.hits += 1
            get_registry().inc(names.TILECACHE_HITS)
            return self._store[key]
        self.misses += 1
        get_registry().inc(names.TILECACHE_MISSES)
        return None

    def put(self, key: str, value: Any) -> None:
        self._store[key] = value

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    # -- persistence ----------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Persist entries (not counters) for a later process to reuse.

        Parent directories are created as needed, and the write is
        atomic (temp file + rename in the target directory): a run
        killed mid-save leaves the previous cache intact instead of a
        truncated file that would poison the next ``--incremental`` run.
        """
        path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tilecache-", suffix=".tmp")
        try:
            payload = {"format": _FORMAT_VERSION, "entries": self._store}
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TileCache":
        """Load a saved cache; a missing or unreadable file yields an
        empty cache (an incremental run then degrades to a full run).

        Files written under a different format version — including
        pre-versioned caches, which pickled the entry dict bare — are
        discarded the same way, with a warning and the
        ``tilecache.version_mismatch`` counter, instead of silently
        serving values shaped for an older result schema.
        """
        cache = cls()
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return cache
        except Exception:  # repro-lint: disable=RL004
            # pickle surfaces corruption as many exception types
            # (UnpicklingError, ValueError, EOFError, ...); any of them
            # just means the file is unusable.
            return cache
        if (
            isinstance(payload, dict)
            and payload.get("format") == _FORMAT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            cache._store = payload["entries"]
        else:
            log.warning(
                "discarding tile cache %s: format %r does not match %r",
                path,
                payload.get("format") if isinstance(payload, dict) else None,
                _FORMAT_VERSION,
            )
            get_registry().inc(names.TILECACHE_VERSION_MISMATCH)
        return cache
