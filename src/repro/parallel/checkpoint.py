"""Checkpointing of completed tile results for interruptible runs.

A full-chip scan that dies three hours in should not cost three hours
again.  The executor periodically persists every completed tile's
result to a :class:`Checkpoint` file; a rerun with ``resume=True``
replays those results and computes only the unfinished tiles, producing
a report byte-identical to an uninterrupted run.

Correctness hinges on the *signature*: a digest of everything that
determines tile results (engine parameters, tiling, geometry content).
:meth:`Checkpoint.open` silently discards a checkpoint whose signature
does not match — resuming against edited geometry or different settings
degrades to a fresh run instead of splicing stale results in.

Writes are atomic (temp file + rename), so a run killed mid-flush
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Iterator

SCHEMA = "repro-checkpoint-v1"


class Checkpoint:
    """A signature-guarded store of ``{tile key: result}`` on disk."""

    def __init__(self, path: str | os.PathLike, signature: str) -> None:
        self.path = os.fspath(path)
        self.signature = signature
        self._results: dict[Any, Any] = {}
        self._dirty = False

    @classmethod
    def open(
        cls, path: str | os.PathLike, signature: str, resume: bool = True
    ) -> "Checkpoint":
        """Open a checkpoint file for this run signature.

        With ``resume`` the existing file's results are adopted when its
        schema and signature match; a missing, corrupt, or stale file
        yields an empty checkpoint (the run starts fresh).
        """
        checkpoint = cls(path, signature)
        if resume:
            try:
                with open(checkpoint.path, "rb") as fh:
                    data = pickle.load(fh)
                if (
                    isinstance(data, dict)
                    and data.get("schema") == SCHEMA
                    and data.get("signature") == signature
                ):
                    checkpoint._results = dict(data.get("results", {}))
            except Exception:  # repro-lint: disable=RL004
                # missing file, truncated pickle, unreadable path — all
                # mean the same thing: nothing usable to resume from
                pass
        return checkpoint

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: Any) -> bool:
        return key in self._results

    def __iter__(self) -> Iterator[Any]:
        return iter(self._results)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._results.get(key, default)

    def record(self, key: Any, value: Any) -> None:
        """Store one completed tile's result (buffered until flush)."""
        self._results[key] = value
        self._dirty = True

    def flush(self) -> None:
        """Atomically persist the current results, if anything changed."""
        if not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".checkpoint-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    {
                        "schema": SCHEMA,
                        "signature": self.signature,
                        "results": self._results,
                    },
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    def clear(self) -> None:
        """Drop all results and delete the file (run completed)."""
        self._results.clear()
        self._dirty = False
        try:
            os.unlink(self.path)
        except OSError:
            pass
