"""Zero-copy shared-memory transport for worker payload geometry.

The tile executor ships its read-only payload to every worker through
the pool initializer, and the bulk of that payload is flat rect lists —
whole-chip geometry whose pickled size (the ``pool.payload_bytes``
gauge) grows linearly with chip area.  This module moves those lists
off the pickle wire: the parent packs every layer's rects into **one**
:mod:`multiprocessing.shared_memory` block per run as int32 quads
``(x0, y0, x1, y1)``, and what crosses the process boundary is only a
:class:`ShmRects` handle — ``(block name, offset, count)`` — so the
wire payload stays constant-size however large the chip grows.

Workers reattach lazily: the first geometry query in a worker process
maps the block, materializes the rects (plain Python ints, so all
downstream integer geometry is unchanged), and rebuilds whatever
spatial index the engine layers on top.  Rect order is preserved
exactly, which is what keeps results and cache keys bit-identical to
the pickled path.

Lifecycle: the engine wraps its payload in :class:`SharedPayload` and
hands it to the executor, which owns the arena from then on — the
block is unlinked when the run finishes (success, quarantine, or
abort), and pool re-creation after a chunk timeout reuses the same
block.  When shared memory is unavailable (restricted sandboxes,
hosts without ``/dev/shm``, ``REPRO_NO_SHM=1``) or a coordinate
exceeds int32, :meth:`ShmArena.pack` degrades to ``None`` with a
logged warning and the ``pool.shm_fallback`` gauge, and the caller
ships the payload pickled exactly as before.
"""

from __future__ import annotations

import logging
import os
from array import array
from typing import Any, Sequence

from repro.geometry import Rect
from repro.obs import get_registry, names

log = logging.getLogger("repro.parallel")

try:  # restricted hosts may lack _multiprocessing/posixshmem entirely
    from multiprocessing import shared_memory as _shared_memory
except Exception:  # repro-lint: disable=RL004
    _shared_memory = None  # type: ignore[assignment]

# Environment kill-switch for hosts where shared memory exists but is
# unreliable (container /dev/shm quotas, spawn-restricted runners).
ENV_DISABLE = "REPRO_NO_SHM"

# Wire format: four little 'i' (int32) values per rect.  array('i') is
# 4 bytes on every supported platform, but probe instead of assuming.
_QUAD = 4
_INT32 = array("i").itemsize == 4

# Per-process cache of attached segments, keyed by block name.  Workers
# keep their attachment for the life of the process (they die with the
# pool); the parent never attaches — its handles keep direct rect
# references.
_ATTACHED: dict[str, Any] = {}


def available() -> bool:
    """True when shared-memory transport can be used on this host."""
    return (
        _shared_memory is not None
        and _INT32
        and not os.environ.get(ENV_DISABLE)
    )


def _attach(name: str) -> Any:
    """Attach (once per process) to the named block.

    The parent owns the segment's lifetime and unlinks it at run end,
    so the attachment must not re-register the name with the resource
    tracker — that would double-unlink and warn at shutdown.  Python
    3.13 has ``track=False``; older versions unregister by hand.
    """
    segment = _ATTACHED.get(name)
    if segment is None:
        assert _shared_memory is not None
        try:
            segment = _shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            segment = _shared_memory.SharedMemory(name=name)
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # repro-lint: disable=RL004
                pass  # tracking is cosmetic; never fail an attach over it
        _ATTACHED[name] = segment
    return segment


class ShmRects:
    """Picklable handle to one rect list inside a shared block.

    In the packing process it keeps a direct reference to the original
    list, so parent-side reads never round-trip through the mapping.
    Unpickled in a worker it carries only ``(name, offset, count)``
    — ``offset`` counts int32 slots, not bytes — and materializes the
    rects on first use, once per process.
    """

    __slots__ = ("name", "offset", "count", "_rects")

    def __init__(
        self,
        name: str,
        offset: int,
        count: int,
        rects: "list[Rect] | None" = None,
    ) -> None:
        self.name = name
        self.offset = offset
        self.count = count
        self._rects = rects

    def __getstate__(self) -> tuple[str, int, int]:
        return (self.name, self.offset, self.count)

    def __setstate__(self, state: tuple[str, int, int]) -> None:
        self.name, self.offset, self.count = state
        self._rects = None

    def rects(self) -> list[Rect]:
        """The rect list, attaching and materializing if needed."""
        if self._rects is None:
            segment = _attach(self.name)
            # the mapped size may be page-rounded past the packed data;
            # cast the whole buffer and slice by int32 slots.  tolist()
            # yields plain Python ints, so geometry arithmetic (area,
            # digests, reprs) is identical to the pickled path.
            view = memoryview(segment.buf).cast("i")
            lo = self.offset
            quads = view[lo : lo + self.count * _QUAD].tolist()
            self._rects = [
                Rect(quads[j], quads[j + 1], quads[j + 2], quads[j + 3])
                for j in range(0, len(quads), _QUAD)
            ]
            view.release()
        return self._rects


class ShmArena:
    """Parent-side owner of one run's shared rect block."""

    def __init__(self, segment: Any, handles: list[ShmRects]) -> None:
        self.segment = segment
        self.handles = handles
        self._closed = False

    @classmethod
    def pack(cls, rect_lists: Sequence[Sequence[Rect]]) -> "ShmArena | None":
        """Pack rect lists into one shared int32 block, order-preserving.

        Returns ``None`` — after a warning and the ``pool.shm_fallback``
        gauge — when shared memory is unavailable on this host, disabled
        via ``REPRO_NO_SHM``, or a coordinate does not fit int32; the
        caller then ships its payload pickled, as before.
        """
        if not available():
            return cls._fallback("shared_memory unavailable or disabled")
        flat = array("i")
        bounds: list[tuple[int, int]] = []
        try:
            for rects in rect_lists:
                start = len(flat)
                for r in rects:
                    flat.append(r.x0)
                    flat.append(r.y0)
                    flat.append(r.x1)
                    flat.append(r.y1)
                bounds.append((start, (len(flat) - start) // _QUAD))
        except OverflowError:
            return cls._fallback("coordinates exceed int32")
        data = flat.tobytes()
        segment = None
        try:
            assert _shared_memory is not None
            segment = _shared_memory.SharedMemory(
                create=True, size=max(len(data), 1)
            )
            segment.buf[: len(data)] = data
        # any failure here (ENOSPC on /dev/shm, sandbox EPERM, missing
        # posixshmem) means "no shared memory on this host": fall back
        except Exception as exc:  # repro-lint: disable=RL004
            if segment is not None:
                # the segment was created but the copy failed: without
                # this, the kernel object lingers in /dev/shm forever
                try:
                    segment.close()
                    segment.unlink()
                except OSError:
                    pass
            return cls._fallback(f"{type(exc).__name__}: {exc}")
        handles = [
            ShmRects(segment.name, offset, count, rects=list(rects))
            for (offset, count), rects in zip(bounds, rect_lists)
        ]
        return cls(segment, handles)

    @staticmethod
    def _fallback(reason: str) -> None:
        log.warning(
            "shared-memory payload unavailable (%s); shipping pickled payload",
            reason,
        )
        get_registry().gauge(names.POOL_SHM_FALLBACK, 1)
        return None

    @property
    def nbytes(self) -> int:
        """Mapped size of the block (page-rounded by the OS)."""
        return int(self.segment.size)

    def close(self) -> None:
        """Release and unlink the block (idempotent).

        Called by the executor when the run finishes; worker
        attachments die with the worker processes, and on POSIX the
        backing pages outlive the unlink until the last map closes.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.segment.close()
            self.segment.unlink()
        except Exception:  # repro-lint: disable=RL004
            pass  # best-effort: a vanished segment is already gone


def _unwrap(inner: Any) -> Any:
    """Pickle target for :class:`SharedPayload` (workers get the inner
    payload directly; the wrapper never crosses the process boundary)."""
    return inner


class SharedPayload:
    """Executor-visible wrapper marking an shm-backed payload.

    Pickles as the inner payload alone, so workers receive the engine's
    own payload object whose :class:`ShmRects` handles reattach lazily.
    Passing an *owned* ``SharedPayload`` (the default) to
    :meth:`TileExecutor.run <repro.parallel.TileExecutor.run>` (or
    ``map``) transfers ownership of the arena: the executor unlinks the
    block when the run ends.  With ``owned=False`` the arena belongs to
    a longer-lived holder — a resident layout session serving many runs
    from one packed block — and the executor leaves it alone; the
    holder must call :meth:`ShmArena.close` itself.
    """

    __slots__ = ("inner", "arena", "owned")

    def __init__(self, inner: Any, arena: ShmArena, owned: bool = True) -> None:
        self.inner = inner
        self.arena = arena
        self.owned = owned

    def __reduce__(self) -> tuple[Any, tuple[Any]]:
        return (_unwrap, (self.inner,))
