"""Worker-pool tile executor.

A thin deterministic fan-out layer over :mod:`multiprocessing`: the
shared read-only payload (litho model, flattened layer regions, rule
deck) is shipped to each worker exactly once via the pool initializer,
work items travel in contiguous chunks, and results come back flattened
in submission order — so a parallel run produces byte-identical output
to a serial one.

Workers are *processes*, not threads: the geometry kernel is pure
Python, so threads would serialize on the GIL.  ``jobs <= 1`` (the
default everywhere) runs inline with zero pool overhead.  If the host
cannot stand a pool up at all (restricted sandboxes without semaphores,
missing fork support), *construction* degrades to the serial path with
a logged warning and a ``pool_fallback`` gauge — but an exception
raised by worker code mid-run propagates; it is never silently
re-run serially.

Two entry points:

* :meth:`TileExecutor.map` — the plain fan-out: any failure propagates.
* :meth:`TileExecutor.run` — the fault-tolerant fan-out used by the
  long-running engines: per-chunk timeouts, bounded retry with
  exponential backoff, poison-tile quarantine (a chunk that exhausts
  its retries is bisected down to the failing tile, which is recorded
  as a :class:`~repro.parallel.faults.QuarantinedTile` instead of
  killing the run), periodic checkpointing via
  :class:`~repro.parallel.checkpoint.Checkpoint`, and deterministic
  fault injection via :class:`~repro.parallel.faults.FaultPlan`.

Observability: when the parent's :class:`~repro.obs.MetricsRegistry` is
enabled, workers enable their own process registry, reset it at each
chunk boundary, and ship the chunk's metric snapshot back alongside the
results.  The parent merges snapshots in submission order, so counters
(and gauge last-writes) from a ``jobs=N`` run are identical to a serial
run — only wall-clock timings differ.  The fault-tolerant path
additionally maintains ``pool.retries``, ``pool.timeouts``,
``pool.bisections``, and ``pool.quarantined`` counters in the parent.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.pool
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import get_registry, names
from repro.parallel.checkpoint import Checkpoint
from repro.parallel.faults import (
    AbortRun,
    FaultPlan,
    InjectedAbort,
    QuarantinedTile,
)
from repro.parallel.shm import SharedPayload

log = logging.getLogger("repro.parallel")

Item = TypeVar("Item")
Result = TypeVar("Result")

# Failure modes of standing up a process pool (sandboxes without
# semaphores, missing _multiprocessing, fork restrictions).  Only pool
# *construction* is guarded by these — see TileExecutor.map/run.
_POOL_ERRORS = (OSError, ImportError, PermissionError)

# How many completed-tile records may accumulate before the checkpoint
# is flushed to disk on the inline path (the pooled path flushes at
# every chunk boundary).
_CHECKPOINT_FLUSH_EVERY = 8

# Per-worker shared payload + fault plan, installed by the initializer.
_PAYLOAD: Any = None
_FAULTS: FaultPlan | None = None


def _init_worker(
    payload: Any, obs_enabled: bool = False, faults: FaultPlan | None = None
) -> None:
    global _PAYLOAD, _FAULTS
    # fork inherits whatever SIGTERM handler the parent installed (e.g.
    # the service daemon's graceful-shutdown trap); restore the default
    # so Pool.terminate() reliably kills workers instead of racing a
    # handler that only sets a parent-side event
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass  # non-main thread or exotic platform; terminate() may lag
    # spawn-style contexts pickle initargs, which already unwraps a
    # SharedPayload via its __reduce__; fork inherits the object as-is,
    # so unwrap here too — workers always see the engine's own payload
    if isinstance(payload, SharedPayload):
        payload = payload.inner
    _PAYLOAD = payload
    _FAULTS = faults
    if obs_enabled:
        get_registry().enable()


def _run_chunk(
    fn: Callable[[Any, Any], Any], chunk: Sequence[Any]
) -> tuple[list[Any], dict | None]:
    """Run one chunk; return (results, metric snapshot or None).

    The worker registry is reset at the chunk boundary so the snapshot
    covers exactly this chunk's work — every event is merged into the
    parent exactly once, whichever worker ran the chunk.
    """
    registry = get_registry()
    if registry.enabled:
        registry.reset()
    results = [fn(_PAYLOAD, item) for item in chunk]
    snapshot = registry.snapshot() if registry.enabled else None
    return results, snapshot


class WorkerFailure(Exception):
    """An item inside a chunk raised; carries the failing tile's key."""

    def __init__(self, key: Any, message: str) -> None:
        super().__init__(key, message)
        self.key = key
        self.message = message

    def __str__(self) -> str:
        return self.message


def _run_chunk_ft(
    fn: Callable[[Any, Any], Any],
    chunk_id: int,
    chunk_attempt: int,
    entries: Sequence[tuple[Any, int, Any]],
) -> tuple[list[tuple[Any, Any]], dict | None]:
    """Fault-aware chunk body: ``entries`` is ``[(key, attempt, item)]``.

    An item failure is wrapped in :class:`WorkerFailure` (carrying the
    failing key, so the parent can bisect straight to it); an injected
    abort propagates unchanged.
    """
    registry = get_registry()
    if registry.enabled:
        registry.reset()
    if _FAULTS is not None:
        _FAULTS.fire("chunk", chunk_id, chunk_attempt)
    out: list[tuple[Any, Any]] = []
    for key, attempt, item in entries:
        try:
            if _FAULTS is not None:
                _FAULTS.fire("tile", key, attempt)
            out.append((key, fn(_PAYLOAD, item)))
        except InjectedAbort:
            raise
        except Exception as exc:
            # `from None`: the cause must not travel back through the
            # pool's pickler (arbitrary worker exceptions may not pickle)
            raise WorkerFailure(key, f"{type(exc).__name__}: {exc}") from None
    snapshot = registry.snapshot() if registry.enabled else None
    return out, snapshot


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a jobs request: ``None``/``0`` means all available CPUs."""
    if jobs is None or jobs <= 0:
        try:
            return max(len(os.sched_getaffinity(0)), 1)
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


@dataclass
class ExecutionOutcome:
    """What :meth:`TileExecutor.run` produced.

    ``results`` aligns index-for-index with the submitted items; a
    quarantined item's slot holds ``None``.  ``resumed_keys`` are the
    keys replayed from the checkpoint rather than computed.
    """

    results: list[Any]
    quarantined: list[QuarantinedTile] = field(default_factory=list)
    resumed_keys: frozenset = frozenset()
    retries: int = 0
    timeouts: int = 0
    bisections: int = 0

    @property
    def computed(self) -> int:
        """Items actually executed this run (not resumed, not quarantined)."""
        return len(self.results) - len(self.resumed_keys) - len(self.quarantined)


@dataclass
class _Chunk:
    """Parent-side unit of pooled work: ``items`` is ``[(key, item)]``."""

    id: int
    items: list[tuple[Any, Any]]
    attempt: int = 0
    not_before: float = 0.0
    # submission-order rank of the chunk's first item, for deterministic
    # metric-snapshot merging however retries/bisections reorder completion
    rank: int = 0


class TileExecutor:
    """Deterministic chunked fan-out of ``fn(payload, item)`` calls.

    ``fn`` must be a module-level function (it is sent to workers by
    reference) and the payload must be picklable.  Results are returned
    in the order of ``items`` regardless of which worker finished first.

    One-shot by default: every ``map``/``run`` call stands its own pool
    up and tears it down.  ``persistent=True`` keeps the pool warm
    between calls instead — a following call whose wire payload (and
    fault plan) is byte-identical reuses the already-initialized
    workers, which is what lets a long-lived verification service serve
    many requests against a resident layout without re-forking per
    request (counted by ``pool.warm_reuse``).  A persistent executor
    must be released with :meth:`close` (or used as a context manager);
    a payload change, timeout kill, or mid-run failure retires the warm
    pool automatically.

    ``cancel_event`` (a :class:`threading.Event`) cooperatively cancels
    an in-flight :meth:`run` between chunks: the run flushes its
    checkpoint and raises :class:`AbortRun`, exactly like an injected
    abort — the seam the service's per-job cancel and deadline reuse.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        chunk_size: int | None = None,
        *,
        persistent: bool = False,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.persistent = persistent
        self.cancel_event: threading.Event | None = None
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_key: tuple[bytes, bool] | None = None
        # strong ref to the warm pool's payload: the byte-key is only a
        # proxy, and holding the object pins the shm handles it names
        self._pool_payload: Any = None

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Tear down the warm pool, if any (idempotent).

        One-shot executors never hold a pool between calls, so this is
        only needed (but is always safe) in ``persistent`` mode.
        """
        pool, self._pool, self._pool_key = self._pool, None, None
        self._pool_payload = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "TileExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _cancelled(self) -> bool:
        event = self.cancel_event
        return event is not None and event.is_set()

    # -- shared plumbing ------------------------------------------------
    def _resolve_chunk(self, n_items: int) -> int:
        # ~4 chunks per worker balances scheduling slack against IPC cost
        return self.chunk_size or max(1, -(-n_items // (self.jobs * 4)))

    @staticmethod
    def _wire_bytes(payload: Any, faults: FaultPlan | None) -> bytes | None:
        """The initializer arguments as pickled bytes, or None when the
        payload cannot be pickled (it then fails loudly at submission)."""
        try:
            import pickle

            return pickle.dumps((payload, faults), pickle.HIGHEST_PROTOCOL)
        except Exception:  # repro-lint: disable=RL004
            return None

    def _make_pool(
        self,
        payload: Any,
        faults: FaultPlan | None,
        workers: int,
        wire: bytes | None = None,
    ) -> multiprocessing.pool.Pool:
        """Stand up a worker pool; raises ``_POOL_ERRORS`` when the host
        cannot (``multiprocessing.Pool`` spawns its workers eagerly, so
        construction failures surface here, not mid-run)."""
        registry = get_registry()
        if registry.enabled:
            # the shared payload is pickled once per worker: track its
            # wire size so payload regressions (e.g. shipping whole-chip
            # geometry where an index would do) show up in the manifest
            try:
                import pickle

                size = (
                    len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
                    if wire is None
                    else len(wire)
                )
                registry.gauge(names.POOL_PAYLOAD_BYTES, float(size))
            # the gauge is advisory; an unpicklable payload fails later,
            # loudly, at submission time
            except Exception:  # repro-lint: disable=RL004
                pass
        return multiprocessing.get_context().Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(payload, get_registry().enabled, faults),
        )

    def _obtain_pool(
        self, payload: Any, faults: FaultPlan | None, workers: int
    ) -> multiprocessing.pool.Pool:
        """A pool whose workers hold ``payload``: warm when possible.

        In persistent mode the pool is created at full ``jobs`` width
        (so a later, larger request can still reuse it) and kept for the
        next call when its initializer arguments — payload and fault
        plan, compared as pickled bytes, plus the registry flag — are
        identical; anything else retires the old pool first.
        """
        if not self.persistent:
            return self._make_pool(payload, faults, workers)
        wire = self._wire_bytes(payload, faults)
        key = (wire, get_registry().enabled) if wire is not None else None
        if self._pool is not None and key is not None and key == self._pool_key:
            get_registry().inc(names.POOL_WARM_REUSE)
            return self._pool
        self.close()
        pool = self._make_pool(payload, faults, self.jobs, wire)
        self._pool, self._pool_key = pool, key
        self._pool_payload = payload
        return pool

    def _retire_pool(self, pool: multiprocessing.pool.Pool, broken: bool) -> None:
        """Give a pool back after a call: keep it warm or tear it down.

        A ``broken`` pool (timeout kill, propagating failure — workers
        may be wedged mid-chunk) is never kept.
        """
        if self.persistent and not broken and pool is self._pool:
            return
        if pool is self._pool:
            self._pool, self._pool_key, self._pool_payload = None, None, None
        pool.terminate()
        pool.join()

    @staticmethod
    def _fallback(exc: BaseException) -> None:
        log.warning(
            "process pool unavailable (%s: %s); falling back to serial execution",
            type(exc).__name__,
            exc,
        )
        get_registry().gauge(names.POOL_FALLBACK, 1)

    # -- plain fan-out --------------------------------------------------
    def map(
        self,
        fn: Callable[[Any, Item], Result],
        payload: Any,
        items: Iterable[Item],
    ) -> list[Result]:
        """Fan ``fn(payload, item)`` out over the pool; failures propagate.

        Only *standing the pool up* degrades to the serial path (with a
        warning and the ``pool_fallback`` gauge); an exception raised by
        ``fn`` mid-run propagates to the caller on every path.
        """
        work = list(items)
        # a SharedPayload crosses the wire as its (small) inner payload;
        # in-process execution uses the inner payload directly, and the
        # executor owns an *owned* arena: the block is unlinked when we
        # return (a session-owned arena outlives the call untouched)
        shared = payload if isinstance(payload, SharedPayload) else None
        arena = shared.arena if shared is not None and shared.owned else None
        inner = shared.inner if shared is not None else payload
        try:
            if self.jobs <= 1 or len(work) <= 1:
                return [fn(inner, item) for item in work]
            registry = get_registry()
            chunk = self._resolve_chunk(len(work))
            chunks = [work[i : i + chunk] for i in range(0, len(work), chunk)]
            try:
                pool = self._obtain_pool(payload, None, min(self.jobs, len(chunks)))
            except _POOL_ERRORS as exc:
                self._fallback(exc)
                return [fn(inner, item) for item in work]
            broken = True
            try:
                parts = pool.map(partial(_run_chunk, fn), chunks, chunksize=1)
                broken = False
            finally:
                self._retire_pool(pool, broken)
            # merge worker metric snapshots in submission order: counters and
            # timers are order-independent, gauges become last-write-wins in
            # the same order a serial run would have written them
            for _, snapshot in parts:
                if snapshot is not None:
                    registry.merge(snapshot)
            return [result for part, _ in parts for result in part]
        finally:
            if arena is not None:
                arena.close()

    # -- fault-tolerant fan-out -----------------------------------------
    def run(
        self,
        fn: Callable[[Any, Item], Result],
        payload: Any,
        items: Iterable[Item],
        *,
        keys: Sequence[Any] | None = None,
        timeout: float | None = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        fault_plan: FaultPlan | None = None,
        checkpoint: Checkpoint | None = None,
    ) -> ExecutionOutcome:
        """Fault-tolerant fan-out: retry, quarantine, checkpoint, resume.

        ``keys`` are stable per-item identities (tile indices); they name
        items in checkpoints, quarantine records, and fault plans, and
        default to positions.  Failing chunks are retried up to
        ``max_retries`` times with exponential backoff, then bisected
        down to the failing tile, which is quarantined (its result slot
        stays ``None``) instead of killing the run.  ``timeout`` bounds
        each chunk attempt's wall time; a hung chunk's workers are killed
        and the chunk is retried like any failure (timeouts need the
        pool, so ``jobs=1`` with a timeout still runs one worker).

        ``fault_plan`` (or ``$REPRO_FAULT_SPEC``) injects deterministic
        failures for testing.  ``checkpoint`` replays already-completed
        keys and persists new completions periodically; on an abort the
        checkpoint is flushed before :class:`AbortRun` is raised.
        """
        work = list(items)
        item_keys = list(keys) if keys is not None else list(range(len(work)))
        if len(item_keys) != len(work):
            raise ValueError("keys must align one-to-one with items")
        faults = fault_plan if fault_plan is not None else FaultPlan.from_env()
        registry = get_registry()

        results: dict[Any, Any] = {}
        resumed: set[Any] = set()
        if checkpoint is not None:
            for key in item_keys:
                if key in checkpoint:
                    results[key] = checkpoint.get(key)
                    resumed.add(key)
        pending = [(k, item) for k, item in zip(item_keys, work) if k not in resumed]

        outcome = ExecutionOutcome(results=[], resumed_keys=frozenset(resumed))
        state = _RunState(
            results=results,
            outcome=outcome,
            registry=registry,
            faults=faults,
            checkpoint=checkpoint,
            max_retries=max_retries,
            backoff_s=backoff_s,
        )
        # a SharedPayload ships its inner payload over the wire; an owned
        # arena dies with the run — unlinked on success, abort, interrupt,
        # and across timeout-driven pool re-creation alike — while a
        # session-owned one (owned=False) survives for the next request
        shared_wrap = payload if isinstance(payload, SharedPayload) else None
        arena = (
            shared_wrap.arena
            if shared_wrap is not None and shared_wrap.owned
            else None
        )
        inner = shared_wrap.inner if shared_wrap is not None else payload
        try:
            if pending:
                use_pool = self.jobs > 1 or timeout is not None
                pooled = False
                if use_pool:
                    pooled = self._run_pooled(fn, payload, pending, timeout, state)
                if not pooled:
                    self._run_inline(fn, inner, pending, state)
        except InjectedAbort as exc:
            if checkpoint is not None:
                checkpoint.flush()
            raise AbortRun(str(exc)) from exc
        except BaseException:
            # real interrupts (Ctrl-C, SIGTERM via KeyboardInterrupt/
            # SystemExit) keep their checkpoint too
            if checkpoint is not None:
                checkpoint.flush()
            raise
        finally:
            if arena is not None:
                arena.close()
        if checkpoint is not None:
            checkpoint.flush()
        outcome.results = [results.get(key) for key in item_keys]
        registry.inc(names.POOL_RETRIES, outcome.retries)
        registry.inc(names.POOL_TIMEOUTS, outcome.timeouts)
        registry.inc(names.POOL_BISECTIONS, outcome.bisections)
        registry.inc(names.POOL_QUARANTINED, len(outcome.quarantined))
        return outcome

    def _run_inline(
        self,
        fn: Callable[[Any, Any], Any],
        payload: Any,
        pending: list[tuple[Any, Any]],
        state: "_RunState",
    ) -> None:
        """Serial fault-tolerant path (no timeout support — nothing can
        interrupt an in-process hang; pass a timeout to force the pool)."""
        unflushed = 0
        for key, item in pending:
            if self._cancelled():
                raise AbortRun("run cancelled")
            failures = 0
            while True:
                attempt = state.execs.get(key, 0)
                state.execs[key] = attempt + 1
                try:
                    if state.faults is not None:
                        state.faults.fire("tile", key, attempt)
                    value = fn(payload, item)
                except InjectedAbort:
                    raise
                except Exception as exc:
                    failures += 1
                    if failures > state.max_retries:
                        state.quarantine(key, f"{type(exc).__name__}: {exc}", failures)
                        break
                    state.outcome.retries += 1
                    if state.backoff_s:
                        time.sleep(state.backoff_s * (2 ** (failures - 1)))
                    continue
                state.results[key] = value
                if state.checkpoint is not None:
                    state.checkpoint.record(key, value)
                    unflushed += 1
                    if unflushed >= _CHECKPOINT_FLUSH_EVERY:
                        state.checkpoint.flush()
                        unflushed = 0
                break

    def _run_pooled(
        self,
        fn: Callable[[Any, Any], Any],
        payload: Any,
        pending: list[tuple[Any, Any]],
        timeout: float | None,
        state: "_RunState",
    ) -> bool:
        """Pooled fault-tolerant path; False when no pool is available."""
        chunk = self._resolve_chunk(len(pending))
        queue: deque[_Chunk] = deque()
        rank_of = {key: i for i, (key, _) in enumerate(pending)}
        for i in range(0, len(pending), chunk):
            items = pending[i : i + chunk]
            queue.append(_Chunk(len(queue), items, rank=rank_of[items[0][0]]))
        state.next_chunk_id = len(queue)
        state.rank_of = rank_of
        workers = max(min(self.jobs, len(queue)), 1)
        try:
            pool = self._obtain_pool(payload, state.faults, workers)
        except _POOL_ERRORS as exc:
            self._fallback(exc)
            return False

        # [chunk, AsyncResult, deadline] triples for in-flight chunks.
        # Submission is throttled to the worker count so a chunk starts
        # executing (and its timeout clock meaningfully begins) roughly
        # when submitted.
        active: list[list[Any]] = []
        snapshots: list[tuple[int, dict]] = []
        broken = True
        try:
            while queue or active:
                if self._cancelled():
                    # cooperative cancel between drain iterations: the
                    # caller's except-path flushes the checkpoint, and
                    # the (possibly mid-chunk) pool is retired as broken
                    raise AbortRun("run cancelled")
                now = time.monotonic()
                while queue and len(active) < workers:
                    eligible = next((c for c in queue if c.not_before <= now), None)
                    if eligible is None:
                        break
                    queue.remove(eligible)
                    wire = []
                    for key, item in eligible.items:
                        attempt = state.execs.get(key, 0)
                        state.execs[key] = attempt + 1
                        wire.append((key, attempt, item))
                    ar = pool.apply_async(
                        _run_chunk_ft, (fn, eligible.id, eligible.attempt, wire)
                    )
                    # the deadline clock starts at actual submission, not
                    # at the (possibly stale) top-of-loop timestamp
                    deadline = (
                        time.monotonic() + timeout if timeout is not None else None
                    )
                    active.append([eligible, ar, deadline])
                progressed = False
                for slot in list(active):
                    chunk_obj, ar, deadline = slot
                    if ar.ready():
                        active.remove(slot)
                        progressed = True
                        try:
                            part, snapshot = ar.get()
                        except InjectedAbort:
                            raise
                        except WorkerFailure as exc:
                            state.fail(chunk_obj, str(exc), queue, failing_key=exc.key)
                        except Exception as exc:
                            # worker died mid-chunk (OOM-kill, segfault):
                            # same treatment as an in-chunk failure
                            state.fail(
                                chunk_obj, f"{type(exc).__name__}: {exc}", queue
                            )
                        else:
                            for key, value in part:
                                state.results[key] = value
                                if state.checkpoint is not None:
                                    state.checkpoint.record(key, value)
                            if state.checkpoint is not None:
                                state.checkpoint.flush()
                            if snapshot is not None:
                                snapshots.append((chunk_obj.rank, snapshot))
                    elif deadline is not None and time.monotonic() > deadline:
                        # hung chunk: kill every worker (the only way to
                        # stop runaway C-level or sleeping code), requeue
                        # innocents unpenalized, charge the hung chunk.
                        # `time.monotonic()` is re-read here — the loop's
                        # `now` predates submission and slow ar.get()
                        # drains, so comparing against it could fire a
                        # full drain-iteration late.
                        progressed = True
                        state.outcome.timeouts += 1
                        self._retire_pool(pool, broken=True)
                        for other in active:
                            if other is not slot:
                                # unpenalized also means the execution
                                # ordinals bumped at submission are rolled
                                # back: the tiles never ran, and fault
                                # plans must see the same per-tile attempt
                                # sequence a serial run produces
                                for key, _ in other[0].items:
                                    state.execs[key] -= 1
                                other[0].not_before = 0.0
                                queue.append(other[0])
                        active.clear()
                        state.fail(chunk_obj, f"timeout after {timeout:g}s", queue)
                        pool = self._obtain_pool(payload, state.faults, workers)
                        break
                if not progressed:
                    time.sleep(0.005)
            broken = False
        finally:
            self._retire_pool(pool, broken)
        for _, snapshot in sorted(snapshots, key=lambda pair: pair[0]):
            state.registry.merge(snapshot)
        return True


@dataclass
class _RunState:
    """Mutable bookkeeping shared by the inline and pooled runners."""

    results: dict[Any, Any]
    outcome: ExecutionOutcome
    registry: Any
    faults: FaultPlan | None
    checkpoint: Checkpoint | None
    max_retries: int
    backoff_s: float
    # per-key execution ordinals (drives deterministic fault injection)
    execs: dict[Any, int] = field(default_factory=dict)
    next_chunk_id: int = 0
    rank_of: dict[Any, int] = field(default_factory=dict)

    def quarantine(self, key: Any, error: str, attempts: int) -> None:
        self.outcome.quarantined.append(QuarantinedTile(key, error, attempts))
        log.warning("quarantined tile %s after %d attempts: %s", key, attempts, error)

    def _new_chunk(self, items: list[tuple[Any, Any]]) -> _Chunk:
        chunk = _Chunk(self.next_chunk_id, items, rank=self.rank_of[items[0][0]])
        self.next_chunk_id += 1
        return chunk

    def fail(
        self,
        chunk: _Chunk,
        error: str,
        queue: deque,
        failing_key: Any = None,
    ) -> None:
        """Retry, bisect, or quarantine a failed chunk attempt."""
        chunk.attempt += 1
        if chunk.attempt <= self.max_retries:
            self.outcome.retries += 1
            if self.backoff_s:
                chunk.not_before = time.monotonic() + self.backoff_s * (
                    2 ** (chunk.attempt - 1)
                )
            queue.append(chunk)
            return
        if len(chunk.items) == 1:
            self.quarantine(chunk.items[0][0], error, chunk.attempt)
            return
        # retries exhausted on a multi-tile chunk: isolate the poison.
        # A known failing key splits off directly; a hang (no key)
        # bisects — each half gets a fresh retry budget.
        self.outcome.bisections += 1
        if failing_key is not None and any(k == failing_key for k, _ in chunk.items):
            halves = (
                [(k, it) for k, it in chunk.items if k == failing_key],
                [(k, it) for k, it in chunk.items if k != failing_key],
            )
        else:
            mid = len(chunk.items) // 2
            halves = (chunk.items[:mid], chunk.items[mid:])
        for half in halves:
            if half:
                queue.append(self._new_chunk(half))
