"""Worker-pool tile executor.

A thin deterministic fan-out layer over :mod:`concurrent.futures`: the
shared read-only payload (litho model, flattened layer regions, rule
deck) is shipped to each worker exactly once via the pool initializer,
work items travel in contiguous chunks, and results come back flattened
in submission order — so a parallel run produces byte-identical output
to a serial one.

Workers are *processes*, not threads: the geometry kernel is pure
Python, so threads would serialize on the GIL.  ``jobs <= 1`` (the
default everywhere) runs inline with zero pool overhead, and any
failure to stand a pool up (restricted sandboxes without semaphores,
missing fork support) degrades to the serial path rather than erroring.

Observability: when the parent's :class:`~repro.obs.MetricsRegistry` is
enabled, workers enable their own process registry, reset it at each
chunk boundary, and ship the chunk's metric snapshot back alongside the
results.  The parent merges snapshots in submission order, so counters
(and gauge last-writes) from a ``jobs=N`` run are identical to a serial
run — only wall-clock timings differ.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import get_registry

Item = TypeVar("Item")
Result = TypeVar("Result")

# Per-worker shared payload, installed once by the pool initializer.
_PAYLOAD: Any = None


def _init_worker(payload: Any, obs_enabled: bool = False) -> None:
    global _PAYLOAD
    _PAYLOAD = payload
    if obs_enabled:
        get_registry().enable()


def _run_chunk(
    fn: Callable[[Any, Any], Any], chunk: Sequence[Any]
) -> tuple[list[Any], dict | None]:
    """Run one chunk; return (results, metric snapshot or None).

    The worker registry is reset at the chunk boundary so the snapshot
    covers exactly this chunk's work — every event is merged into the
    parent exactly once, whichever worker ran the chunk.
    """
    registry = get_registry()
    if registry.enabled:
        registry.reset()
    results = [fn(_PAYLOAD, item) for item in chunk]
    snapshot = registry.snapshot() if registry.enabled else None
    return results, snapshot


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a jobs request: ``None``/``0`` means all available CPUs."""
    if jobs is None or jobs <= 0:
        try:
            return max(len(os.sched_getaffinity(0)), 1)
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


class TileExecutor:
    """Deterministic chunked fan-out of ``fn(payload, item)`` calls.

    ``fn`` must be a module-level function (it is sent to workers by
    reference) and the payload must be picklable.  Results are returned
    in the order of ``items`` regardless of which worker finished first.
    """

    def __init__(self, jobs: int | None = 1, chunk_size: int | None = None):
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size

    def map(
        self,
        fn: Callable[[Any, Item], Result],
        payload: Any,
        items: Iterable[Item],
    ) -> list[Result]:
        work = list(items)
        if self.jobs <= 1 or len(work) <= 1:
            return [fn(payload, item) for item in work]
        registry = get_registry()
        # ~4 chunks per worker balances scheduling slack against IPC cost
        chunk = self.chunk_size or max(1, -(-len(work) // (self.jobs * 4)))
        chunks = [work[i : i + chunk] for i in range(0, len(work), chunk)]
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                initializer=_init_worker,
                initargs=(payload, registry.enabled),
            ) as pool:
                parts = list(pool.map(partial(_run_chunk, fn), chunks))
        except (OSError, ImportError, PermissionError):
            # no usable multiprocessing primitives here — stay correct
            return [fn(payload, item) for item in work]
        # merge worker metric snapshots in submission order: counters and
        # timers are order-independent, gauges become last-write-wins in
        # the same order a serial run would have written them
        for _, snapshot in parts:
            if snapshot is not None:
                registry.merge(snapshot)
        return [result for part, _ in parts for result in part]
