"""repro — "DFM in practice: hit or hype?" (DAC 2008), as a library.

A complete miniature design-for-manufacturability platform: Manhattan
geometry kernel, hierarchical layout database with GDSII I/O, DRC with
recommended-rule scoring, topological pattern catalogs and matching (DRC
Plus), scalar litho simulation with OPC/SRAF/ORC, double-patterning
decomposition, critical-area yield models with redundant vias and wire
spreading, CMP dummy fill, CD-aware timing — and, on top, the hit-or-hype
evaluation harness that turns the DAC'08 panel debate into measured
benefit/cost verdicts.

Quickstart::

    from repro import make_node, generate_logic_block, LogicBlockSpec
    from repro import evaluate_techniques

    tech = make_node(45)
    block = generate_logic_block(tech, LogicBlockSpec(rows=3, weak_spots=8))
    card = evaluate_techniques(block.top, tech)
    print(card.render())
"""

__version__ = "1.0.0"

# geometry kernel
from repro.geometry import Point, Rect, Polygon, Region, Orientation, Transform, GridIndex

# layout database + IO
from repro.layout import Layer, Cell, CellReference, Layout
from repro.gdsii import read_gds, write_gds, read_json, write_json

# technology
from repro.tech import (
    Technology,
    RuleDeck,
    RuleSeverity,
    make_node,
    NODE_65,
    NODE_45,
    NODE_32,
)

# observability
from repro.obs import MetricsRegistry, RunManifest, get_registry, get_tracer, span

# unified report API
from repro.core.report import BaseReport

# engines
from repro.parallel import (
    AbortRun,
    Checkpoint,
    FaultPlan,
    QuarantinedTile,
    Tile,
    TileCache,
    TileExecutor,
    tile_grid,
)
from repro.drc import run_drc, DrcReport, Violation, score_recommended_rules, DfmScore
from repro.patterns import (
    PatternCatalog,
    PatternMatcher,
    extract_patterns,
    via_enclosure_catalog,
    kl_divergence,
    cluster_snippets,
)
from repro.litho import (
    LithoModel,
    simulate,
    ProcessWindow,
    pv_bands,
    measure_cd,
    Cutline,
    find_hotspots,
    Hotspot,
)
from repro.opc import apply_rule_opc, apply_model_opc, insert_srafs, verify_opc
from repro.dpt import decompose_dpt, decompose_with_stitches, score_decomposition
from repro.yieldmodels import (
    critical_area_shorts,
    critical_area_opens,
    yield_poisson,
    yield_negative_binomial,
    insert_redundant_vias,
    spread_wires,
    widen_wires,
)
from repro.cmp import density_map, dummy_fill, thickness_map

# generators
from repro.designgen import (
    make_stdcell_library,
    generate_logic_block,
    LogicBlockSpec,
    generate_sram_array,
    line_grating,
    via_chain,
)

# extensions: connectivity extraction and statistical variation
from repro.extract import extract_nets, check_connectivity, electrical_hotspot_impact
from repro.variation import (
    ProcessSampler,
    simulate_cd_distribution,
    process_capability,
    statistical_path_delays,
)

# the stable high-level facade
from repro import api

# the contribution
from repro.core import (
    DesignContext,
    DesignMetrics,
    measure_design,
    DFMTechnique,
    default_techniques,
    Scorecard,
    Verdict,
    evaluate_techniques,
)

__all__ = [
    "Point", "Rect", "Polygon", "Region", "Orientation", "Transform", "GridIndex",
    "Layer", "Cell", "CellReference", "Layout",
    "read_gds", "write_gds", "read_json", "write_json",
    "Technology", "RuleDeck", "RuleSeverity", "make_node",
    "NODE_65", "NODE_45", "NODE_32",
    "MetricsRegistry", "RunManifest", "get_registry", "get_tracer", "span",
    "api", "BaseReport",
    "Tile", "TileCache", "TileExecutor", "tile_grid",
    "AbortRun", "Checkpoint", "FaultPlan", "QuarantinedTile",
    "run_drc", "DrcReport", "Violation", "score_recommended_rules", "DfmScore",
    "PatternCatalog", "PatternMatcher", "extract_patterns",
    "via_enclosure_catalog", "kl_divergence", "cluster_snippets",
    "LithoModel", "simulate", "ProcessWindow", "pv_bands", "measure_cd",
    "Cutline", "find_hotspots", "Hotspot",
    "apply_rule_opc", "apply_model_opc", "insert_srafs", "verify_opc",
    "decompose_dpt", "decompose_with_stitches", "score_decomposition",
    "critical_area_shorts", "critical_area_opens",
    "yield_poisson", "yield_negative_binomial",
    "insert_redundant_vias", "spread_wires", "widen_wires",
    "density_map", "dummy_fill", "thickness_map",
    "make_stdcell_library", "generate_logic_block", "LogicBlockSpec",
    "generate_sram_array", "line_grating", "via_chain",
    "extract_nets", "check_connectivity", "electrical_hotspot_impact",
    "ProcessSampler", "simulate_cd_distribution", "process_capability",
    "statistical_path_delays",
    "DesignContext", "DesignMetrics", "measure_design",
    "DFMTechnique", "default_techniques", "Scorecard", "Verdict",
    "evaluate_techniques",
]
