"""The layout library: a named collection of cells with a database unit."""

from __future__ import annotations

from typing import Iterator

from repro.layout.cell import Cell


class Layout:
    """A layout library.

    ``dbu_nm`` is the size of one database unit in nanometres (1 by
    convention throughout this project).
    """

    def __init__(self, name: str = "LIB", dbu_nm: float = 1.0):
        if dbu_nm <= 0:
            raise ValueError("dbu must be positive")
        self.name = name
        self.dbu_nm = dbu_nm
        self._cells: dict[str, Cell] = {}

    # -- cell management -------------------------------------------------
    def new_cell(self, name: str) -> Cell:
        if name in self._cells:
            raise ValueError(f"cell {name!r} already exists")
        cell = Cell(name)
        self._cells[name] = cell
        return cell

    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self._cells and self._cells[cell.name] is not cell:
            raise ValueError(f"different cell named {cell.name!r} already exists")
        self._cells[cell.name] = cell
        # pull in referenced cells so the library is closed
        for ref in cell.references:
            if ref.cell.name not in self._cells:
                self.add_cell(ref.cell)
        return cell

    def cell(self, name: str) -> Cell:
        return self._cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> dict[str, Cell]:
        return dict(self._cells)

    def top_cells(self) -> list[Cell]:
        """Cells not referenced by any other cell in the library."""
        referenced: set[str] = set()
        for cell in self._cells.values():
            for ref in cell.references:
                referenced.add(ref.cell.name)
        return [c for name, c in self._cells.items() if name not in referenced]

    def top_cell(self) -> Cell:
        tops = self.top_cells()
        if len(tops) != 1:
            raise ValueError(f"expected exactly one top cell, found {[c.name for c in tops]}")
        return tops[0]

    def __repr__(self) -> str:
        return f"Layout({self.name!r}, {len(self._cells)} cells)"
