"""Hierarchical layout database: layers, cells, references, libraries."""

from repro.layout.layer import Layer
from repro.layout.cell import Cell, CellReference
from repro.layout.library import Layout

__all__ = [
    "Layer",
    "Cell",
    "CellReference",
    "Layout",
    "StoreView",
    "StoreLayer",
    "StoreRects",
    "ensure_store",
    "ingest",
    "open_store",
    "LayoutStoreError",
    "LayoutStoreVersionError",
]

_STORE_NAMES = frozenset(__all__[4:])


def __getattr__(name: str):
    # The out-of-core store imports the GDSII layer, which imports this
    # package for Cell/Layer — resolve lazily to keep the import acyclic.
    if name in _STORE_NAMES:
        from repro.layout import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
