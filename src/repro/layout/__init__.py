"""Hierarchical layout database: layers, cells, references, libraries."""

from repro.layout.layer import Layer
from repro.layout.cell import Cell, CellReference
from repro.layout.library import Layout

__all__ = ["Layer", "Cell", "CellReference", "Layout"]
