"""Out-of-core layout substrate: the ``layoutstore-v1`` flat-rect file.

``ingest`` streams a GDSII file record-by-record (never materializing a
:class:`~repro.layout.Layout`), flattens references on the fly, and
external-sorts each layer's rects into the *same canonical form*
:class:`~repro.geometry.Region` holds in RAM: slab-ordered disjoint
rect quads.  The quads land in an mmap-able int32 file::

    magic (16 bytes, b"layoutstore-v1\\n\\x00")
    <I  directory length
    JSON directory: dbu, cell, source stat signature, per-layer
        {offset, count, extent, digest, run y-extents}
    padding to a 64-byte boundary
    int32 little-endian rect quads (x0, y0, x1, y1), layer by layer

Because the quads are exactly ``Region.rects()`` order, every consumer
of the canonical contract plugs straight in: ``Region.from_canonical_
rects`` rebuilds bit-identical regions, the per-layer digest (computed
while streaming the slabs out) equals ``Region.digest()``, and tile
cache keys derived from either are interchangeable.

Window queries never touch cold pages: canonical order makes both
``x0`` and ``x1`` non-decreasing across a layer (slabs are sorted and
disjoint in x), so a tile's candidate rects are found with two binary
searches, and a per-run y-extent directory skips runs wholly outside
the window.  The candidate set is exactly the set of rects whose
closed bbox touches the window — the same contract as
``GridIndex.query`` — so the pooled engines see identical geometry.

Workers reattach with :class:`StoreRects`, which pickles as
``(path, offset, count)``: the payload for a billion-rect layer is a
few dozen bytes, and the kernel page cache shares the backing pages
between every worker on the host.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import logging
import mmap
import os
import struct
import sys
import tempfile
from array import array
from typing import Iterable, Iterator

from repro.gdsii.stream import flatten, scan_gds
from repro.geometry import Rect, Region
from repro.geometry.intervals import merge_intervals
from repro.obs import get_registry, names

log = logging.getLogger("repro.layout.store")

LayerKey = tuple[int, int]

_MAGIC = b"layoutstore-v1\n\x00"
_MAGIC_PREFIX = b"layoutstore-"
_QUAD = 4
_RUN_LEN = 2048  # rects per y-extent directory run
_SPILL_AT = 65536  # buffered quads per layer before an external-sort spill
_FLUSH_SLOTS = 4 * 8192  # int32 slots buffered before writing through
_I32_MIN = -(1 << 31)
_I32_MAX = (1 << 31) - 1

# sha256 over zero slabs == Region().digest(); absent layers share it so
# store-backed cache keys match the in-RAM path for empty deck layers.
_EMPTY_DIGEST = hashlib.sha256().hexdigest()


class LayoutStoreError(RuntimeError):
    """Raised when a layout store cannot be built, mapped, or resolved."""


class LayoutStoreVersionError(LayoutStoreError):
    """The file is a layout store, but of a different format version."""


# ---------------------------------------------------------------------------
# ingest: external sort + canonical slab sweep
# ---------------------------------------------------------------------------


class _QuadSorter:
    """Buffered external sorter for one layer's flattened rect quads."""

    __slots__ = ("buf", "runs")

    def __init__(self) -> None:
        self.buf: list[tuple[int, int, int, int]] = []
        self.runs: list[tuple[int, int]] = []  # (byte offset, quad count)

    def add(self, x0: int, y0: int, x1: int, y1: int) -> None:
        if x0 >= x1 or y0 >= y1:
            return  # regions drop degenerates; mirror that here
        self.buf.append((x0, y0, x1, y1))

    def spill(self, fh) -> None:
        if not self.buf:
            return
        self.buf.sort()
        packed = array("q")
        for quad in self.buf:
            packed.extend(quad)
        fh.seek(0, os.SEEK_END)
        self.runs.append((fh.tell(), len(self.buf)))
        fh.write(packed.tobytes())
        self.buf = []

    def sorted_quads(self, fh) -> Iterator[tuple[int, int, int, int]]:
        self.buf.sort()
        if not self.runs:
            yield from self.buf
            return
        streams = [_read_run(fh, off, count) for off, count in self.runs]
        if self.buf:
            streams.append(iter(self.buf))
        yield from heapq.merge(*streams)


def _read_run(fh, offset: int, count: int, chunk: int = 8192) -> Iterator[tuple]:
    """Re-seeking chunked reader over one spilled sort run."""
    pos = offset
    remaining = count
    while remaining:
        n = min(chunk, remaining)
        fh.seek(pos)
        quads = array("q")
        quads.frombytes(fh.read(n * 8 * _QUAD))
        pos += n * 8 * _QUAD
        remaining -= n
        for i in range(0, len(quads), _QUAD):
            yield (quads[i], quads[i + 1], quads[i + 2], quads[i + 3])


def _stream_slabs(
    quads: Iterable[tuple[int, int, int, int]],
) -> Iterator[tuple[int, int, list[tuple[int, int]]]]:
    """Canonical slabs from quads sorted by (x0, y0, x1, y1).

    Incremental version of ``region._slabs_from_rects``: the active set
    is swept left to right, cutting only where membership changes, and
    x-adjacent slabs with identical y-interval lists are merged — the
    output is exactly ``Region(rects)._slabs`` without ever holding the
    rect population in memory (only the rects crossing the sweep line).
    """
    it = iter(quads)
    nxt = next(it, None)
    heap: list[tuple[int, int, int]] = []  # (x1, y0, y1)
    pending: tuple[int, int, list[tuple[int, int]]] | None = None
    xa = 0
    while True:
        if not heap:
            if nxt is None:
                break
            xa = nxt[0]
        while nxt is not None and nxt[0] <= xa:
            heapq.heappush(heap, (nxt[2], nxt[1], nxt[3]))
            nxt = next(it, None)
        while heap and heap[0][0] <= xa:
            heapq.heappop(heap)
        if not heap:
            continue
        xb = heap[0][0]
        if nxt is not None and nxt[0] < xb:
            xb = nxt[0]
        ys = merge_intervals([(y0, y1) for (_, y0, y1) in heap])
        if pending is not None and pending[1] == xa and pending[2] == ys:
            pending = (pending[0], xb, ys)
        else:
            if pending is not None:
                yield pending
            pending = (xa, xb, ys)
        xa = xb
    if pending is not None:
        yield pending


class _LayerWriter:
    """Streams one layer's canonical quads to the data file.

    Tracks, without buffering the layer: the ``Region.digest()``-equal
    sha256 (hashed slab by slab with the identical byte packing), the
    layer extent, and per-run [ymin, ymax] for window-query pruning.
    """

    __slots__ = ("fh", "count", "digest", "extent", "runs", "_buf")

    def __init__(self, fh) -> None:
        self.fh = fh
        self.count = 0
        self.digest = hashlib.sha256()
        self.extent: list[int] | None = None
        self.runs: list[list[int]] = []
        self._buf = array("i")

    def write_slab(self, xa: int, xb: int, ys: list[tuple[int, int]]) -> None:
        if not (_I32_MIN <= xa and xb <= _I32_MAX):
            raise LayoutStoreError(f"coordinate out of int32 range: [{xa}, {xb}]")
        self.digest.update(struct.pack("<qqq", xa, xb, len(ys)))
        for y0, y1 in ys:
            if not (_I32_MIN <= y0 and y1 <= _I32_MAX):
                raise LayoutStoreError(f"coordinate out of int32 range: [{y0}, {y1}]")
            self.digest.update(struct.pack("<qq", y0, y1))
            self._buf.extend((xa, y0, xb, y1))
            run = self.count // _RUN_LEN
            if run == len(self.runs):
                self.runs.append([y0, y1])
            else:
                if y0 < self.runs[run][0]:
                    self.runs[run][0] = y0
                if y1 > self.runs[run][1]:
                    self.runs[run][1] = y1
            self.count += 1
            if self.extent is None:
                self.extent = [xa, y0, xb, y1]
            else:
                ext = self.extent
                if xa < ext[0]:
                    ext[0] = xa
                if y0 < ext[1]:
                    ext[1] = y0
                if xb > ext[2]:
                    ext[2] = xb
                if y1 > ext[3]:
                    ext[3] = y1
        if len(self._buf) >= _FLUSH_SLOTS:
            self.flush()

    def flush(self) -> None:
        if self._buf:
            self.fh.write(self._buf.tobytes())
            self._buf = array("i")


def _source_signature(path: str) -> dict:
    st = os.stat(path)
    return {
        "path": os.path.abspath(path),
        "mtime_ns": st.st_mtime_ns,
        "size": st.st_size,
    }


def ingest(
    gds_path: str | os.PathLike,
    store_path: str | os.PathLike,
    *,
    cell: str | None = None,
) -> "StoreView":
    """Stream a GDSII file into a ``layoutstore-v1`` flat-rect store.

    Peak memory is O(distinct cell content + sort buffers), independent
    of the flattened rect count.  The store is written to a sibling
    temp file and moved into place atomically.
    """
    if sys.byteorder != "little":
        raise LayoutStoreError("layout stores require a little-endian host")
    gds_path = os.fspath(gds_path)
    store_path = os.fspath(store_path)
    source = _source_signature(gds_path)
    lib = scan_gds(gds_path)
    cell_name = cell if cell is not None else lib.top_cell_name()

    out_dir = os.path.dirname(os.path.abspath(store_path)) or "."
    sorters: dict[LayerKey, _QuadSorter] = {}
    entries: list[dict] = []
    total_rects = 0
    extent: list[int] | None = None

    with tempfile.TemporaryFile(dir=out_dir) as spill:

        def emit(key: LayerKey, x0: int, y0: int, x1: int, y1: int) -> None:
            sorter = sorters.get(key)
            if sorter is None:
                sorter = sorters[key] = _QuadSorter()
            sorter.add(x0, y0, x1, y1)
            if len(sorter.buf) >= _SPILL_AT:
                sorter.spill(spill)

        flatten(lib, cell_name, emit)

        with tempfile.TemporaryFile(dir=out_dir) as data:
            offset = 0
            for key in sorted(sorters):
                writer = _LayerWriter(data)
                for xa, xb, ys in _stream_slabs(sorters[key].sorted_quads(spill)):
                    writer.write_slab(xa, xb, ys)
                writer.flush()
                if writer.count == 0:
                    continue
                entries.append(
                    {
                        "layer": key[0],
                        "datatype": key[1],
                        "offset": offset,
                        "count": writer.count,
                        "extent": writer.extent,
                        "digest": writer.digest.hexdigest(),
                        "run_len": _RUN_LEN,
                        "runs": writer.runs,
                    }
                )
                offset += writer.count * _QUAD
                total_rects += writer.count
                ext = writer.extent
                if extent is None:
                    extent = list(ext)  # type: ignore[arg-type]
                else:
                    extent = [
                        min(extent[0], ext[0]),
                        min(extent[1], ext[1]),
                        max(extent[2], ext[2]),
                        max(extent[3], ext[3]),
                    ]

            meta = {
                "version": _MAGIC.decode("ascii").rstrip("\n\x00"),
                "dbu_nm": lib.dbu_nm,
                "cell": cell_name,
                "explicit_cell": cell is not None,
                "source": source,
                "extent": extent,
                "layers": entries,
            }
            payload = json.dumps(meta, sort_keys=True).encode("utf-8")
            header = _MAGIC + struct.pack("<I", len(payload)) + payload
            pad = (-len(header)) % 64

            tmp_path = store_path + ".tmp"
            with open(tmp_path, "wb") as out:
                out.write(header)
                out.write(b"\x00" * pad)
                data.seek(0)
                while True:
                    chunk = data.read(1 << 20)
                    if not chunk:
                        break
                    out.write(chunk)
            os.replace(tmp_path, store_path)

    registry = get_registry()
    registry.inc(names.LAYOUTSTORE_INGESTS)
    registry.gauge(names.LAYOUTSTORE_RECTS, total_rects)
    registry.gauge(names.LAYOUTSTORE_BYTES, os.stat(store_path).st_size)
    log.info(
        "ingested %s -> %s (%d rects, %d layers)",
        gds_path,
        store_path,
        total_rects,
        len(entries),
    )
    return open_store(store_path, refresh=True)


# ---------------------------------------------------------------------------
# reading: mmap view, window queries, picklable handles
# ---------------------------------------------------------------------------


class StoreLayer:
    """One layer of a mapped store: canonical rects served on demand.

    Duck-types the slice of :class:`~repro.geometry.Region` the engines
    consume — ``bbox``, ``digest()``, ``rects()`` — plus the windowed
    candidate query the in-RAM path answers with ``GridIndex``.
    """

    __slots__ = ("view", "key", "entry")

    def __init__(self, view: "StoreView", key: LayerKey, entry: dict | None) -> None:
        self.view = view
        self.key = key
        self.entry = entry

    @property
    def count(self) -> int:
        return self.entry["count"] if self.entry else 0

    @property
    def is_empty(self) -> bool:
        return self.entry is None

    @property
    def bbox(self) -> Rect | None:
        if self.entry is None:
            return None
        return Rect(*self.entry["extent"])

    def digest(self) -> str:
        """Equals ``Region.digest()`` of the layer's point set."""
        if self.entry is None:
            return _EMPTY_DIGEST
        return self.entry["digest"]

    def handle(self) -> "StoreRects":
        """Picklable ``(path, offset, count)`` handle for workers."""
        if self.entry is None:
            raise LayoutStoreError(f"layer {self.key} is empty in {self.view.path}")
        return StoreRects(self.view.path, self.entry["offset"], self.entry["count"])

    def rects(self) -> list[Rect]:
        """Every canonical rect, in ``Region.rects()`` order."""
        if self.entry is None:
            return []
        d = self.view.data
        base = self.entry["offset"]
        return [
            Rect(d[i], d[i + 1], d[i + 2], d[i + 3])
            for i in range(base, base + self.entry["count"] * _QUAD, _QUAD)
        ]

    def region(self) -> Region:
        """The layer materialized as an in-RAM canonical region."""
        return Region.from_canonical_rects(self.rects())

    def window(self, window: Rect) -> list[Rect]:
        """Canonical rects whose closed bbox touches ``window``.

        Canonical order makes both x0 and x1 non-decreasing across the
        layer, so the candidate span is found with two binary searches;
        the per-run y-extents then skip runs wholly outside the window
        without faulting their pages in.
        """
        entry = self.entry
        if entry is None:
            return []
        d = self.view.data
        base = entry["offset"]
        n = entry["count"]
        wx0, wy0, wx1, wy1 = window.x0, window.y0, window.x1, window.y1
        lo, hi = 0, n  # first rect with x1 >= wx0
        while lo < hi:
            mid = (lo + hi) >> 1
            if d[base + _QUAD * mid + 2] < wx0:
                lo = mid + 1
            else:
                hi = mid
        start = lo
        lo, hi = start, n  # first rect with x0 > wx1
        while lo < hi:
            mid = (lo + hi) >> 1
            if d[base + _QUAD * mid] <= wx1:
                lo = mid + 1
            else:
                hi = mid
        end = lo
        out: list[Rect] = []
        runs = entry["runs"]
        run_len = entry["run_len"]
        i = start
        while i < end:
            run = i // run_len
            run_end = min((run + 1) * run_len, end)
            ymin, ymax = runs[run]
            if ymin > wy1 or ymax < wy0:
                i = run_end
                continue
            for j in range(i, run_end):
                s = base + _QUAD * j
                ry0 = d[s + 1]
                ry1 = d[s + 3]
                if ry0 <= wy1 and ry1 >= wy0:
                    out.append(Rect(d[s], ry0, d[s + 2], ry1))
            i = run_end
        return out


class StoreView:
    """A read-only mmap of one ``layoutstore-v1`` file."""

    def __init__(self, path: str | os.PathLike) -> None:
        if sys.byteorder != "little":
            raise LayoutStoreError("layout stores require a little-endian host")
        self.path = os.path.abspath(os.fspath(path))
        st = os.stat(self.path)
        self.stat_signature = (st.st_mtime_ns, st.st_size)
        with open(self.path, "rb") as fh:
            head = fh.read(len(_MAGIC))
            if head != _MAGIC:
                if head.startswith(_MAGIC_PREFIX):
                    found = head.rstrip(b"\x00\n").decode("ascii", "replace")
                    want = _MAGIC.rstrip(b"\x00\n").decode("ascii")
                    raise LayoutStoreVersionError(
                        f"{self.path}: layout store version {found!r}, expected {want!r}"
                    )
                raise LayoutStoreError(f"{self.path} is not a layout store")
            try:
                (meta_len,) = struct.unpack("<I", fh.read(4))
                self.meta = json.loads(fh.read(meta_len).decode("utf-8"))
            except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise LayoutStoreError(f"corrupt layout store {self.path}: {exc}") from exc
            data_start = len(_MAGIC) + 4 + meta_len
            data_start += (-data_start) % 64
            expected = data_start + 4 * _QUAD * sum(
                e["count"] for e in self.meta.get("layers", ())
            )
            if st.st_size != expected:
                raise LayoutStoreError(
                    f"corrupt layout store {self.path}: "
                    f"size {st.st_size}, directory expects {expected}"
                )
            self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        self.data = memoryview(self._mm)[data_start:].cast("i")
        self._layers: dict[LayerKey, dict] = {
            (e["layer"], e["datatype"]): e for e in self.meta.get("layers", ())
        }
        self._by_offset: dict[int, dict] = {
            e["offset"]: e for e in self._layers.values()
        }

    # -- metadata -------------------------------------------------------
    @property
    def cell_name(self) -> str:
        return self.meta["cell"]

    @property
    def explicit_cell(self) -> bool:
        return bool(self.meta.get("explicit_cell"))

    @property
    def dbu_nm(self) -> float:
        return float(self.meta["dbu_nm"])

    @property
    def extent(self) -> Rect | None:
        ext = self.meta.get("extent")
        return Rect(*ext) if ext else None

    @property
    def layer_keys(self) -> list[LayerKey]:
        return sorted(self._layers)

    @property
    def total_rects(self) -> int:
        return sum(e["count"] for e in self._layers.values())

    def matches_source(self, gds_path: str | os.PathLike) -> bool:
        """True when the recorded source stat signature is current."""
        try:
            return _source_signature(os.fspath(gds_path)) == self.meta.get("source")
        except OSError:
            return False

    # -- layers ---------------------------------------------------------
    def layer(self, gds_layer: int, gds_datatype: int = 0) -> StoreLayer:
        key = (gds_layer, gds_datatype)
        return StoreLayer(self, key, self._layers.get(key))

    def layer_for(self, layer) -> StoreLayer:
        """The store layer for a :class:`repro.layout.Layer`."""
        return self.layer(layer.gds_layer, layer.gds_datatype)

    def _layer_at(self, offset: int, count: int) -> StoreLayer:
        entry = self._by_offset.get(offset)
        if entry is None or entry["count"] != count:
            raise LayoutStoreError(
                f"no layer at offset {offset} (x{count}) in {self.path}; "
                "store was rewritten since the handle was made"
            )
        return StoreLayer(self, (entry["layer"], entry["datatype"]), entry)

    def close(self) -> None:
        """Release the mapping (views handed out become invalid)."""
        self.data.release()
        self._mm.close()


# Per-process cache of mapped views, keyed by absolute path: workers
# resolving StoreRects handles share one mapping per store file.
_VIEWS: dict[str, StoreView] = {}


def open_store(path: str | os.PathLike, *, refresh: bool = False) -> StoreView:
    """Map a store file, sharing one view per path per process.

    The cached view is re-opened when the file's stat signature changed
    (e.g. re-ingested by another process) or when ``refresh`` is set.
    """
    abspath = os.path.abspath(os.fspath(path))
    view = _VIEWS.get(abspath)
    if view is not None and not refresh:
        try:
            st = os.stat(abspath)
            if (st.st_mtime_ns, st.st_size) == view.stat_signature:
                return view
        except OSError:
            pass
    view = StoreView(abspath)
    _VIEWS[abspath] = view
    return view


def ensure_store(
    gds_path: str | os.PathLike,
    store_path: str | os.PathLike,
    *,
    cell: str | None = None,
    force: bool = False,
) -> StoreView:
    """Map ``store_path``, (re-)ingesting ``gds_path`` when needed.

    An existing store is reused only when its format version, source
    stat signature, and cell selection all match; a version mismatch is
    counted and logged (mirroring the ``tilecache-v1`` sentinel) and
    the store is rebuilt in place.
    """
    registry = get_registry()
    store_path = os.fspath(store_path)
    if not force and os.path.exists(store_path):
        try:
            view = open_store(store_path)
        except LayoutStoreVersionError as exc:
            registry.inc(names.LAYOUTSTORE_VERSION_MISMATCH)
            log.warning("%s; re-ingesting", exc)
        except (LayoutStoreError, OSError) as exc:
            log.warning("unusable layout store %s (%s); re-ingesting", store_path, exc)
        else:
            cell_ok = (
                view.cell_name == cell if cell is not None else not view.explicit_cell
            )
            if cell_ok and view.matches_source(gds_path):
                registry.inc(names.LAYOUTSTORE_REUSED)
                return view
            log.info("layout store %s is stale; re-ingesting", store_path)
    return ingest(gds_path, store_path, cell=cell)


class StoreRects:
    """Picklable handle to one store layer: ``(path, offset, count)``.

    The worker-side twin of :class:`repro.parallel.shm.ShmRects`, with
    the shm segment replaced by the store file: unpickling costs three
    scalars on the wire, and resolution mmaps (or reuses) the store
    read-only — no geometry ever crosses the pipe.
    """

    __slots__ = ("path", "offset", "count", "_layer")

    def __init__(self, path: str, offset: int, count: int) -> None:
        self.path = path
        self.offset = offset
        self.count = count
        self._layer: StoreLayer | None = None

    def __getstate__(self) -> tuple[str, int, int]:
        return (self.path, self.offset, self.count)

    def __setstate__(self, state: tuple[str, int, int]) -> None:
        self.path, self.offset, self.count = state
        self._layer = None

    def _resolve(self) -> StoreLayer:
        if self._layer is None:
            self._layer = open_store(self.path)._layer_at(self.offset, self.count)
        return self._layer

    def rects(self) -> list[Rect]:
        return self._resolve().rects()

    def window(self, window: Rect) -> list[Rect]:
        return self._resolve().window(window)

    def digest(self) -> str:
        return self._resolve().digest()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"StoreRects({self.path!r}, offset={self.offset}, count={self.count})"
