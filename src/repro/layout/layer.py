"""Layout layers.

A layer is identified by its GDSII (layer, datatype) pair; the name is a
human-readable alias.  Layers are value objects: two layers with the same
pair are the same layer regardless of name.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Layer:
    gds_layer: int
    gds_datatype: int = 0
    name: str = field(default="", compare=False)

    def __post_init__(self):
        if not (0 <= self.gds_layer <= 65535 and 0 <= self.gds_datatype <= 65535):
            raise ValueError("GDSII layer/datatype must fit in uint16")

    def __str__(self) -> str:
        if self.name:
            return f"{self.name}({self.gds_layer}/{self.gds_datatype})"
        return f"{self.gds_layer}/{self.gds_datatype}"

    def with_datatype(self, datatype: int) -> "Layer":
        """Derived layer (e.g. a DPT mask colour) on the same GDS layer."""
        suffix = f".{datatype}" if self.name else ""
        return Layer(self.gds_layer, datatype, self.name + suffix)
