"""Cells and cell references."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.geometry import Polygon, Rect, Region, Transform
from repro.layout.layer import Layer

Shape = Rect | Polygon


@dataclass(frozen=True, slots=True)
class CellReference:
    """A placement of a child cell, optionally repeated as an array.

    The array step is applied in the *parent* coordinate system after the
    orientation, matching GDSII AREF semantics for axis-parallel steps.
    """

    cell: "Cell"
    transform: Transform = Transform.IDENTITY
    columns: int = 1
    rows: int = 1
    dx: int = 0
    dy: int = 0

    def __post_init__(self):
        if self.columns < 1 or self.rows < 1:
            raise ValueError("array dimensions must be >= 1")
        if (self.columns > 1 and self.dx == 0) or (self.rows > 1 and self.dy == 0):
            raise ValueError("array repeat requires a non-zero step")

    @property
    def is_array(self) -> bool:
        return self.columns > 1 or self.rows > 1

    def placements(self) -> Iterator[Transform]:
        """One transform per array element."""
        for col in range(self.columns):
            for row in range(self.rows):
                yield Transform(
                    self.transform.dx + col * self.dx,
                    self.transform.dy + row * self.dy,
                    self.transform.orientation,
                )

    @property
    def count(self) -> int:
        return self.columns * self.rows


class Cell:
    """A named container of per-layer shapes and child references."""

    __slots__ = ("name", "_shapes", "_refs")

    def __init__(self, name: str):
        if not name:
            raise ValueError("cell name must be non-empty")
        self.name = name
        self._shapes: dict[Layer, list[Shape]] = {}
        self._refs: list[CellReference] = []

    # -- construction ---------------------------------------------------
    def add_rect(self, layer: Layer, rect: Rect) -> None:
        if rect.is_degenerate:
            raise ValueError(f"degenerate rect {rect} on {layer}")
        self._shapes.setdefault(layer, []).append(rect)

    def add_polygon(self, layer: Layer, polygon: Polygon) -> None:
        self._shapes.setdefault(layer, []).append(polygon)

    def add_region(self, layer: Layer, region: Region) -> None:
        for rect in region.rects():
            self.add_rect(layer, rect)

    def add_ref(
        self,
        cell: "Cell",
        transform: Transform = Transform.IDENTITY,
        columns: int = 1,
        rows: int = 1,
        dx: int = 0,
        dy: int = 0,
    ) -> CellReference:
        if cell is self or cell._depends_on(self):
            raise ValueError(f"reference {self.name} -> {cell.name} would create a cycle")
        ref = CellReference(cell, transform, columns, rows, dx, dy)
        self._refs.append(ref)
        return ref

    def _depends_on(self, other: "Cell") -> bool:
        return any(r.cell is other or r.cell._depends_on(other) for r in self._refs)

    # -- inspection ----------------------------------------------------------
    @property
    def references(self) -> tuple[CellReference, ...]:
        return tuple(self._refs)

    @property
    def layers(self) -> set[Layer]:
        layers = set(self._shapes)
        for ref in self._refs:
            layers |= ref.cell.layers
        return layers

    def shapes(self, layer: Layer) -> list[Shape]:
        """Shapes drawn directly in this cell on ``layer`` (not children's)."""
        return list(self._shapes.get(layer, ()))

    def shape_count(self, recursive: bool = False) -> int:
        n = sum(len(v) for v in self._shapes.values())
        if recursive:
            n += sum(ref.count * ref.cell.shape_count(recursive=True) for ref in self._refs)
        return n

    @property
    def bbox(self) -> Rect | None:
        boxes: list[Rect] = []
        for shapes in self._shapes.values():
            for s in shapes:
                boxes.append(s if isinstance(s, Rect) else s.bbox)
        for ref in self._refs:
            child = ref.cell.bbox
            if child is not None:
                for t in ref.placements():
                    boxes.append(t.apply_rect(child))
        if not boxes:
            return None
        out = boxes[0]
        for b in boxes[1:]:
            out = out.union_bbox(b)
        return out

    # -- flattening and region extraction -------------------------------------
    def polygons(self, layer: Layer, transform: Transform = Transform.IDENTITY) -> Iterator[Polygon]:
        """All polygons on ``layer``, hierarchy flattened, transformed."""
        for shape in self._shapes.get(layer, ()):
            poly = Polygon.from_rect(shape) if isinstance(shape, Rect) else shape
            if transform.is_identity:
                yield poly
            else:
                yield Polygon(transform.apply_points(poly.points))
        for ref in self._refs:
            for place in ref.placements():
                yield from ref.cell.polygons(layer, place.then(transform))

    def rects(self, layer: Layer, transform: Transform = Transform.IDENTITY) -> Iterator[Rect]:
        """All shapes on ``layer`` flattened to rectangles (polygons are
        decomposed)."""
        for shape in self._shapes.get(layer, ()):
            if isinstance(shape, Rect):
                yield transform.apply_rect(shape)
            else:
                for rect in shape.to_region().rects():
                    yield transform.apply_rect(rect)
        for ref in self._refs:
            for place in ref.placements():
                yield from ref.cell.rects(layer, place.then(transform))

    def region(self, layer: Layer, window: Rect | None = None) -> Region:
        """Flattened canonical region of ``layer``, optionally clipped."""
        rects = self.rects(layer)
        if window is not None:
            clipped = []
            for r in rects:
                inter = r.intersection(window)
                if inter is not None:
                    clipped.append(inter)
            return Region(clipped)
        return Region(list(rects))

    def flattened(self, name: str | None = None) -> "Cell":
        """A copy with the full hierarchy merged into direct shapes."""
        flat = Cell(name or f"{self.name}_flat")
        for layer in self.layers:
            for poly in self.polygons(layer):
                if poly.is_rect:
                    flat.add_rect(layer, poly.bbox)
                else:
                    flat.add_polygon(layer, poly)
        return flat

    def copy(self, name: str | None = None) -> "Cell":
        """A shallow-hierarchy copy: own shapes are duplicated, child
        cells are shared (references copied)."""
        dup = Cell(name or self.name)
        for layer, shapes in self._shapes.items():
            dup._shapes[layer] = list(shapes)
        dup._refs = list(self._refs)
        return dup

    def __repr__(self) -> str:
        return (
            f"Cell({self.name!r}, {self.shape_count()} shapes, "
            f"{len(self._refs)} refs, {len(self.layers)} layers)"
        )
