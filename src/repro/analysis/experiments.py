"""Experiment records: the structured results the benches produce and
EXPERIMENTS.md summarizes."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """A named (x, y) series — one curve of a figure."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def render(self, x_label: str = "x", y_label: str = "y") -> str:
        lines = [f"series {self.name} ({x_label} -> {y_label}):"]
        for x, y in zip(self.xs, self.ys):
            lines.append(f"  {x:>12g}  {y:>12g}")
        return "\n".join(lines)


@dataclass
class ExperimentRecord:
    """One table/figure reproduction: id, claim, and measured outcome."""

    experiment_id: str
    claim: str
    measured: dict[str, float] = field(default_factory=dict)
    holds: bool | None = None
    notes: str = ""

    def record(self, name: str, value: float) -> None:
        self.measured[name] = value

    def conclude(self, holds: bool, notes: str = "") -> None:
        self.holds = holds
        self.notes = notes

    def render(self) -> str:
        status = {True: "HOLDS", False: "DOES NOT HOLD", None: "UNEVALUATED"}[self.holds]
        lines = [f"[{self.experiment_id}] {self.claim} -> {status}"]
        for name, value in self.measured.items():
            lines.append(f"    {name} = {value:g}")
        if self.notes:
            lines.append(f"    note: {self.notes}")
        return "\n".join(lines)
