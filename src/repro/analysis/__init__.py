"""Reporting utilities: ASCII tables, series, and experiment records."""

from repro.analysis.tables import Table, format_float
from repro.analysis.experiments import ExperimentRecord, Series

__all__ = ["Table", "format_float", "ExperimentRecord", "Series"]
