"""Minimal ASCII table rendering for benchmark output."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_float(value: float, digits: int = 3) -> str:
    """Compact float formatting: trims trailing zeros, keeps magnitude."""
    if value == 0:
        return "0"
    if abs(value) >= 10 ** (digits + 2) or abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}".rstrip("0").rstrip(".")


@dataclass
class Table:
    """A titled table with string/number cells."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        text_rows = [
            [c if isinstance(c, str) else format_float(float(c)) for c in row]
            for row in self.rows
        ]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in text_rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
