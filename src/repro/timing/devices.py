"""Equivalent rectangular transistors for non-rectangular gates.

Post-OPC gates are not rectangles: corner rounding and proximity leave the
channel length varying along the width.  Compact models take one (W, L),
so the printed gate is sliced across its width and collapsed to an
equivalent length — one value for drive current, a different one for
leakage, because the two average differently:

* drive: currents add, ``I ~ W/L``, so ``L_drive = W / sum(w_i / l_i)``
  (harmonic, dominated by the *longest* slices only weakly);
* leakage: ``I_leak ~ W * exp(-L/s)``, dominated by the *shortest* slice
  (the exponential), so
  ``L_leak = -s * ln( sum(w_i exp(-l_i/s)) / W )``.

This is the "from poly line to transistor" methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry import Rect, Region


@dataclass(frozen=True)
class GateSlices:
    """(width_i, length_i) strips across the gate width, in nm."""

    slices: tuple[tuple[int, float], ...]

    @property
    def total_width(self) -> int:
        return sum(w for w, _ in self.slices)

    @property
    def min_length(self) -> float:
        return min(l for _, l in self.slices) if self.slices else 0.0

    @property
    def max_length(self) -> float:
        return max(l for _, l in self.slices) if self.slices else 0.0


def slice_gate(
    poly: Region,
    active: Region,
    vertical_poly: bool = True,
    strip_nm: int = 5,
) -> GateSlices:
    """Slice the channel (poly over active) into strips across the width.

    ``vertical_poly`` means the poly line runs vertically, so the gate
    length is its x-extent and the width direction is y.  The printed
    ``poly`` region may be non-rectangular; each strip measures the local
    channel length as the poly x-extent inside that strip.
    """
    channel = poly & active
    if channel.is_empty:
        return GateSlices(slices=())
    bb = channel.bbox
    slices: list[tuple[int, float]] = []
    if vertical_poly:
        pos = bb.y0
        while pos < bb.y1:
            top = min(pos + strip_nm, bb.y1)
            strip = channel & Region(Rect(bb.x0, pos, bb.x1, top))
            if not strip.is_empty:
                width = top - pos
                length = strip.area / width
                slices.append((width, length))
            pos = top
    else:
        pos = bb.x0
        while pos < bb.x1:
            right = min(pos + strip_nm, bb.x1)
            strip = channel & Region(Rect(pos, bb.y0, right, bb.y1))
            if not strip.is_empty:
                width = right - pos
                length = strip.area / width
                slices.append((width, length))
            pos = right
    return GateSlices(slices=tuple(slices))


def equivalent_length_drive(gate: GateSlices) -> float:
    """Drive-equivalent channel length (harmonic mean over slices)."""
    if not gate.slices:
        return 0.0
    conductance = sum(w / l for w, l in gate.slices if l > 0)
    if conductance <= 0:
        return 0.0
    return gate.total_width / conductance


def equivalent_length_leakage(gate: GateSlices, subthreshold_nm: float = 10.0) -> float:
    """Leakage-equivalent channel length (log-sum-exp over slices)."""
    if not gate.slices:
        return 0.0
    s = subthreshold_nm
    total = sum(w * math.exp(-l / s) for w, l in gate.slices)
    return -s * math.log(total / gate.total_width)
