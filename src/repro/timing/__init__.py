"""Variability-aware timing: equivalent-L extraction for non-rectangular
(post-litho) gates, logical-effort delay, and path analysis under drawn
vs. litho-extracted CDs."""

from repro.timing.devices import (
    GateSlices,
    slice_gate,
    equivalent_length_drive,
    equivalent_length_leakage,
)
from repro.timing.delay import DelayModel, gate_delay_ps, leakage_nw, wire_delay_ps
from repro.timing.paths import Stage, TimingPath, path_delay_ps, compare_paths

__all__ = [
    "GateSlices",
    "slice_gate",
    "equivalent_length_drive",
    "equivalent_length_leakage",
    "DelayModel",
    "gate_delay_ps",
    "leakage_nw",
    "wire_delay_ps",
    "Stage",
    "TimingPath",
    "path_delay_ps",
    "compare_paths",
]
