"""Logical-effort delay and subthreshold leakage models.

Absolute numbers are calibrated loosely to a 45 nm-class process; the
experiments only rely on relative behaviour (how CD shifts move delays).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DelayModel:
    """Per-node electrical constants."""

    nominal_length_nm: float = 35.0
    tau_ps: float = 1.2                 # FO1 inverter delay at nominal L
    c_gate_af_per_nm: float = 1.0       # gate cap per nm of width
    c_wire_af_per_nm: float = 0.2       # wire cap per nm of length
    r_wire_ohm_per_nm: float = 0.02     # wire resistance per nm (min width)
    r_drive_ohm_nm: float = 20000.0     # R = r_drive / W * (L/Lnom)
    i_leak_na_per_nm: float = 0.05      # leakage per nm width at nominal L
    subthreshold_nm: float = 10.0       # leakage length sensitivity


def gate_delay_ps(
    model: DelayModel,
    drive_width_nm: float,
    length_nm: float,
    load_ff: float,
    logical_effort: float = 1.0,
    parasitic: float = 1.0,
) -> float:
    """Stage delay: ``tau * (p + g*h)`` with the effort scaled by L/Lnom.

    ``load_ff`` is the capacitive load; the input capacitance of this gate
    is ``c_gate * W``, so electrical effort h = load / C_in.
    """
    if drive_width_nm <= 0 or length_nm <= 0:
        raise ValueError("width and length must be positive")
    c_in_ff = model.c_gate_af_per_nm * drive_width_nm * 1e-3
    h = load_ff / c_in_ff if c_in_ff > 0 else 0.0
    l_factor = length_nm / model.nominal_length_nm
    return model.tau_ps * l_factor * (parasitic + logical_effort * h)


def wire_delay_ps(model: DelayModel, length_nm: float, load_ff: float = 0.0) -> float:
    """Elmore delay of a min-width wire driving ``load_ff``."""
    r = model.r_wire_ohm_per_nm * length_nm
    c_ff = model.c_wire_af_per_nm * length_nm * 1e-3
    return 1e-3 * r * (c_ff / 2.0 + load_ff)  # ohm * fF = 1e-3 ps


def leakage_nw(model: DelayModel, width_nm: float, length_nm: float, vdd: float = 1.0) -> float:
    """Subthreshold leakage power estimate in nW."""
    import math

    scale = math.exp(-(length_nm - model.nominal_length_nm) / model.subthreshold_nm)
    return model.i_leak_na_per_nm * width_nm * scale * vdd
