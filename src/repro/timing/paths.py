"""Path timing under drawn vs. litho-extracted channel lengths.

The post-OPC timing methodology: tag the gates on candidate critical
paths, back-annotate each with its litho-measured channel length, rerun
timing, and compare both the worst slack and the path *ordering* — the
reorder is what makes drawn-CD signoff unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.timing.delay import DelayModel, gate_delay_ps, wire_delay_ps


@dataclass(frozen=True, slots=True)
class Stage:
    """One gate plus its output wire."""

    name: str
    drive_width_nm: float
    drawn_length_nm: float
    wire_length_nm: float = 0.0
    logical_effort: float = 1.0
    parasitic: float = 1.0
    fanout_load_ff: float = 1.0


@dataclass
class TimingPath:
    name: str
    stages: list[Stage] = field(default_factory=list)

    def with_lengths(self, lengths: dict[str, float]) -> "TimingPath":
        """A copy with per-stage channel lengths overridden (back-
        annotation from litho extraction)."""
        new_stages = [
            replace(s, drawn_length_nm=lengths.get(s.name, s.drawn_length_nm))
            for s in self.stages
        ]
        return TimingPath(self.name, new_stages)


def path_delay_ps(path: TimingPath, model: DelayModel | None = None) -> float:
    model = model or DelayModel()
    total = 0.0
    for stage in path.stages:
        wire_c_ff = model.c_wire_af_per_nm * stage.wire_length_nm * 1e-3
        load = stage.fanout_load_ff + wire_c_ff
        total += gate_delay_ps(
            model,
            stage.drive_width_nm,
            stage.drawn_length_nm,
            load,
            stage.logical_effort,
            stage.parasitic,
        )
        total += wire_delay_ps(model, stage.wire_length_nm, stage.fanout_load_ff)
    return total


@dataclass
class PathComparison:
    """Drawn vs annotated timing for a set of paths."""

    names: list[str]
    drawn_ps: list[float]
    annotated_ps: list[float]

    @property
    def worst_drawn(self) -> float:
        return max(self.drawn_ps)

    @property
    def worst_annotated(self) -> float:
        return max(self.annotated_ps)

    @property
    def worst_shift_percent(self) -> float:
        return 100.0 * (self.worst_annotated - self.worst_drawn) / self.worst_drawn

    @property
    def critical_path_changed(self) -> bool:
        return self.drawn_ps.index(self.worst_drawn) != self.annotated_ps.index(
            self.worst_annotated
        )

    def reorder_count(self) -> int:
        """Pairs of paths whose relative order flipped."""
        n = len(self.names)
        flips = 0
        for i in range(n):
            for j in range(i + 1, n):
                before = self.drawn_ps[i] - self.drawn_ps[j]
                after = self.annotated_ps[i] - self.annotated_ps[j]
                if before * after < 0:
                    flips += 1
        return flips

    def summary(self) -> str:
        return (
            f"paths: {len(self.names)}, worst drawn {self.worst_drawn:.2f} ps -> "
            f"annotated {self.worst_annotated:.2f} ps "
            f"({self.worst_shift_percent:+.1f}%), "
            f"{self.reorder_count()} order flips, "
            f"critical path {'CHANGED' if self.critical_path_changed else 'same'}"
        )


def compare_paths(
    paths: list[TimingPath],
    annotations: dict[str, dict[str, float]],
    model: DelayModel | None = None,
) -> PathComparison:
    """Time every path at drawn CDs and at annotated (litho) CDs.

    ``annotations`` maps path name -> {stage name -> litho length}.
    """
    model = model or DelayModel()
    names = [p.name for p in paths]
    drawn = [path_delay_ps(p, model) for p in paths]
    annotated = [
        path_delay_ps(p.with_lengths(annotations.get(p.name, {})), model) for p in paths
    ]
    return PathComparison(names=names, drawn_ps=drawn, annotated_ps=annotated)
