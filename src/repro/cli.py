"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate``  — write a synthetic logic block to GDSII
* ``info``      — summarize a GDSII library
* ``ingest``    — stream a GDSII into an out-of-core layout store
* ``drc``       — run minimum-rule DRC on a GDSII cell
* ``scan``      — tiled full-chip litho hotspot scan
* ``dpt``       — double-patterning decomposition of one layer
* ``scorecard`` — the hit-or-hype evaluation on a generated block
* ``matrix``    — library compliance matrix: every cell-pair abutment
* ``serve``     — run the verification service daemon (see docs/SERVICE.md)
* ``submit``    — submit a job to a running daemon

Exit-code contract (what CI gates on): ``0`` on success, and for the
verification commands (``drc``, ``scan``, ``dpt``) ``1`` when findings
are reported — violations, hotspots, or coloring conflicts.  Pass
``--no-fail`` to get exit 0 regardless of findings (report-only mode).
Quarantined tiles (tasks that kept failing and were excluded — see
``--max-retries``) also exit ``1``, *even with* ``--no-fail``: a
quarantine means the verification is incomplete, not that the layout is
clean.  Usage errors exit ``2`` via argparse; an interrupted run whose
state was checkpointed (resume with ``--resume``) exits ``3``.

``submit`` extends the contract for daemon-side outcomes: ``0`` clean,
``1`` findings or quarantine (as above), ``2`` usage/protocol errors or
a failed job, ``3`` job cancelled or timed out, ``4`` request shed by a
full queue, ``5`` daemon unreachable.  ``matrix`` follows the same
contract (``1`` on any failing scenario; with ``--daemon``, codes
``4``/``5`` as for ``submit``).

Every command accepts ``--metrics-out FILE`` (write a JSON run manifest
with per-stage timings and counters) and ``--trace`` (print the nested
wall-time span tree after the run) — see :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import api
from repro.analysis import Table
from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.dpt import score_decomposition
from repro.gdsii import read_gds, write_gds
from repro.layout import Layer
from repro.parallel import AbortRun
from repro.tech import make_node


def _add_node(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--node", type=int, default=45, help="process node in nm (default 45)")


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write a JSON run manifest (per-stage timings, counters) to FILE",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="print the nested wall-time span tree after the run",
    )


def _add_no_fail(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-fail", action="store_true",
        help="exit 0 even when findings are reported (report-only mode)",
    )


def _findings_rc(args, found: bool, report=None) -> int:
    """Exit code for a verification command: findings fail unless opted out.

    A quarantined tile always fails — the run is *incomplete*, which
    ``--no-fail`` (a statement about findings, not about coverage) does
    not excuse.
    """
    if report is not None and getattr(report, "quarantined", None):
        return 1
    if getattr(args, "no_fail", False):
        return 0
    return 1 if found else 0


def _add_parallel(parser: argparse.ArgumentParser, default_cache: str) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the tiled engine (0 = all CPUs, default 1)",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="reuse per-tile results cached from a previous run; only tiles "
             "whose geometry changed are re-verified",
    )
    parser.add_argument(
        "--cache-file", default=default_cache,
        help="where --incremental persists the tile cache between runs",
    )


def _add_faults(parser: argparse.ArgumentParser, default_checkpoint: str) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry a work chunk running longer than this "
             "(default: no timeout)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per tile before it is quarantined (default 2)",
    )
    parser.add_argument(
        "--checkpoint-file", default=None, metavar="FILE",
        help="periodically checkpoint completed tiles to FILE "
             f"(default with --resume: {default_checkpoint})",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint file, recomputing only unfinished "
             "tiles (stale/mismatched checkpoints are ignored)",
    )
    parser.set_defaults(default_checkpoint=default_checkpoint)


def _checkpoint_file(args) -> str | None:
    """The checkpoint path: explicit flag, or the default when resuming."""
    if args.checkpoint_file:
        return args.checkpoint_file
    return args.default_checkpoint if args.resume else None


def _print_quarantine(report) -> None:
    for q in getattr(report, "quarantined", ()):
        print(f"  QUARANTINED {q}", file=sys.stderr)


def _load_cache(args):
    from repro.parallel import TileCache

    if not args.incremental:
        return None
    return TileCache.load(args.cache_file)


def _finish_cache(args, cache, report) -> None:
    if cache is None:
        return
    cache.save(args.cache_file)
    print(
        f"incremental: {report.tiles_cached}/{report.tiles} tiles cached "
        f"({report.cache_hit_rate:.0%} hit rate), "
        f"{report.tiles_computed} re-verified, cache -> {args.cache_file}"
    )


def _resolve_cell(layout, name: str | None):
    if name:
        return layout.cell(name)
    return layout.top_cell()


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", metavar="FILE", default=None,
        help="run out-of-core from this layout store file (built from the "
             "GDSII on first use, reused while the GDSII is unchanged)",
    )


def _open_store(args):
    """Build-or-map the layout store named by ``--store``."""
    from repro.layout.store import LayoutStoreError

    try:
        return api.ingest_store(args.gds, args.store, cell=args.cell or None)
    except LayoutStoreError as exc:
        raise SystemExit(f"layout store error: {exc}") from exc


def _parse_extent(text: str | None):
    if text is None:
        return None
    from repro.geometry import Rect

    try:
        x0, y0, x1, y1 = (int(v) for v in text.split(","))
        return Rect(x0, y0, x1, y1)
    except ValueError as exc:
        raise SystemExit(
            f"bad --extent {text!r} (expected x0,y0,x1,y1 in nm)"
        ) from exc


def _resolve_layer(tech, name: str) -> Layer:
    from dataclasses import fields

    for f in fields(tech.layers):
        layer = getattr(tech.layers, f.name)
        if isinstance(layer, Layer) and layer.name == name:
            return layer
    raise SystemExit(f"unknown layer {name!r} (try M1, M2, M3, V1, V2, POLY, ...)")


def cmd_generate(args) -> int:
    tech = make_node(args.node)
    spec = LogicBlockSpec(
        rows=args.rows,
        row_width_nm=args.width,
        net_count=args.nets,
        seed=args.seed,
        weak_spots=args.weak_spots,
    )
    block = generate_logic_block(tech, spec)
    write_gds(block.layout, args.out)
    print(
        f"wrote {args.out}: {block.cell_count} cells, {block.net_count} nets, "
        f"bbox {block.top.bbox.as_tuple()}"
    )
    return 0


def cmd_info(args) -> int:
    layout = read_gds(args.gds)
    print(f"library {layout.name!r}: {len(layout)} cells, dbu {layout.dbu_nm:g} nm")
    table = Table("cells", ["name", "shapes", "refs", "layers"])
    for cell in layout:
        table.add_row(
            cell.name,
            float(cell.shape_count()),
            float(len(cell.references)),
            float(len({(l.gds_layer, l.gds_datatype) for l in cell.layers})),
        )
    print(table.render())
    tops = [c.name for c in layout.top_cells()]
    print(f"top cells: {', '.join(tops) or '(none)'}")
    return 0


def cmd_drc(args) -> int:
    tech = make_node(args.node)
    if args.store:
        store = _open_store(args)
        cell = None
    else:
        store = None
        layout = read_gds(args.gds)
        cell = _resolve_cell(layout, args.cell)
    deck = tech.rules.minimum()
    cache = _load_cache(args)
    checkpoint_file = _checkpoint_file(args)
    tiled = (
        args.jobs != 1
        or cache is not None
        or args.timeout is not None
        or checkpoint_file is not None
    )
    report = api.run_drc(
        cell,
        deck,
        jobs=args.jobs,
        tile_nm=args.tile if tiled else None,
        cache=cache,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_file=checkpoint_file,
        resume=args.resume,
        store=store,
    )
    print(report.summary())
    _finish_cache(args, cache, report)
    _print_quarantine(report)
    return _findings_rc(args, bool(report.violations), report)


def cmd_scan(args) -> int:
    tech = make_node(args.node)
    layer = _resolve_layer(tech, args.layer)
    if args.store:
        store = _open_store(args)
        store_layer = store.layer_for(layer)
        # an empty layer has no rect runs to window; its (empty) region
        # scans identically through the in-RAM path
        region = store_layer if not store_layer.is_empty else store_layer.region()
    else:
        layout = read_gds(args.gds)
        cell = _resolve_cell(layout, args.cell)
        region = cell.region(layer)
    cache = _load_cache(args)
    report = api.scan_full_chip(
        tech,
        region,
        extent=_parse_extent(args.extent),
        tile_nm=args.tile,
        pinch_limit=tech.metal_width // 2,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint_file=_checkpoint_file(args),
        resume=args.resume,
    )
    print(report.summary())
    _finish_cache(args, cache, report)
    _print_quarantine(report)
    # --limit 0 means "summary only": print no listing and no tail
    if args.limit > 0:
        for hotspot in report.hotspots[: args.limit]:
            print(f"  {hotspot}")
        remaining = len(report.hotspots) - args.limit
        if remaining > 0:
            print(f"  ... and {remaining} more")
    return _findings_rc(args, bool(report.hotspots), report)


def cmd_dpt(args) -> int:
    tech = make_node(args.node)
    layout = read_gds(args.gds)
    cell = _resolve_cell(layout, args.cell)
    layer = _resolve_layer(tech, args.layer)
    region = cell.region(layer)
    result, stitches = api.decompose(region, args.space)
    score = score_decomposition(result, stitches)
    print(result.summary())
    print(f"stitches: {len(stitches)}")
    print(score.summary())
    if args.out:
        from repro.layout import Layout

        out = Layout(f"DPT_{cell.name}")
        top = out.new_cell("TOP")
        top.add_region(layer.with_datatype(1), result.mask_a)
        top.add_region(layer.with_datatype(2), result.mask_b)
        write_gds(out, args.out)
        print(f"wrote masks to {args.out}")
    return _findings_rc(args, not result.ok)


def cmd_ingest(args) -> int:
    from repro.layout.store import LayoutStoreError

    out = args.out or (args.gds + ".lstore")
    try:
        view = api.ingest_store(args.gds, out, cell=args.cell, force=args.force)
    except LayoutStoreError as exc:
        raise SystemExit(f"layout store error: {exc}") from exc
    extent = view.extent.as_tuple() if view.extent is not None else None
    print(
        f"store {out}: cell {view.cell_name!r}, "
        f"{len(view.layer_keys)} layers, {view.total_rects} rects, "
        f"extent {extent}"
    )
    return 0


def cmd_serve(args) -> int:
    from repro.service import ServiceDaemon, VerificationService

    service = VerificationService(
        jobs=args.jobs,
        node=args.node,
        max_depth=args.max_depth,
        max_sessions=args.max_sessions,
        store_entries=args.store_entries,
        session_store_dir=args.session_store_dir,
    )
    daemon = ServiceDaemon(
        service, host=args.host, port=args.port, state_file=args.state_file
    )
    host, port = daemon.address
    print(f"repro service on {host}:{port} (state file {args.state_file})")
    sys.stdout.flush()
    daemon.serve_until_shutdown()
    print("repro service stopped")
    return 0


# submit ops that name a job id rather than a layout
_SUBMIT_JOB_OPS = ("status", "cancel")
_SUBMIT_PLAIN_OPS = ("ping", "metrics", "shutdown")


def _submit_job_rc(args, job: dict) -> int:
    """Map a finished job snapshot onto the submit exit-code contract."""
    state = job.get("state")
    if state in ("cancelled", "timeout"):
        print(f"job {job.get('id')} {state}: {job.get('error', '')}", file=sys.stderr)
        return 3
    if state == "failed":
        print(f"job {job.get('id')} failed: {job.get('error', '')}", file=sys.stderr)
        return 2
    result = job.get("result") or {}
    for line in result.get("listing", ()):
        print(f"  {line}")
    if result.get("summary"):
        print(result["summary"])
    if result.get("quarantined"):
        return 1
    if getattr(args, "no_fail", False):
        return 0
    return 1 if result.get("findings") else 0


def cmd_submit(args) -> int:
    import json as _json

    from repro.service import (
        BadRequestError,
        DaemonUnreachableError,
        QueueFullError,
        ServiceError,
        SocketClient,
    )

    try:
        client = SocketClient.from_state_file(
            path=args.state_file, timeout=args.socket_timeout
        )
        if args.op in _SUBMIT_PLAIN_OPS:
            response = client.request(args.op)
            response.pop("schema", None)
            print(_json.dumps(response, indent=2, sort_keys=True))
            return 0
        if args.op in _SUBMIT_JOB_OPS:
            if args.id is None:
                print(f"submit {args.op} requires --id", file=sys.stderr)
                return 2
            job = getattr(client, args.op)(args.id)
            print(_json.dumps(job, indent=2, sort_keys=True))
            return 0
        # scan / drc
        if not args.gds:
            print(f"submit {args.op} requires a GDS path", file=sys.stderr)
            return 2
        params = {"gds": args.gds, "tile": args.tile, "node": args.node,
                  "limit": args.limit}
        if args.cell:
            params["cell"] = args.cell
        if args.op == "scan":
            params["layer"] = args.layer
        job = client.submit(
            args.op,
            params,
            client=args.client,
            priority=args.priority,
            timeout_s=args.job_timeout,
            wait=not args.async_submit,
        )
        if args.async_submit:
            print(_json.dumps(job, indent=2, sort_keys=True))
            return 0
        return _submit_job_rc(args, job)
    except DaemonUnreachableError as exc:
        print(f"daemon unreachable: {exc}", file=sys.stderr)
        return 5
    except QueueFullError as exc:
        print(f"request shed: {exc}", file=sys.stderr)
        return 4
    except BadRequestError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"service error ({exc.code}): {exc}", file=sys.stderr)
        return 2


def cmd_matrix(args) -> int:
    from repro.service import (
        BadRequestError,
        DaemonUnreachableError,
        QueueFullError,
        ServiceError,
        SocketClient,
    )

    nodes = tuple(int(n) for n in args.nodes.split(","))
    cells = tuple(args.cells.split(",")) if args.cells else None
    checks = tuple(args.checks.split(","))
    try:
        if args.daemon:
            with SocketClient.from_state_file(
                path=args.state_file, timeout=args.socket_timeout
            ) as client:
                report = api.run_compliance_matrix(
                    nodes=nodes, cells=cells, corners=args.corners,
                    checks=checks, window_nm=args.window, client=client,
                )
        else:
            report = api.run_compliance_matrix(
                nodes=nodes, cells=cells, corners=args.corners,
                checks=checks, window_nm=args.window, jobs=args.jobs,
            )
    except DaemonUnreachableError as exc:
        print(f"daemon unreachable: {exc}", file=sys.stderr)
        return 5
    except QueueFullError as exc:
        print(f"request shed: {exc}", file=sys.stderr)
        return 4
    except BadRequestError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"service error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"bad matrix spec: {exc}", file=sys.stderr)
        return 2

    print(report.summary())
    table = Table("per-cell verdicts", ["cell", "standalone", "abutment"])
    for cell, verdict in report.cell_verdicts.items():
        table.add_row(
            cell,
            1.0 if verdict["standalone_ok"] else 0.0,
            1.0 if verdict["abutment_ok"] else 0.0,
        )
    print(table.render())
    for pair in report.weak_pairs[: args.limit]:
        print(
            f"  weak pair {pair['pair'][0]}|{pair['pair'][1]}: "
            f"{pair['findings']} findings over {pair['scenarios']} scenarios"
        )
    if report.fix_priority:
        print(f"fix priority: {', '.join(report.fix_priority)}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json(indent=2))
            fh.write("\n")
        print(f"wrote report to {args.out}")
    return _findings_rc(args, not report.ok)


def cmd_scorecard(args) -> int:
    tech = make_node(args.node)
    spec = LogicBlockSpec(
        rows=args.rows,
        row_width_nm=args.width,
        net_count=args.nets,
        seed=args.seed,
        weak_spots=args.weak_spots,
    )
    block = generate_logic_block(tech, spec)
    card = api.scorecard(block.top, tech, d0_per_cm2=args.d0)
    print(card.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DFM in practice: hit or hype? - CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic logic block to GDSII")
    _add_node(p)
    p.add_argument("--rows", type=int, default=3)
    p.add_argument("--width", type=int, default=8000)
    p.add_argument("--nets", type=int, default=16)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--weak-spots", type=int, default=0)
    p.add_argument("--out", default="block.gds")
    _add_obs(p)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("info", help="summarize a GDSII library")
    p.add_argument("gds")
    _add_obs(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser(
        "ingest", help="stream a GDSII into an out-of-core layout store"
    )
    p.add_argument("gds")
    p.add_argument("--out", default=None,
                   help="store file to write (default: GDS path + .lstore)")
    p.add_argument("--cell",
                   help="cell to flatten (default: the single top cell)")
    p.add_argument("--force", action="store_true",
                   help="rebuild even when an up-to-date store exists")
    _add_obs(p)
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("drc", help="run minimum-rule DRC on a cell")
    _add_node(p)
    p.add_argument("gds")
    p.add_argument("--cell")
    p.add_argument("--tile", type=int, default=4000,
                   help="tile size (nm) for the parallel/incremental engine")
    _add_store(p)
    _add_parallel(p, ".repro_drc_cache.pkl")
    _add_faults(p, ".repro_drc_ckpt.pkl")
    _add_obs(p)
    _add_no_fail(p)
    p.set_defaults(func=cmd_drc)

    p = sub.add_parser("scan", help="tiled full-chip litho hotspot scan")
    _add_node(p)
    p.add_argument("gds")
    p.add_argument("--cell")
    p.add_argument("--layer", default="M1")
    p.add_argument("--tile", type=int, default=4000)
    p.add_argument("--limit", type=int, default=10,
                   help="hotspots to list (0 = summary only)")
    p.add_argument("--extent", default=None, metavar="X0,Y0,X1,Y1",
                   help="scan extent in nm (default: the drawn bbox)")
    _add_store(p)
    _add_parallel(p, ".repro_scan_cache.pkl")
    _add_faults(p, ".repro_scan_ckpt.pkl")
    _add_obs(p)
    _add_no_fail(p)
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("dpt", help="double-patterning decomposition of one layer")
    _add_node(p)
    p.add_argument("gds")
    p.add_argument("--cell")
    p.add_argument("--layer", default="M1")
    p.add_argument("--space", type=int, required=True, help="same-mask spacing limit (nm)")
    p.add_argument("--out", help="write the two masks to this GDSII file")
    _add_obs(p)
    _add_no_fail(p)
    p.set_defaults(func=cmd_dpt)

    p = sub.add_parser("serve", help="run the verification service daemon")
    _add_node(p)
    p.add_argument("--host", default="127.0.0.1",
                   help="listen address (localhost only by design)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = pick a free one; see the state file)")
    p.add_argument("--state-file", default=".repro_service.json",
                   help="where to publish the daemon's host/port/pid")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the persistent executor "
                        "(0 = all CPUs, default 1)")
    p.add_argument("--max-depth", type=int, default=256,
                   help="queued jobs before new submissions are shed")
    p.add_argument("--max-sessions", type=int, default=4,
                   help="resident layouts kept loaded (LRU beyond this)")
    p.add_argument("--store-entries", type=int, default=100000,
                   help="tile results kept in the shared store (LRU beyond this)")
    p.add_argument("--session-store-dir", default=None, metavar="DIR",
                   help="back sessions with cached out-of-core layout stores "
                        "in DIR (they survive daemon restarts)")
    _add_obs(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a job to a running daemon")
    p.add_argument("op", choices=["scan", "drc", "ping", "metrics", "status",
                                  "cancel", "shutdown"],
                   help="verification kind or control operation")
    p.add_argument("gds", nargs="?", help="layout path (scan/drc only)")
    _add_node(p)
    p.add_argument("--state-file", default=".repro_service.json",
                   help="state file published by `repro serve`")
    p.add_argument("--cell", help="cell to verify (default: top cell)")
    p.add_argument("--layer", default="M1", help="layer for scan jobs")
    p.add_argument("--tile", type=int, default=4000)
    p.add_argument("--limit", type=int, default=10,
                   help="findings to list in the result (0 = summary only)")
    p.add_argument("--client", default="cli",
                   help="client name used for queue fairness accounting")
    p.add_argument("--priority", default="interactive",
                   choices=["interactive", "batch", "background"])
    p.add_argument("--job-timeout", type=float, default=None, metavar="SECONDS",
                   help="cancel the job if it runs longer than this")
    p.add_argument("--socket-timeout", type=float, default=None, metavar="SECONDS",
                   help="socket timeout per request (default: wait forever)")
    p.add_argument("--async", dest="async_submit", action="store_true",
                   help="return the job id immediately instead of waiting")
    p.add_argument("--id", type=int, help="job id for status/cancel")
    _add_obs(p)
    _add_no_fail(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "matrix",
        help="standard-cell compliance matrix: every abutment x node x corner",
    )
    p.add_argument("--nodes", default="45",
                   help="comma-separated process nodes in nm (default 45)")
    p.add_argument("--cells", default=None,
                   help="comma-separated cell names (default: whole library)")
    p.add_argument("--corners", type=int, default=2,
                   help="litho process corners per scenario (default 2)")
    p.add_argument("--checks", default="litho,dpt",
                   help="comma-separated checks: litho, dpt (default both)")
    p.add_argument("--window", type=int, default=None, metavar="NM",
                   help="abutment window half-width (default: 2 poly pitches)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for in-process execution")
    p.add_argument("--limit", type=int, default=5,
                   help="weak pairs to list (0 = summary only)")
    p.add_argument("--daemon", action="store_true",
                   help="run through a live daemon as one batched submit")
    p.add_argument("--state-file", default=".repro_service.json",
                   help="state file published by `repro serve` (with --daemon)")
    p.add_argument("--socket-timeout", type=float, default=None, metavar="SECONDS",
                   help="socket timeout per request (with --daemon)")
    p.add_argument("--out", help="write the full JSON report to this file")
    _add_obs(p)
    _add_no_fail(p)
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("scorecard", help="hit-or-hype evaluation on a generated block")
    _add_node(p)
    p.add_argument("--rows", type=int, default=3)
    p.add_argument("--width", type=int, default=8000)
    p.add_argument("--nets", type=int, default=16)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--weak-spots", type=int, default=12)
    p.add_argument("--d0", type=float, default=1.0)
    _add_obs(p)
    p.set_defaults(func=cmd_scorecard)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.obs import RunManifest, get_registry, get_tracer, span
    from repro.parallel import resolve_jobs

    metrics_out = getattr(args, "metrics_out", None)
    trace = getattr(args, "trace", False)
    registry, tracer = get_registry(), get_tracer()
    observing = bool(metrics_out or trace)
    if observing:
        registry.reset()
        registry.enable()
        tracer.reset()
        if trace:
            tracer.enable()
    t0 = time.perf_counter()
    try:
        try:
            with span(args.command):
                rc = args.func(args)
        except AbortRun as exc:
            # interrupted mid-run; completed tiles were checkpointed
            print(f"run aborted: {exc}", file=sys.stderr)
            print("completed tiles are checkpointed; rerun with --resume",
                  file=sys.stderr)
            rc = 3
        if trace:
            print(tracer.render())
        if metrics_out:
            from repro.obs import sample_peak_rss

            # one whole-process high-water mark per manifest: this is
            # the number the out-of-core path is judged by
            sample_peak_rss(registry)
            manifest = RunManifest.collect(
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                args=vars(args),
                registry=registry,
                tracer=tracer,
                elapsed_seconds=time.perf_counter() - t0,
                workers=resolve_jobs(args.jobs) if hasattr(args, "jobs") else 1,
            )
            manifest.write(metrics_out)
            print(f"metrics -> {metrics_out}")
    finally:
        if observing:
            # main() is re-entrant (tests call it repeatedly): leave the
            # process-wide registry/tracer the way we found them
            tracer.disable()
            tracer.reset()
            registry.disable()
            registry.reset()
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
