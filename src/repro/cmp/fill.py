"""Dummy-fill insertion.

Classic rule-based fill: tile the extent, and in every tile below the
target density drop fill squares on a staggered grid wherever they clear
the signal geometry by the fill-to-signal spacing.  Fill shapes land on
the same GDS layer with a distinct datatype so extraction can tell them
apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import BaseReport
from repro.geometry import Rect, Region
from repro.obs import get_registry, names
from repro.tech.technology import CmpSettings


@dataclass
class FillReport(BaseReport):
    tiles_filled: int = 0
    shapes_added: int = 0
    fill_area: int = 0

    def summary(self) -> str:
        return (
            f"dummy fill: {self.shapes_added} shapes ({self.fill_area} nm^2) "
            f"across {self.tiles_filled} tiles"
        )


def dummy_fill(
    signal: Region,
    extent: Rect,
    settings: CmpSettings,
    fill_size: int = 400,
    fill_space: int = 200,
    keepout: int = 200,
    extra_blocked: Region | None = None,
) -> tuple[Region, FillReport]:
    """Fill low-density tiles up to the target density.

    Returns (fill_region, report).  Deterministic: tiles are visited in
    raster order, candidate sites on a fixed grid.  ``extra_blocked``
    adds keep-clear area that contributes nothing to density (smart-fill
    keepouts around critical nets).
    """
    registry = get_registry()
    report = FillReport()
    window = settings.window_nm
    # fill on NON-overlapping tiles: overlapping tiles would lay down
    # interleaved, mutually-blocking fill grids (the analysis window in
    # density_map may still overlap — that is a measurement choice)
    step = window
    target = settings.target_density
    blocked = signal.grown(keepout)
    if extra_blocked is not None:
        blocked = blocked | extra_blocked
    fill_rects: list[Rect] = []
    fill_region = Region()

    with registry.timer(names.CMP_FILL_TIMER):
        y = extent.y0
        while y < extent.y1:
            x = extent.x0
            while x < extent.x1:
                tile = Rect(x, y, min(x + window, extent.x1), min(y + window, extent.y1))
                if tile.area == 0:
                    x += step
                    continue
                tile_region = Region(tile)
                have = (signal & tile_region).area + (fill_region & tile_region).area
                need = int(target * tile.area) - have
                if need > 0:
                    added = _fill_tile(
                        tile, blocked, fill_region, fill_size, fill_space, need
                    )
                    if added:
                        report.tiles_filled += 1
                        for rect in added:
                            fill_rects.append(rect)
                            report.shapes_added += 1
                            report.fill_area += rect.area
                        fill_region = fill_region | Region(added)
                x += step
            y += step
    registry.inc(names.CMP_FILL_RUNS)
    registry.inc(names.CMP_FILL_SHAPES, report.shapes_added)
    registry.inc(names.CMP_FILL_TILES, report.tiles_filled)
    return fill_region, report


def _fill_tile(
    tile: Rect,
    blocked: Region,
    existing_fill: Region,
    size: int,
    space: int,
    need: int,
) -> list[Rect]:
    pitch = size + space
    added: list[Rect] = []
    got = 0
    y = tile.y0 + space // 2
    while y + size <= tile.y1 and got < need:
        x = tile.x0 + space // 2
        while x + size <= tile.x1 and got < need:
            cand = Rect(x, y, x + size, y + size)
            cand_halo = Region(cand.expanded(space))
            if not blocked.overlaps(Region(cand)) and not existing_fill.overlaps(cand_halo) and not _collides(added, cand, space):
                added.append(cand)
                got += cand.area
            x += pitch
        y += pitch
    return added


def _collides(added: list[Rect], cand: Rect, space: int) -> bool:
    grown = cand.expanded(space)
    return any(grown.overlaps(a) for a in added)
