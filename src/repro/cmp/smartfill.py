"""Timing-aware ("smart") dummy fill.

The panel-era objection to blanket fill: dummy metal next to a critical
net adds coupling capacitance and slows it.  Smart fill keeps a larger
keepout around nets marked critical and accepts slightly worse density
uniformity in exchange — the classic fill/timing trade-off, made
measurable by the coupling proxy below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.fill import FillReport, dummy_fill
from repro.core.report import BaseReport
from repro.geometry import Rect, Region
from repro.tech.technology import CmpSettings


@dataclass
class CouplingReport(BaseReport):
    """Fill-to-signal adjacency, the first-order coupling-cap proxy.

    ``coupling_perimeter_nm`` is the total signal boundary length with
    fill inside the coupling reach — proportional to added sidewall
    capacitance at fixed spacing.
    """

    coupling_perimeter_nm: int = 0
    critical_coupling_perimeter_nm: int = 0

    def summary(self) -> str:
        return (
            f"coupling proxy: {self.coupling_perimeter_nm} nm total, "
            f"{self.critical_coupling_perimeter_nm} nm on critical nets"
        )


def coupling_proxy(
    signal: Region, fill: Region, reach_nm: int, critical: Region | None = None
) -> CouplingReport:
    """Measure the fill-to-signal coupling proxy.

    A signal boundary segment couples when fill lies within ``reach_nm``
    of it; the proxy is the length of such boundary, computed as the
    perimeter of the signal that a fill halo covers.
    """
    report = CouplingReport()
    if fill.is_empty or signal.is_empty:
        return report
    halo = fill.grown(reach_nm)
    report.coupling_perimeter_nm = _covered_perimeter(signal, halo)
    if critical is not None and not critical.is_empty:
        report.critical_coupling_perimeter_nm = _covered_perimeter(critical, halo)
    return report


def _covered_perimeter(signal: Region, halo: Region) -> int:
    total = 0
    for a, b in signal.edges():
        x0, x1 = sorted((a.x, b.x))
        y0, y1 = sorted((a.y, b.y))
        edge_region = Region(Rect(x0 - 1, y0 - 1, x1 + 1, y1 + 1))
        covered = edge_region & halo
        if covered.is_empty:
            continue
        # attribute by overlap fraction of the edge's thin box
        frac = covered.area / edge_region.area
        total += int(frac * (abs(b.x - a.x) + abs(b.y - a.y)))
    return total


def smart_fill(
    signal: Region,
    extent: Rect,
    settings: CmpSettings,
    critical: Region,
    fill_size: int = 400,
    fill_space: int = 200,
    keepout: int = 200,
    critical_keepout: int | None = None,
) -> tuple[Region, FillReport]:
    """Dummy fill with an enlarged keepout around critical nets.

    Implemented by inflating the blocked region with the critical nets
    grown to ``critical_keepout`` (default 3x the normal keepout) before
    running the standard fill; everything else matches ``dummy_fill``.
    """
    critical_keepout = critical_keepout or 3 * keepout
    extra = critical.grown(critical_keepout)
    return dummy_fill(
        signal,
        extent,
        settings,
        fill_size=fill_size,
        fill_space=fill_space,
        keepout=keepout,
        extra_blocked=extra,
    )
