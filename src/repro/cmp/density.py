"""Window density analysis."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Rect, Region


@dataclass
class DensityMap:
    """Per-tile fill fractions over an extent."""

    extent: Rect
    window: int
    step: int
    values: np.ndarray  # shape (ny, nx), row 0 at the bottom

    @property
    def min(self) -> float:
        return float(self.values.min())

    @property
    def max(self) -> float:
        return float(self.values.max())

    @property
    def range(self) -> float:
        return self.max - self.min

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std())

    def tiles_outside(self, lo: float, hi: float) -> int:
        return int(np.sum((self.values < lo) | (self.values > hi)))

    def tile_rect(self, i: int, j: int) -> Rect:
        x0 = self.extent.x0 + i * self.step
        y0 = self.extent.y0 + j * self.step
        return Rect(x0, y0, min(x0 + self.window, self.extent.x1), min(y0 + self.window, self.extent.y1))

    def summary(self) -> str:
        return (
            f"density: mean {self.mean:.3f}, min {self.min:.3f}, "
            f"max {self.max:.3f}, range {self.range:.3f}, std {self.std:.3f}"
        )


def density_map(region: Region, extent: Rect, window: int, step: int | None = None) -> DensityMap:
    """Sweep a ``window`` square across ``extent`` at ``step`` (default
    half-window) and record fill fraction per tile."""
    if window <= 0:
        raise ValueError("window must be positive")
    step = step or max(window // 2, 1)
    nx = max(1, -(-(extent.x1 - extent.x0 - window) // step) + 1) if extent.x1 - extent.x0 > window else 1
    ny = max(1, -(-(extent.y1 - extent.y0 - window) // step) + 1) if extent.y1 - extent.y0 > window else 1
    values = np.zeros((ny, nx))
    clipped = region & Region(extent)
    for j in range(ny):
        for i in range(nx):
            x0 = extent.x0 + i * step
            y0 = extent.y0 + j * step
            tile = Rect(x0, y0, min(x0 + window, extent.x1), min(y0 + window, extent.y1))
            if tile.area > 0:
                values[j, i] = (clipped & Region(tile)).area / tile.area
    return DensityMap(extent=extent, window=window, step=step, values=values)
