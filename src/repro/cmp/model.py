"""Density-driven CMP thickness model.

First-order behaviour of oxide/copper polish: post-CMP thickness deviates
from nominal proportionally to the local pattern-density deviation from
the process target.  The model is deliberately linear — what matters for
the DFM evaluation is the *range* of thickness across the die, which
dummy fill reduces by flattening the density map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cmp.density import DensityMap
from repro.tech.technology import CmpSettings


@dataclass
class ThicknessStats:
    nominal_nm: float
    values: np.ndarray

    @property
    def min(self) -> float:
        return float(self.values.min())

    @property
    def max(self) -> float:
        return float(self.values.max())

    @property
    def range(self) -> float:
        return self.max - self.min

    @property
    def std(self) -> float:
        return float(self.values.std())

    def summary(self) -> str:
        return (
            f"thickness: nominal {self.nominal_nm:g} nm, range {self.range:.2f} nm, "
            f"std {self.std:.2f} nm"
        )


def thickness_map(density: DensityMap, settings: CmpSettings) -> ThicknessStats:
    """Post-polish thickness per tile from the density map."""
    deviation = density.values - settings.target_density
    thickness = settings.nominal_thickness_nm - settings.thickness_per_density_nm * deviation
    return ThicknessStats(nominal_nm=settings.nominal_thickness_nm, values=thickness)
