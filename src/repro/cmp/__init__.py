"""CMP density management: window density maps, dummy fill, and the
density-driven post-polish thickness model."""

from repro.cmp.density import DensityMap, density_map
from repro.cmp.fill import dummy_fill, FillReport
from repro.cmp.model import thickness_map, ThicknessStats
from repro.cmp.smartfill import smart_fill, coupling_proxy, CouplingReport

__all__ = [
    "DensityMap",
    "density_map",
    "dummy_fill",
    "FillReport",
    "thickness_map",
    "ThicknessStats",
    "smart_fill",
    "coupling_proxy",
    "CouplingReport",
]
