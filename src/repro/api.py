"""Stable, high-level entry points — the supported programmatic API.

Everything the command line can do is callable from here with the same
semantics, and this module is the compatibility contract: function
names, positional parameters, and result types are stable across
releases; new capabilities arrive as new keyword-only options with
defaults that preserve old behavior.  Internal modules
(:mod:`repro.drc.engine`, :mod:`repro.litho.fullchip`, ...) may
reorganize freely underneath it.

Every verification entry point returns a
:class:`repro.core.report.BaseReport` subclass, so callers can rely on
``report.ok``, ``report.findings_count``, ``report.summary()`` and
``report.to_dict()`` / ``to_json()`` uniformly.

The fault-tolerance options (``timeout``, ``max_retries``,
``fault_plan``, ``checkpoint_file``, ``resume``) are shared by
:func:`run_drc` and :func:`scan_full_chip` and documented on
:meth:`repro.parallel.TileExecutor.run`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.drc.engine import run_drc as _run_drc
from repro.dpt.decompose import decompose_dpt
from repro.dpt.stitch import decompose_with_stitches
from repro.litho.fullchip import scan_full_chip as _scan_full_chip
from repro.litho.model import LithoModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scorecard import Scorecard
    from repro.core.techniques import DFMTechnique
    from repro.dpt.decompose import DecompositionResult
    from repro.dpt.stitch import Stitch
    from repro.drc.violations import DrcReport
    from repro.geometry import Rect, Region
    from repro.layout import Cell
    from repro.layout.store import StoreLayer, StoreView
    from repro.litho.fullchip import FullChipScanReport
    from repro.matrix import LibraryComplianceReport
    from repro.litho.process import ProcessWindow
    from repro.parallel import FaultPlan, TileCache, TileExecutor
    from repro.service import VerificationService
    from repro.tech.rules import RuleDeck
    from repro.tech.technology import Technology

__all__ = [
    "run_drc",
    "scan_full_chip",
    "decompose",
    "scorecard",
    "ingest_store",
    "make_service",
    "run_compliance_matrix",
]


def run_drc(
    cell: "Cell | None",
    deck: "RuleDeck",
    *,
    window: "Rect | None" = None,
    jobs: int = 1,
    tile_nm: int | None = None,
    cache: "TileCache | None" = None,
    timeout: float | None = None,
    max_retries: int = 2,
    fault_plan: "FaultPlan | None" = None,
    checkpoint_file: str | None = None,
    resume: bool = False,
    executor: "TileExecutor | None" = None,
    store: "StoreView | None" = None,
) -> "DrcReport":
    """Run every rule in ``deck`` against ``cell``.

    Defaults to the classic single-pass run; ``jobs``/``tile_nm``/
    ``cache`` or any fault-tolerance option selects the tiled
    parallel + incremental engine.  Returns a
    :class:`~repro.drc.violations.DrcReport`; ``report.ok`` is False
    when violations were found *or* tasks were quarantined.

    ``executor`` lets a long-lived caller (see :func:`make_service`)
    supply its own — typically persistent — tile executor whose warm
    worker pool is reused across calls; results are identical either
    way.

    ``store`` (see :func:`ingest_store`) runs the deck out-of-core
    against an mmapped layout store instead of flattening ``cell``
    (which may then be ``None``): workers window their tile's rects
    straight from the file, and the report and cache keys stay
    bit-identical to the in-RAM run.
    """
    return _run_drc(
        cell,
        deck,
        window,
        jobs=jobs,
        tile_nm=tile_nm,
        cache=cache,
        timeout=timeout,
        max_retries=max_retries,
        fault_plan=fault_plan,
        checkpoint_file=checkpoint_file,
        resume=resume,
        executor=executor,
        store=store,
    )


def scan_full_chip(
    model: "LithoModel | Technology",
    drawn: "Region | StoreLayer",
    *,
    extent: "Rect | None" = None,
    tile_nm: int = 4000,
    process: "ProcessWindow | None" = None,
    pinch_limit: int | None = None,
    mask: "Region | None" = None,
    grid: int | None = None,
    overlap_nm: int = 200,
    jobs: int = 1,
    cache: "TileCache | None" = None,
    timeout: float | None = None,
    max_retries: int = 2,
    fault_plan: "FaultPlan | None" = None,
    checkpoint_file: str | None = None,
    resume: bool = False,
    executor: "TileExecutor | None" = None,
) -> "FullChipScanReport":
    """Tiled full-chip litho hotspot scan of ``drawn``.

    ``model`` accepts a :class:`~repro.litho.model.LithoModel` or a
    :class:`~repro.tech.technology.Technology` (whose litho settings
    build one).  Returns a
    :class:`~repro.litho.fullchip.FullChipScanReport`; ``report.ok`` is
    False when hotspots were found *or* tiles were quarantined.

    ``executor`` lets a long-lived caller (see :func:`make_service`)
    supply its own — typically persistent — tile executor whose warm
    worker pool is reused across calls; results are identical either
    way.

    ``drawn`` also accepts a :class:`~repro.layout.store.StoreLayer`
    (one layer of an :func:`ingest_store` store): the scan then runs
    out-of-core — workers mmap the store read-only and window each
    tile's rects on demand — with bit-identical hotspots and cache
    keys.
    """
    if not isinstance(model, LithoModel):
        model = LithoModel(model.litho)
    return _scan_full_chip(
        model,
        drawn,
        extent=extent,
        tile_nm=tile_nm,
        process=process,
        pinch_limit=pinch_limit,
        mask=mask,
        grid=grid,
        overlap_nm=overlap_nm,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        max_retries=max_retries,
        fault_plan=fault_plan,
        checkpoint_file=checkpoint_file,
        resume=resume,
        executor=executor,
    )


def decompose(
    region: "Region",
    same_mask_space: int,
    *,
    stitches: bool = True,
    stitch_overlap: int = 20,
    max_rounds: int = 4,
) -> "tuple[DecompositionResult, list[Stitch]]":
    """Double-patterning decomposition of one layer.

    With ``stitches`` (the default) conflicting features may be split at
    stitch points to rescue an odd cycle; without it the plain two-
    coloring runs and the stitch list is always empty.  Returns
    ``(result, stitches)`` in both modes so callers need one code path.
    """
    if stitches:
        return decompose_with_stitches(
            region,
            same_mask_space,
            stitch_overlap=stitch_overlap,
            max_rounds=max_rounds,
        )
    return decompose_dpt(region, same_mask_space), []


def scorecard(
    cell: "Cell",
    tech: "Technology",
    *,
    techniques: "list[DFMTechnique] | None" = None,
    d0_per_cm2: float | None = None,
    hotspot_window: "Rect | None" = None,
) -> "Scorecard":
    """The paper's hit-or-hype evaluation: run every DFM technique on
    ``cell`` and score cost against benefit.  Returns a
    :class:`~repro.core.scorecard.Scorecard` (render with
    ``card.render()``)."""
    from repro.core import evaluate_techniques

    return evaluate_techniques(
        cell,
        tech,
        techniques=techniques,
        d0_per_cm2=d0_per_cm2,
        hotspot_window=hotspot_window,
    )


def run_compliance_matrix(
    *,
    nodes: "tuple[int, ...] | list[int]" = (45,),
    cells: "tuple[str, ...] | list[str] | None" = None,
    corners: int = 2,
    checks: "tuple[str, ...] | list[str]" = ("litho", "dpt"),
    flips: "tuple[bool, ...] | list[bool]" = (False, True),
    window_nm: int | None = None,
    jobs: int = 1,
    client: "object | None" = None,
    store: "object | None" = None,
) -> "LibraryComplianceReport":
    """Run the standard-cell compliance matrix at library scale.

    Enumerates every ordered cell-pair abutment (both flips) per node —
    plus each cell standalone — and checks each window for litho
    hotspots at ``corners`` process corners and for DPT two-
    colorability, deduplicating identical abutment windows through the
    content-addressed result store.  Returns a
    :class:`~repro.matrix.LibraryComplianceReport` with per-cell
    standalone vs. in-abutment verdicts, the weak-pair ranking, and the
    fix-priority ordering.

    ``cells=None`` runs the whole generated library.  ``client`` (a
    :class:`~repro.service.ServiceClient` or
    :class:`~repro.service.SocketClient`) routes the scenarios through a
    verification service as one batched submit on the background band;
    otherwise they run in process over ``jobs`` workers.  The report is
    identical either way.
    """
    from repro.matrix import MatrixSpec, run_matrix

    spec = MatrixSpec(
        nodes=tuple(nodes),
        cells=tuple(cells) if cells is not None else None,
        corners=corners,
        checks=tuple(checks),
        flips=tuple(flips),
        window_nm=window_nm,
    )
    return run_matrix(spec, jobs=jobs, client=client, store=store)


def ingest_store(
    gds_path: str,
    store_path: str,
    *,
    cell: str | None = None,
    force: bool = False,
) -> "StoreView":
    """Stream a GDSII into an out-of-core layout store and map it.

    Parses record-by-record — the hierarchy is never materialized — and
    writes each layer's canonical rects to ``store_path`` as an
    mmap-able flat-quad file, reusing an existing file when it already
    matches this exact GDSII version (``force`` rebuilds
    unconditionally).  The returned
    :class:`~repro.layout.store.StoreView` serves whole layers
    (:meth:`~repro.layout.store.StoreView.layer`) or windowed rect
    queries without touching cold pages, and plugs into
    :func:`scan_full_chip` and :func:`run_drc`.
    """
    from repro.layout.store import ensure_store

    return ensure_store(gds_path, store_path, cell=cell, force=force)


def make_service(
    *,
    jobs: int = 1,
    node: int = 45,
    max_depth: int = 256,
    max_sessions: int = 4,
    store_entries: int = 100_000,
    session_store_dir: str | None = None,
) -> "VerificationService":
    """A long-lived in-process verification service.

    The service keeps layouts resident, the worker pool warm, and a
    content-addressed result store shared across runs, so repeated
    verification of an evolving layout costs only the dirty tiles.
    Drive it through :class:`repro.service.ServiceClient` (or serve it
    over a socket with ``repro serve``), and ``close()`` it — it is a
    context manager — when done.

    ``session_store_dir`` switches sessions to cached out-of-core
    layout stores (see :func:`ingest_store`): requests mmap the store
    file instead of parsing the GDSII, and because the files live on
    disk, sessions survive service restarts.
    """
    from repro.service import VerificationService

    return VerificationService(
        jobs=jobs,
        node=node,
        max_depth=max_depth,
        max_sessions=max_sessions,
        store_entries=store_entries,
        session_store_dir=session_store_dir,
    )
