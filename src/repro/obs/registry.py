"""Process-wide metrics registry: counters, gauges, timers, histograms.

The registry is the accounting half of the observability layer (the
tracing half lives in :mod:`repro.obs.trace`).  Design constraints, in
order:

* **Cheap when disabled.**  Every pipeline hot path is instrumented
  unconditionally, so a disabled registry must cost one attribute check
  per event — ``inc``/``gauge``/``observe`` return immediately and
  :meth:`MetricsRegistry.timer` hands back a shared no-op context
  manager.  Nothing is allocated until the registry is enabled.
* **Deterministic under parallelism.**  Worker processes accumulate
  into their own process-global registry; the pool ships each chunk's
  snapshot back with the results and the parent merges them **in
  submission order** (see :meth:`merge`).  Counter merging is integer
  addition and timer merging is (count, total, min, max) — both
  order-independent — so a ``jobs=N`` run reports counter values
  identical to ``jobs=1``.  Only wall-clock *timings* may differ.
* **JSON-able snapshots.**  :meth:`snapshot` returns plain sorted
  dicts, ready for a :class:`~repro.obs.manifest.RunManifest` or a
  benchmark's ``extra_info``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

# Default histogram bucket upper bounds (seconds when timing, but the
# scale is generic): roughly base-sqrt(10) steps from 1 ms to 100 s.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)


@dataclass
class TimerStat:
    """Aggregate of observed durations: count/total/min/max (+ mean)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "TimerStat | dict") -> None:
        if isinstance(other, dict):
            other = TimerStat(
                count=other["count"], total=other["total"],
                min=other["min"], max=other["max"],
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


@dataclass
class Histogram:
    """Fixed-bound bucket counts; the last bucket is the overflow."""

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, counts: list[int]) -> None:
        for i, n in enumerate(counts):
            self.counts[i] += n

    def to_dict(self) -> dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}


class _NullTimer:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Named counters, gauges, timers, and histograms for one process."""

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- lifecycle ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "MetricsRegistry":
        self._enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self._enabled = False
        return self

    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is unchanged)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()

    # -- recording ------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        if not self._enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        if not self._enabled:
            return
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        stat.observe(seconds)

    def observe_hist(
        self, name: str, value: float, bounds: tuple[float, ...] | None = None
    ) -> None:
        if not self._enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds or DEFAULT_BUCKETS)
        hist.observe(value)

    def timer(self, name: str) -> "_Timer | _NullTimer":
        """Context manager timing its body into timer ``name``."""
        if not self._enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def timer_stat(self, name: str) -> TimerStat | None:
        return self._timers.get(name)

    def timer_names(self) -> Iterator[str]:
        return iter(sorted(self._timers))

    def snapshot(self) -> dict[str, Any]:
        """A plain, JSON-able, deterministically ordered copy."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "timers": {k: self._timers[k].to_dict() for k in sorted(self._timers)},
            "histograms": {
                k: self._histograms[k].to_dict() for k in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry.

        Counters and histograms add; timers merge (count, total, min,
        max); gauges are last-write-wins, so callers must merge worker
        snapshots in submission order for gauge determinism.  Merging is
        unconditional — the parent decided to collect the snapshot, so
        it lands even if this registry is currently disabled.
        """
        for name, n in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + n
        self._gauges.update(snapshot.get("gauges", {}))
        for name, stats in snapshot.get("timers", {}).items():
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.merge(stats)
        for name, hist in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram(tuple(hist["bounds"]))
            mine.merge(hist["counts"])


# The process-wide registry every instrumented module records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (disabled until someone enables it)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Mostly for tests that want an isolated registry without mutating
    the shared instance's state.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
