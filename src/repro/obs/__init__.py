"""Observability: metrics, tracing, and run manifests.

The accounting layer under the hit-or-hype question — a DFM step is a
*hit* only if you can measure what it cost and what it caught:

* :class:`MetricsRegistry` (:func:`get_registry`) — process-wide
  counters, gauges, timers (count/total/min/max/mean), and histograms.
  Disabled by default and nearly free while disabled, so every pipeline
  hot path stays instrumented unconditionally.  Pool workers accumulate
  into their own process registry; :class:`repro.parallel.TileExecutor`
  ships each chunk's snapshot back with the results and merges it in
  submission order, so ``jobs=N`` reports counter values identical to
  ``jobs=1``.
* :func:`span` (:func:`get_tracer`) — nested wall-time spans forming a
  trace tree per run; each span also lands in the registry as a timer,
  which is how per-stage timings reach the manifest even without full
  tracing.
* :class:`RunManifest` — one JSON document per run: command, args,
  host, seed, worker count, per-stage timer table, counters, and the
  trace tree.  The CLI writes it via ``--metrics-out FILE``; benches
  feed the same snapshots into ``extra_info``.
"""

from repro.obs import names
from repro.obs.manifest import RunManifest
from repro.obs.process import peak_rss_bytes, sample_peak_rss
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    TimerStat,
    get_registry,
    set_registry,
)
from repro.obs.trace import Span, Tracer, get_tracer, span

__all__ = [
    "names",
    "MetricsRegistry",
    "TimerStat",
    "Histogram",
    "get_registry",
    "set_registry",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "RunManifest",
    "peak_rss_bytes",
    "sample_peak_rss",
]
