"""Nested span tracing: the wall-time tree of a pipeline run.

A :func:`span` wraps one pipeline stage.  Spans nest with the call
stack, so a traced run produces a tree — e.g. ``scorecard`` containing
``technique.model-opc`` containing ``measure.hotspots`` — whose node
durations answer "where did the time go" directly.

Every span also records its duration into the process registry
(:mod:`repro.obs.registry`) under its own name, which is how per-stage
timings reach the :class:`~repro.obs.manifest.RunManifest` even when
full tracing is off.  Inside pool workers only the registry side runs
(the tree lives in the parent); worker stage times are merged back via
the chunk-result snapshots, so the manifest's stage table covers the
whole run regardless of ``jobs``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.registry import MetricsRegistry, get_registry


@dataclass
class Span:
    """One timed stage; ``children`` are the stages it contained."""

    name: str
    seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """(depth, span) pairs in pre-order."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))


class Tracer:
    """Builds the span tree for one process.

    Disabled by default; when disabled, :func:`span` skips tree
    construction entirely (the registry timer may still fire).
    """

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "Tracer":
        self._enabled = True
        return self

    def disable(self) -> "Tracer":
        self._enabled = False
        return self

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()

    def push(self, name: str) -> Span:
        node = Span(name)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        return node

    def pop(self, node: Span, seconds: float) -> None:
        node.seconds = seconds
        # tolerate mismatched exits (a span leaked across an exception)
        while self._stack and self._stack[-1] is not node:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def to_dict(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots]

    def render(self) -> str:
        """The tree as indented text, millisecond durations."""
        lines = ["trace:"]
        for root in self.roots:
            for depth, node in root.walk():
                lines.append(f"{'  ' * (depth + 1)}{node.name:<32} {node.seconds * 1e3:9.2f} ms")
        return "\n".join(lines)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until someone enables it)."""
    return _TRACER


@contextmanager
def span(
    name: str,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Span | None]:
    """Time a pipeline stage into the trace tree and the registry.

    Yields the :class:`Span` node when tracing is enabled, else ``None``.
    With both the registry and tracer disabled this is a few attribute
    checks — safe to leave on hot-but-not-inner-loop paths.
    """
    reg = registry if registry is not None else get_registry()
    tr = tracer if tracer is not None else get_tracer()
    if not (reg.enabled or tr.enabled):
        yield None
        return
    node = tr.push(name) if tr.enabled else None
    t0 = time.perf_counter()
    try:
        yield node
    finally:
        seconds = time.perf_counter() - t0
        if node is not None:
            tr.pop(node, seconds)
        reg.observe(name, seconds)
