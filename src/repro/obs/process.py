"""Whole-process resource accounting.

Peak resident set size is the one number the out-of-core work is
judged by: the mmap-backed store path must hold RSS roughly flat while
the chip area grows, where the in-RAM path grows linearly.  The gauge
is sampled once, just before the run manifest is collected, so every
``--metrics-out`` manifest (and every bench ``extra_info``) carries it.

``ru_maxrss`` is a high-water mark for the whole process lifetime —
comparisons between code paths must run each path in its own process
(the benches and the CI smoke drive the CLI as subprocesses for exactly
this reason).
"""

from __future__ import annotations

import sys

from repro.obs import names
from repro.obs.registry import MetricsRegistry, get_registry


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes.

    Backed by the stdlib ``resource`` module, whose ``ru_maxrss`` unit
    is kilobytes on Linux and bytes on macOS.  Returns ``None`` where
    ``resource`` is unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX only
        return None
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return peak
    return peak * 1024


def sample_peak_rss(registry: MetricsRegistry | None = None) -> int | None:
    """Gauge this process's peak RSS into the registry.

    Returns the sampled value (bytes), or ``None`` — and gauges
    nothing — on platforms without ``resource``.
    """
    peak = peak_rss_bytes()
    if peak is not None:
        (registry or get_registry()).gauge(names.RUN_PEAK_RSS_BYTES, peak)
    return peak
