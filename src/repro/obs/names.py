"""Canonical registry of every metric name the package emits.

A typo'd counter name silently forks a series: ``scan.tiles_computd``
would accumulate next to ``scan.tiles_computed`` and every dashboard,
manifest diff, and CI assertion keyed on the real name would quietly
read zero.  This module is the single source of truth — instrumented
code imports constants (or the helpers for dynamic families) instead of
spelling names inline, and the ``RL003`` lint rule
(:mod:`tools.repro_lint`) rejects string literals at emission sites.

Constants are grouped by subsystem prefix.  The *values* are the wire
format: they appear verbatim in run manifests, ``--metrics-out`` files,
and benchmark ``extra_info`` blocks, so changing a value is a breaking
change for every stored manifest — add a new name instead.

Dynamic families (per-rule DRC task counters, per-verdict scorecard
counters) go through the helper functions at the bottom; their prefixes
are declared in :data:`DYNAMIC_PREFIXES` so tooling can recognize
members of a family.
"""

from __future__ import annotations

# -- tile cache (repro.parallel.cache) --------------------------------
TILECACHE_HITS = "tilecache.hits"
TILECACHE_MISSES = "tilecache.misses"
TILECACHE_VERSION_MISMATCH = "tilecache.version_mismatch"

# -- worker pool (repro.parallel.pool) --------------------------------
POOL_RETRIES = "pool.retries"
POOL_TIMEOUTS = "pool.timeouts"
POOL_BISECTIONS = "pool.bisections"
POOL_QUARANTINED = "pool.quarantined"
POOL_PAYLOAD_BYTES = "pool.payload_bytes"
# Gauged (by repro.parallel.shm) when shared-memory transport is
# unavailable and a run ships its payload pickled instead.
POOL_SHM_FALLBACK = "pool.shm_fallback"
# Incremented when a persistent executor serves a run from its warm
# worker pool instead of forking a fresh one (service mode).
POOL_WARM_REUSE = "pool.warm_reuse"
# Legacy dotless spelling, kept byte-identical: manifests written since
# PR 2 key the serial-fallback gauge on this exact string.
POOL_FALLBACK = "pool_fallback"

# -- verification service (repro.service) -----------------------------
SERVICE_JOBS_SUBMITTED = "service.jobs_submitted"
SERVICE_JOBS_COMPLETED = "service.jobs_completed"
SERVICE_JOBS_FAILED = "service.jobs_failed"
SERVICE_JOBS_CANCELLED = "service.jobs_cancelled"
SERVICE_JOBS_TIMEOUT = "service.jobs_timeout"
SERVICE_SHED = "service.shed"
SERVICE_QUEUE_DEPTH = "service.queue_depth"
SERVICE_WAIT_SECONDS_HIST = "service.wait_seconds"
SERVICE_SERVICE_SECONDS_HIST = "service.service_seconds"
SERVICE_P50_MS = "service.p50_ms"
SERVICE_P99_MS = "service.p99_ms"
SERVICE_SESSIONS_LOADED = "service.sessions_loaded"
SERVICE_SESSIONS_REUSED = "service.sessions_reused"
SERVICE_SESSIONS_RELOADED = "service.sessions_reloaded"
SERVICE_SESSIONS_EVICTED = "service.sessions_evicted"
SERVICE_REQUESTS = "service.requests"
SERVICE_BATCHES = "service.batches"
SERVICE_BATCH_JOBS = "service.batch_jobs"
SERVICE_BATCH_REJECTED = "service.batch_rejected"

# -- cross-run result store (repro.service.store) ---------------------
STORE_HITS = "store.hits"
STORE_MISSES = "store.misses"
STORE_EVICTIONS = "store.evictions"
STORE_VERSION_MISMATCH = "store.version_mismatch"

# -- out-of-core layout store (repro.layout.store) --------------------
LAYOUTSTORE_INGESTS = "layoutstore.ingests"
LAYOUTSTORE_REUSED = "layoutstore.reused"
LAYOUTSTORE_VERSION_MISMATCH = "layoutstore.version_mismatch"
# Counted when a store was requested but could not be built or mapped
# and the caller fell back to the in-RAM parse path.
LAYOUTSTORE_FALLBACK = "layoutstore.fallback"
LAYOUTSTORE_RECTS = "layoutstore.rects"
LAYOUTSTORE_BYTES = "layoutstore.bytes"

# -- whole-process run accounting (repro.obs.process) -----------------
# Peak resident set size of the driving process, sampled once just
# before the run manifest is collected.
RUN_PEAK_RSS_BYTES = "run.peak_rss_bytes"

# -- full-chip litho scan (repro.litho.fullchip) ----------------------
SCAN_RUNS = "scan.runs"
SCAN_TILES = "scan.tiles"
SCAN_TILES_COMPUTED = "scan.tiles_computed"
SCAN_TILES_CACHED = "scan.tiles_cached"
SCAN_TILES_RESUMED = "scan.tiles_resumed"
SCAN_TILES_QUARANTINED = "scan.tiles_quarantined"
SCAN_TILES_SIMULATED = "scan.tiles_simulated"
SCAN_HOTSPOTS = "scan.hotspots"
SCAN_HOTSPOTS_RAW = "scan.hotspots_raw"
SCAN_HOTSPOTS_OWNED = "scan.hotspots_owned"
SCAN_CLIP_CANDIDATES = "scan.clip_candidates"
SCAN_TILE_TIMER = "scan.tile"
SCAN_TILE_SECONDS_HIST = "scan.tile_seconds"

# -- aerial-image simulation (repro.litho.model) ----------------------
SIM_RASTER_REUSE = "sim.raster_reuse"
SIM_BLUR_UNIQUE = "sim.blur_unique"

# -- DRC engine (repro.drc.engine) ------------------------------------
DRC_RUNS = "drc.runs"
DRC_RULES_RUN = "drc.rules_run"
DRC_VIOLATIONS = "drc.violations"
DRC_VIOLATIONS_OWNED = "drc.violations_owned"
DRC_TASK_TIMER = "drc.task"
DRC_TASK_SECONDS_HIST = "drc.task_seconds"
DRC_TILES = "drc.tiles"
DRC_TILES_COMPUTED = "drc.tiles_computed"
DRC_TILES_CACHED = "drc.tiles_cached"
DRC_TILES_RESUMED = "drc.tiles_resumed"
DRC_TILES_QUARANTINED = "drc.tiles_quarantined"

# -- OPC (repro.opc.modelbased) ---------------------------------------
OPC_RUNS = "opc.runs"
OPC_FRAGMENTS = "opc.fragments"
OPC_ITERATIONS = "opc.iterations"
OPC_ITERATION_TIMER = "opc.iteration"
OPC_SIMULATE_TIMER = "opc.simulate"
OPC_FINAL_RMS_EPE_NM = "opc.final_rms_epe_nm"

# -- double patterning (repro.dpt.decompose) --------------------------
DPT_FEATURES = "dpt.features"
DPT_CONFLICT_EDGES = "dpt.conflict_edges"
DPT_CONFLICT_GRAPH_TIMER = "dpt.conflict_graph"
DPT_DECOMPOSE_TIMER = "dpt.decompose"
DPT_ODD_CYCLES = "dpt.odd_cycles"
DPT_CONFLICT_FEATURES = "dpt.conflict_features"

# -- compliance matrix (repro.matrix) ---------------------------------
MATRIX_RUNS = "matrix.runs"
MATRIX_SCENARIOS = "matrix.scenarios"
MATRIX_SCENARIOS_EXECUTED = "matrix.scenarios_executed"
MATRIX_SCENARIOS_CACHED = "matrix.scenarios_cached"
MATRIX_WINDOWS_UNIQUE = "matrix.windows_unique"
MATRIX_FINDINGS = "matrix.findings"

# -- CMP dummy fill (repro.cmp.fill) ----------------------------------
CMP_FILL_TIMER = "cmp.fill"
CMP_FILL_RUNS = "cmp.fill_runs"
CMP_FILL_SHAPES = "cmp.fill_shapes"
CMP_FILL_TILES = "cmp.fill_tiles"

# -- design measurement (repro.core.metrics) --------------------------
MEASURE_RUNS = "measure.runs"
MEASURE_HOTSPOTS = "measure.hotspots"
MEASURE_VIA_SITES = "measure.via_sites"
MEASURE_DESIGN_TIMER = "measure.design"

# -- scorecard (repro.core.scorecard) ---------------------------------
SCORECARD_ROWS = "scorecard.rows"

# Prefixes of the dynamic name families below; tooling uses these to
# recognize family members without enumerating them.
DYNAMIC_PREFIXES: tuple[str, ...] = (
    "drc.tasks.",
    "scorecard.verdict.",
)


def drc_task(tag: str) -> str:
    """Per-task-kind DRC counter (``drc.tasks.tile``, ``drc.tasks.global``)."""
    return f"drc.tasks.{tag}"


def scorecard_verdict(verdict: str) -> str:
    """Per-verdict scorecard counter (``scorecard.verdict.hit``, ...)."""
    return f"scorecard.verdict.{verdict}"


# Every registered static name, for tooling and tests.
ALL_NAMES: frozenset[str] = frozenset(
    value
    for key, value in dict(globals()).items()
    if key.isupper() and isinstance(value, str) and not key.startswith("_")
)
