"""Run manifests: one JSON document per pipeline run.

A :class:`RunManifest` is the durable record of *what a run cost and
what it caught*: the command and arguments, the host and interpreter,
the per-stage timer table, every counter and gauge the run incremented
(tile counts, cache hit/miss, violations, hotspots), and — when tracing
was on — the full span tree.  The CLI writes one wherever
``--metrics-out FILE`` points; CI uploads it as an artifact so stage-
level cost trajectories are comparable across commits.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

SCHEMA = "repro-run-manifest-v1"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of CLI-args values for the manifest."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class RunManifest:
    """Everything worth keeping about one run, JSON-serializable."""

    command: str
    schema: str = SCHEMA
    created_unix: float = 0.0
    node: str = ""
    platform: str = ""
    python: str = ""
    repro_version: str = ""
    argv: list[str] = field(default_factory=list)
    args: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    workers: int | None = None
    elapsed_seconds: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    histograms: dict[str, Any] = field(default_factory=dict)
    trace: list[dict[str, Any]] | None = None

    @classmethod
    def collect(
        cls,
        command: str,
        argv: list[str] | None = None,
        args: dict[str, Any] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        elapsed_seconds: float = 0.0,
        workers: int | None = None,
    ) -> "RunManifest":
        """Snapshot the registry/tracer state into a manifest."""
        args = dict(args or {})
        args.pop("func", None)  # argparse callback, not an input
        seed = args.get("seed")
        manifest = cls(
            command=command,
            created_unix=time.time(),
            node=platform.node(),
            platform=platform.platform(),
            python=sys.version.split()[0],
            argv=list(argv or []),
            args={k: _jsonable(v) for k, v in sorted(args.items())},
            seed=seed if isinstance(seed, int) else None,
            workers=workers,
            elapsed_seconds=elapsed_seconds,
        )
        try:
            from repro import __version__

            manifest.repro_version = __version__
        except ImportError:  # pragma: no cover - partial installs
            manifest.repro_version = "unknown"
        if registry is not None:
            snap = registry.snapshot()
            manifest.counters = snap["counters"]
            manifest.gauges = snap["gauges"]
            manifest.stages = snap["timers"]
            manifest.histograms = snap["histograms"]
        if tracer is not None and tracer.enabled:
            manifest.trace = tracer.to_dict()
        return manifest

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out = {
            "schema": self.schema,
            "command": self.command,
            "created_unix": self.created_unix,
            "node": self.node,
            "platform": self.platform,
            "python": self.python,
            "repro_version": self.repro_version,
            "argv": self.argv,
            "args": self.args,
            "seed": self.seed,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "counters": self.counters,
            "gauges": self.gauges,
            "stages": self.stages,
            "histograms": self.histograms,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        manifest = cls(command=data.get("command", ""))
        for name in (
            "schema", "created_unix", "node", "platform", "python",
            "repro_version", "argv", "args", "seed", "workers",
            "elapsed_seconds", "counters", "gauges", "stages",
            "histograms", "trace",
        ):
            if name in data:
                setattr(manifest, name, data[name])
        return manifest

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def write(self, path: str | os.PathLike) -> None:
        """Write atomically (temp file + rename), creating parent dirs."""
        path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(self.to_json())
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
