"""Pattern matching: find library patterns in a layout (DRC Plus).

A :class:`PatternMatcher` holds a library of topological patterns, each
optionally carrying a dimensional tolerance and a fixing hint.  Scanning a
layout extracts a snippet at every anchor, canonicalizes it, and looks the
category up in the library; a dimensional filter then separates exact hits
from same-topology-different-size near-misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.layout import Cell, Layer
from repro.patterns.topology import TopoPattern, canonical_pattern, pattern_of
from repro.patterns.window import Snippet, extract_snippet


@dataclass(frozen=True, slots=True)
class LibraryPattern:
    """A library entry: the pattern plus match policy and metadata."""

    pattern: TopoPattern
    name: str = ""
    dimension_tolerance: int | None = None  # None: topology-only match
    severity: str = "warning"
    fix_hint: str = ""


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """One occurrence of a library pattern in the scanned layout."""

    library_pattern: LibraryPattern
    anchor: Point
    exact_dimensions: bool

    @property
    def marker(self) -> Rect:
        r = self.library_pattern.pattern.radius
        return Rect(self.anchor.x - r, self.anchor.y - r, self.anchor.x + r, self.anchor.y + r)


class PatternMatcher:
    """A pattern library with a scan method."""

    def __init__(self, radius: int):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = radius
        self._library: dict[tuple, list[LibraryPattern]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- library construction ------------------------------------------------
    def add_pattern(
        self,
        pattern: TopoPattern,
        name: str = "",
        dimension_tolerance: int | None = None,
        severity: str = "warning",
        fix_hint: str = "",
    ) -> LibraryPattern:
        if pattern.radius != self.radius:
            raise ValueError(
                f"pattern radius {pattern.radius} != matcher radius {self.radius}"
            )
        canon = canonical_pattern(pattern)
        entry = LibraryPattern(canon, name or f"pat{self._count}", dimension_tolerance, severity, fix_hint)
        self._library.setdefault(canon.category_key, []).append(entry)
        self._count += 1
        return entry

    def add_snippet(self, snippet: Snippet, **kwargs) -> LibraryPattern:
        return self.add_pattern(pattern_of(snippet), **kwargs)

    # -- scanning ------------------------------------------------------------
    def match_snippet(self, snippet: Snippet) -> list[PatternMatch]:
        probe = canonical_pattern(pattern_of(snippet))
        entries = self._library.get(probe.category_key, ())
        out: list[PatternMatch] = []
        for entry in entries:
            exact = _dims_match(entry, probe)
            if entry.dimension_tolerance is None or exact:
                out.append(PatternMatch(entry, snippet.anchor, exact))
        return out

    def scan(
        self, cell: Cell, layers: list[Layer], anchors: list[Point]
    ) -> list[PatternMatch]:
        """Scan a cell: extract a snippet per anchor and match each."""
        regions = {layer: cell.region(layer) for layer in layers}
        matches: list[PatternMatch] = []
        for anchor in anchors:
            snippet = extract_snippet(regions, anchor, self.radius)
            matches.extend(self.match_snippet(snippet))
        return matches


def _dims_match(entry: LibraryPattern, probe: TopoPattern) -> bool:
    tol = entry.dimension_tolerance
    if tol is None:
        tol = 0
    ref = entry.pattern.dimension_vector()
    got = probe.dimension_vector()
    if len(ref) != len(got):
        return False
    return all(abs(a - b) <= tol for a, b in zip(ref, got))
