"""Snippet extraction: fixed-radius clips of one or more layers around an
anchor point, recentred to the origin so snippets compare directly."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect, Region
from repro.layout import Cell, Layer


@dataclass(frozen=True)
class Snippet:
    """A recentred square clip of layout around an anchor.

    ``regions`` maps each layer to its clipped region translated so the
    anchor sits at the origin; the window spans ``[-radius, +radius]``.
    """

    anchor: Point
    radius: int
    regions: dict[Layer, Region] = field(hash=False)

    @property
    def window(self) -> Rect:
        return Rect(-self.radius, -self.radius, self.radius, self.radius)

    @property
    def layers(self) -> list[Layer]:
        return sorted(self.regions, key=lambda l: (l.gds_layer, l.gds_datatype))

    def total_area(self) -> int:
        return sum(r.area for r in self.regions.values())

    def is_blank(self) -> bool:
        return all(r.is_empty for r in self.regions.values())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Snippet):
            return NotImplemented
        return (
            self.anchor == other.anchor
            and self.radius == other.radius
            and self.regions == other.regions
        )

    def __hash__(self) -> int:
        entries = [
            (layer.gds_layer, layer.gds_datatype, region)
            for layer, region in self.regions.items()
        ]
        entries.sort(key=lambda t: (t[0], t[1]))
        return hash((self.anchor, self.radius, tuple(entries)))


def extract_snippet(
    regions: dict[Layer, Region], anchor: Point, radius: int
) -> Snippet:
    """Clip pre-extracted layer regions around ``anchor``."""
    window = Rect(anchor.x - radius, anchor.y - radius, anchor.x + radius, anchor.y + radius)
    clipped = {
        layer: (region & Region(window)).translated(-anchor.x, -anchor.y)
        for layer, region in regions.items()
    }
    return Snippet(anchor=anchor, radius=radius, regions=clipped)


def extract_snippets(
    cell: Cell, layers: list[Layer], anchors: list[Point], radius: int
) -> list[Snippet]:
    """Extract one snippet per anchor from a cell (flattening once)."""
    regions = {layer: cell.region(layer) for layer in layers}
    return [extract_snippet(regions, a, radius) for a in anchors]


def via_anchors(cell: Cell, via_layer: Layer) -> list[Point]:
    """Anchor points at the centre of every via/cut shape."""
    return [r.center for r in cell.region(via_layer).rects()]


def grid_anchors(extent: Rect, step: int) -> list[Point]:
    """A regular grid of anchors covering ``extent`` (full-chip scans)."""
    if step <= 0:
        raise ValueError("step must be positive")
    out: list[Point] = []
    y = extent.y0 + step // 2
    while y < extent.y1:
        x = extent.x0 + step // 2
        while x < extent.x1:
            out.append(Point(x, y))
            x += step
        y += step
    return out
