"""The pattern database (PDB): catalog persistence and pattern lifecycle.

The production insight behind the PDB papers: a pattern's identity must
*persist* across designs and technology cycles so yield learning (failure
mechanisms, process fixes) attaches to the pattern, not to one chip.
This module serializes catalogs to JSON and tracks categories across
design generations — when a pattern first appeared, whether it recurs,
and when DFM techniques made it disappear ("fixed by design").
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.patterns.catalog import PatternCatalog, PatternEntry
from repro.patterns.topology import TopoPattern


def _pattern_to_dict(pattern: TopoPattern) -> dict:
    return {
        "radius": pattern.radius,
        "layers": [list(l) for l in pattern.layers],
        "bitmaps": [[[int(v) for v in row] for row in bm] for bm in pattern.bitmaps],
        "x_dims": list(pattern.x_dims),
        "y_dims": list(pattern.y_dims),
    }


def _pattern_from_dict(doc: dict) -> TopoPattern:
    return TopoPattern(
        radius=doc["radius"],
        layers=tuple(tuple(l) for l in doc["layers"]),
        bitmaps=tuple(
            tuple(tuple(bool(v) for v in row) for row in bm) for bm in doc["bitmaps"]
        ),
        x_dims=tuple(doc["x_dims"]),
        y_dims=tuple(doc["y_dims"]),
    )


def save_catalog(catalog: PatternCatalog, path: str | os.PathLike) -> None:
    """Serialize a catalog (snippet examples are not persisted)."""
    doc = {
        "name": catalog.name,
        "total": catalog.total,
        "entries": [
            {
                "pattern": _pattern_to_dict(entry.pattern),
                "count": entry.count,
                "tags": sorted(entry.tags),
                "dimension_vectors": [list(v) for v in entry.dimension_vectors],
            }
            for entry in catalog.entries()
        ],
    }
    with open(path, "w") as f:
        json.dump(doc, f)


def load_catalog(path: str | os.PathLike) -> PatternCatalog:
    with open(path) as f:
        doc = json.load(f)
    catalog = PatternCatalog(doc["name"], keep_examples=False)
    for entry_doc in doc["entries"]:
        pattern = _pattern_from_dict(entry_doc["pattern"])
        entry = PatternEntry(pattern=pattern, count=entry_doc["count"])
        entry.tags = set(entry_doc["tags"])
        entry.dimension_vectors = [tuple(v) for v in entry_doc["dimension_vectors"]]
        catalog._entries[pattern.category_key] = entry
        catalog.total += entry.count
    return catalog


@dataclass
class PatternLifecycle:
    """Where one category stands across the tracked generations."""

    category_id: int
    first_seen: str
    last_seen: str
    generations: list[str]
    counts: list[int]
    tags: set[str] = field(default_factory=set)

    @property
    def status(self) -> str:
        """'active' if present in the newest generation, else 'retired'
        (fixed in process or designed out)."""
        return "active" if self.last_seen == self.generations[-1] else "retired"


class PatternDatabase:
    """Catalogs across design generations with lifecycle analysis."""

    def __init__(self, name: str = "pdb"):
        self.name = name
        self._generations: list[tuple[str, PatternCatalog]] = []

    def add_generation(self, label: str, catalog: PatternCatalog) -> None:
        if any(l == label for l, _ in self._generations):
            raise ValueError(f"generation {label!r} already recorded")
        self._generations.append((label, catalog))

    @property
    def generations(self) -> list[str]:
        return [label for label, _ in self._generations]

    def lifecycles(self) -> list[PatternLifecycle]:
        """One lifecycle record per category ever seen."""
        if not self._generations:
            return []
        order = self.generations
        seen: dict[tuple, PatternLifecycle] = {}
        for label, catalog in self._generations:
            for entry in catalog.entries():
                key = entry.pattern.category_key
                record = seen.get(key)
                if record is None:
                    record = PatternLifecycle(
                        category_id=entry.category_id,
                        first_seen=label,
                        last_seen=label,
                        generations=order,
                        counts=[],
                        tags=set(entry.tags),
                    )
                    seen[key] = record
                record.last_seen = label
                record.tags |= entry.tags
        # fill per-generation counts
        for key, record in seen.items():
            record.counts = [
                cat._entries[key].count if key in cat._entries else 0
                for _, cat in self._generations
            ]
        return sorted(seen.values(), key=lambda r: -max(r.counts))

    def new_in(self, label: str) -> list[PatternLifecycle]:
        return [r for r in self.lifecycles() if r.first_seen == label]

    def retired_by(self, label: str) -> list[PatternLifecycle]:
        """Categories present in earlier generations but absent from
        ``label`` onward — the 'fixed by design or process' population."""
        order = self.generations
        idx = order.index(label)
        out = []
        for record in self.lifecycles():
            last_idx = order.index(record.last_seen)
            if last_idx < idx:
                out.append(record)
        return out

    def summary(self) -> str:
        records = self.lifecycles()
        active = sum(1 for r in records if r.status == "active")
        return (
            f"PDB {self.name!r}: {len(self.generations)} generations, "
            f"{len(records)} categories ({active} active, "
            f"{len(records) - active} retired)"
        )
