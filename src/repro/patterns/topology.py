"""Topological pattern signatures.

A *topological pattern* captures the placement and alignment of polygon
edges while abstracting exact dimensions (the representation from the
"Systematic physical verification with topological patterns" line of
work).  The snippet's cut-lines — the sorted distinct x and y coordinates
of rectangle edges across *all* layers, plus the window border — define a
grid; each layer contributes an occupancy bitmap over that shared grid,
and the cut spacings form the *dimension vector*.  Sharing cut-lines
across layers is what preserves inter-layer alignment (a via flush with a
metal line-end is a different topology than a via strictly inside).

Two snippets with identical bitmaps are the same topological *category*;
their dimension vectors may differ.  Patterns are canonicalized under the
8 square symmetries so a rotated or mirrored occurrence maps to the same
category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns.window import Snippet

Bitmap = tuple[tuple[bool, ...], ...]  # rows indexed by y (bottom first)


@dataclass(frozen=True, slots=True)
class TopoPattern:
    """A multi-layer topological pattern over a shared cut-line grid."""

    radius: int
    layers: tuple[tuple[int, int], ...]  # (gds_layer, datatype) per entry
    bitmaps: tuple[Bitmap, ...]          # one per layer, same grid shape
    x_dims: tuple[int, ...]              # widths of grid columns
    y_dims: tuple[int, ...]              # heights of grid rows

    @property
    def category_key(self) -> tuple:
        """Hashable key identifying the topological *category* (bitmaps
        only, dimensions abstracted)."""
        return (self.radius, self.layers, self.bitmaps)

    @property
    def grid_shape(self) -> tuple[int, int]:
        """(columns, rows) of the cut-line grid."""
        return (len(self.x_dims), len(self.y_dims))

    @property
    def complexity(self) -> int:
        """Total occupied grid cells across layers — how intricate the
        pattern is."""
        return sum(sum(1 for row in bm for v in row if v) for bm in self.bitmaps)

    def dimension_vector(self) -> tuple[int, ...]:
        """x spacings then y spacings (the constraint vector)."""
        return self.x_dims + self.y_dims

    def __repr__(self) -> str:
        nx, ny = self.grid_shape
        return (
            f"TopoPattern(r={self.radius}, layers={len(self.layers)}, "
            f"grid={nx}x{ny}, complexity={self.complexity})"
        )


def pattern_of(snippet: Snippet) -> TopoPattern:
    """The (un-canonicalized) topological pattern of a snippet."""
    r = snippet.radius
    layers = snippet.layers
    all_rects = {layer: list(snippet.regions[layer].rects()) for layer in layers}
    xs = sorted({-r, r} | {v for rects in all_rects.values() for rect in rects for v in (rect.x0, rect.x1)})
    ys = sorted({-r, r} | {v for rects in all_rects.values() for rect in rects for v in (rect.y0, rect.y1)})
    x_index = {x: i for i, x in enumerate(xs)}
    y_index = {y: j for j, y in enumerate(ys)}
    nx, ny = len(xs) - 1, len(ys) - 1
    bitmaps: list[Bitmap] = []
    for layer in layers:
        grid = [[False] * nx for _ in range(ny)]
        for rect in all_rects[layer]:
            for j in range(y_index[rect.y0], y_index[rect.y1]):
                row = grid[j]
                for i in range(x_index[rect.x0], x_index[rect.x1]):
                    row[i] = True
        bitmaps.append(tuple(tuple(row) for row in grid))
    return TopoPattern(
        radius=r,
        layers=tuple((l.gds_layer, l.gds_datatype) for l in layers),
        bitmaps=tuple(bitmaps),
        x_dims=tuple(b - a for a, b in zip(xs, xs[1:])),
        y_dims=tuple(b - a for a, b in zip(ys, ys[1:])),
    )


def _transpose(bm: Bitmap) -> Bitmap:
    return tuple(zip(*bm)) if bm else bm


def _flip_rows(bm: Bitmap) -> Bitmap:
    return tuple(reversed(bm))


def _flip_cols(bm: Bitmap) -> Bitmap:
    return tuple(tuple(reversed(row)) for row in bm)


def _grid_variants(x_dims, y_dims):
    """The 8 square-symmetry images of the grid, as functions on bitmaps.

    Yields (x_dims', y_dims', bitmap_transform).
    """
    def rev(t):
        return tuple(reversed(t))

    yield (x_dims, y_dims, lambda bm: bm)                                    # R0
    yield (rev(x_dims), y_dims, _flip_cols)                                  # MX180 (x -> -x)
    yield (x_dims, rev(y_dims), _flip_rows)                                  # MX (y -> -y)
    yield (rev(x_dims), rev(y_dims), lambda bm: _flip_cols(_flip_rows(bm)))  # R180
    yield (y_dims, x_dims, _transpose)                                       # MX90 (swap axes)
    yield (rev(y_dims), x_dims, lambda bm: _flip_cols(_transpose(bm)))       # R90
    yield (y_dims, rev(x_dims), lambda bm: _flip_rows(_transpose(bm)))       # R270
    yield (rev(y_dims), rev(x_dims), lambda bm: _flip_cols(_flip_rows(_transpose(bm))))


def canonical_pattern(pattern: TopoPattern) -> TopoPattern:
    """Canonicalize under the 8 square symmetries (all layers transform
    together); keeps the lexicographically smallest stack."""
    best = None
    for xd, yd, f in _grid_variants(pattern.x_dims, pattern.y_dims):
        bitmaps = tuple(f(bm) for bm in pattern.bitmaps)
        key = (bitmaps, xd, yd)
        if best is None or key < best:
            best = key
    bitmaps, xd, yd = best
    return TopoPattern(
        radius=pattern.radius,
        layers=pattern.layers,
        bitmaps=bitmaps,
        x_dims=xd,
        y_dims=yd,
    )
