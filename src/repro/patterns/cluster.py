"""Hotspot snippet clustering.

Implements the two algorithms from the hotspot-classification work:

* *incremental clustering* — single pass, assign each snippet to the first
  cluster whose representative is similar enough, else open a new cluster.
  O(n * k); the production choice for very large hotspot sets.
* *hierarchical (agglomerative) clustering* — repeatedly merge the most
  similar cluster pair until no pair exceeds the threshold.  Higher
  quality, O(n^2 log n); for moderate sets.

Similarity between snippets is the area-weighted Jaccard overlap of their
recentred regions across layers (1.0 = identical geometry).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.patterns.window import Snippet


def snippet_similarity(a: Snippet, b: Snippet) -> float:
    """Area Jaccard across the union of layers, in [0, 1]."""
    layers = set(a.regions) | set(b.regions)
    inter = 0
    union = 0
    for layer in layers:
        ra = a.regions.get(layer)
        rb = b.regions.get(layer)
        if ra is None or ra.is_empty:
            union += rb.area if rb is not None else 0
            continue
        if rb is None or rb.is_empty:
            union += ra.area
            continue
        inter += (ra & rb).area
        union += (ra | rb).area
    if union == 0:
        return 1.0  # two blank snippets are identical
    return inter / union


@dataclass
class SnippetCluster:
    """A group of similar snippets with a representative."""

    representative: Snippet
    members: list[Snippet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)

    def add(self, snippet: Snippet) -> None:
        self.members.append(snippet)

    def cohesion(self) -> float:
        """Mean similarity of members to the representative."""
        if not self.members:
            return 1.0
        return sum(snippet_similarity(self.representative, m) for m in self.members) / len(self.members)


def cluster_snippets(
    snippets: list[Snippet],
    threshold: float = 0.7,
    method: str = "incremental",
) -> list[SnippetCluster]:
    """Cluster snippets at a similarity threshold.

    ``method`` is ``"incremental"`` or ``"hierarchical"``.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if method == "incremental":
        return _incremental(snippets, threshold)
    if method == "hierarchical":
        return _hierarchical(snippets, threshold)
    raise ValueError(f"unknown method {method!r}")


def _incremental(snippets: list[Snippet], threshold: float) -> list[SnippetCluster]:
    clusters: list[SnippetCluster] = []
    for snippet in snippets:
        best = None
        best_sim = threshold
        for cluster in clusters:
            sim = snippet_similarity(cluster.representative, snippet)
            if sim >= best_sim:
                best, best_sim = cluster, sim
        if best is None:
            clusters.append(SnippetCluster(representative=snippet, members=[snippet]))
        else:
            best.add(snippet)
    return clusters


def _hierarchical(snippets: list[Snippet], threshold: float) -> list[SnippetCluster]:
    groups: list[list[Snippet]] = [[s] for s in snippets]
    if not groups:
        return []
    # complete-linkage agglomeration on a cached pairwise matrix
    sims: dict[tuple[int, int], float] = {}
    for i in range(len(snippets)):
        for j in range(i + 1, len(snippets)):
            sims[(i, j)] = snippet_similarity(snippets[i], snippets[j])

    def pair_sim(ga: list[int], gb: list[int]) -> float:
        return min(sims[(min(x, y), max(x, y))] for x in ga for y in gb)

    index_groups: list[list[int]] = [[i] for i in range(len(snippets))]
    merged = True
    while merged and len(index_groups) > 1:
        merged = False
        best_pair = None
        best_sim = threshold
        for a in range(len(index_groups)):
            for b in range(a + 1, len(index_groups)):
                s = pair_sim(index_groups[a], index_groups[b])
                if s >= best_sim:
                    best_pair, best_sim = (a, b), s
        if best_pair is not None:
            a, b = best_pair
            index_groups[a].extend(index_groups[b])
            del index_groups[b]
            merged = True
    clusters = []
    for group in index_groups:
        members = [snippets[i] for i in group]
        rep = _medoid(members)
        clusters.append(SnippetCluster(representative=rep, members=members))
    return clusters


def _medoid(members: list[Snippet]) -> Snippet:
    """The member most similar to all others."""
    if len(members) == 1:
        return members[0]
    best = members[0]
    best_score = -1.0
    for cand in members:
        score = sum(snippet_similarity(cand, m) for m in members)
        if score > best_score:
            best, best_score = cand, score
    return best
