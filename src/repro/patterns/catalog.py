"""Layout Pattern Catalogs: classification, frequency analysis, coverage
curves, and KL-divergence comparison between designs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.layout import Cell, Layer
from repro.patterns.topology import TopoPattern, canonical_pattern, pattern_of
from repro.patterns.window import Snippet, extract_snippets, via_anchors


@dataclass
class PatternEntry:
    """One topological category in the catalog."""

    pattern: TopoPattern
    count: int = 0
    example: Snippet | None = None
    dimension_vectors: list[tuple[int, ...]] = field(default_factory=list)
    tags: set[str] = field(default_factory=set)

    @property
    def category_id(self) -> int:
        return hash(self.pattern.category_key) & 0x7FFFFFFF


class PatternCatalog:
    """A catalog of topological pattern categories with frequencies.

    The central DFM dataset: every distinct local configuration that
    appears in a design, with how often it appears.  Categories may be
    tagged (e.g. ``"hotspot"``, ``"fixed-in-process"``) to carry yield
    learning from design to design.
    """

    def __init__(self, name: str = "catalog", keep_examples: bool = True, max_dim_vectors: int = 64):
        self.name = name
        self.keep_examples = keep_examples
        self.max_dim_vectors = max_dim_vectors
        self._entries: dict[tuple, PatternEntry] = {}
        self.total = 0

    # -- building -----------------------------------------------------------
    def add_snippet(self, snippet: Snippet) -> PatternEntry:
        pattern = canonical_pattern(pattern_of(snippet))
        return self.add_pattern(pattern, snippet)

    def add_pattern(self, pattern: TopoPattern, snippet: Snippet | None = None) -> PatternEntry:
        key = pattern.category_key
        entry = self._entries.get(key)
        if entry is None:
            entry = PatternEntry(pattern=pattern)
            self._entries[key] = entry
        entry.count += 1
        if len(entry.dimension_vectors) < self.max_dim_vectors:
            entry.dimension_vectors.append(pattern.dimension_vector())
        if snippet is not None and self.keep_examples and entry.example is None:
            entry.example = snippet
        self.total += 1
        return entry

    def merge(self, other: "PatternCatalog") -> None:
        for key, entry in other._entries.items():
            mine = self._entries.get(key)
            if mine is None:
                mine = PatternEntry(pattern=entry.pattern, example=entry.example)
                self._entries[key] = mine
            mine.count += entry.count
            mine.tags |= entry.tags
            room = self.max_dim_vectors - len(mine.dimension_vectors)
            if room > 0:
                mine.dimension_vectors.extend(entry.dimension_vectors[:room])
        self.total += other.total

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[PatternEntry]:
        """Entries sorted by descending frequency (stable by key)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.count, repr(e.pattern.category_key)),
        )

    def get(self, pattern: TopoPattern) -> PatternEntry | None:
        return self._entries.get(pattern.category_key)

    def __contains__(self, pattern: TopoPattern) -> bool:
        return pattern.category_key in self._entries

    def frequencies(self) -> list[int]:
        return [e.count for e in self.entries()]

    def coverage(self, top_k: int) -> float:
        """Fraction of all instances covered by the ``top_k`` most
        frequent categories."""
        if self.total == 0:
            return 1.0
        freqs = self.frequencies()
        return sum(freqs[:top_k]) / self.total

    def categories_for_coverage(self, target: float) -> int:
        """Smallest number of categories covering ``target`` of instances."""
        if self.total == 0:
            return 0
        acc = 0
        for k, count in enumerate(self.frequencies(), start=1):
            acc += count
            if acc / self.total >= target:
                return k
        return len(self._entries)

    def tagged(self, tag: str) -> list[PatternEntry]:
        return [e for e in self.entries() if tag in e.tags]

    def summary(self, top: int = 10) -> str:
        lines = [
            f"PatternCatalog {self.name!r}: {len(self)} categories, "
            f"{self.total} instances, top-10 coverage {self.coverage(10):.1%}"
        ]
        for rank, e in enumerate(self.entries()[:top], start=1):
            share = e.count / self.total if self.total else 0.0
            lines.append(
                f"  #{rank:<3} id={e.category_id:<10} n={e.count:<8} "
                f"({share:6.2%}) complexity={e.pattern.complexity}"
            )
        return "\n".join(lines)


def kl_divergence(p: PatternCatalog, q: PatternCatalog, smoothing: float = 0.5) -> float:
    """KL(P || Q) over the union of categories with additive smoothing.

    Used to compare the pattern-usage distribution of two designs: ~0 for
    same-style designs, growing with style divergence.  Smoothing keeps
    the divergence finite when a category appears in only one design.
    """
    keys = set(p._entries) | set(q._entries)
    if not keys:
        return 0.0
    p_total = p.total + smoothing * len(keys)
    q_total = q.total + smoothing * len(keys)
    div = 0.0
    for key in keys:
        pp = ((p._entries[key].count if key in p._entries else 0) + smoothing) / p_total
        qq = ((q._entries[key].count if key in q._entries else 0) + smoothing) / q_total
        div += pp * math.log(pp / qq)
    return div


def extract_patterns(
    cell: Cell,
    layers: list[Layer],
    anchors: list,
    radius: int,
    name: str | None = None,
) -> PatternCatalog:
    """One-call catalog construction from a cell."""
    catalog = PatternCatalog(name or f"{cell.name}:r{radius}")
    for snippet in extract_snippets(cell, layers, anchors, radius):
        catalog.add_snippet(snippet)
    return catalog


def via_enclosure_catalog(
    cell: Cell, via_layer: Layer, metal_layer: Layer, radius: int | None = None
) -> PatternCatalog:
    """The via-enclosure catalog: categorize how every via is enclosed by
    the metal above it (the 28 nm study's headline analysis)."""
    anchors = via_anchors(cell, via_layer)
    r = radius if radius is not None else 200
    return extract_patterns(
        cell, [via_layer, metal_layer], anchors, r, name=f"{cell.name}:via-enc"
    )
