"""Layout pattern extraction, classification, catalogs, clustering, and
matching — the DRC-Plus / pattern-catalog machinery.

The pipeline:

1. :mod:`window` clips fixed-radius snippets around anchor points.
2. :mod:`topology` reduces a snippet to a *topological pattern*: a
   occupancy bitmap over the snippet's cut-lines plus the dimension
   vectors between cuts.  Patterns with the same bitmap are the same
   *category*; dimensions distinguish members within a category.
3. :mod:`catalog` aggregates patterns into a Layout Pattern Catalog with
   frequencies, coverage curves, and KL-divergence comparisons.
4. :mod:`cluster` groups geometrically similar snippets (hotspot
   classification).
5. :mod:`matcher` finds library patterns inside new layouts (DRC Plus).
"""

from repro.patterns.window import Snippet, extract_snippet, extract_snippets, via_anchors, grid_anchors
from repro.patterns.topology import TopoPattern, pattern_of, canonical_pattern
from repro.patterns.catalog import (
    PatternCatalog,
    PatternEntry,
    kl_divergence,
    extract_patterns,
    via_enclosure_catalog,
)
from repro.patterns.cluster import cluster_snippets, SnippetCluster, snippet_similarity
from repro.patterns.matcher import PatternMatcher, PatternMatch
from repro.patterns.pdb import (
    PatternDatabase,
    PatternLifecycle,
    load_catalog,
    save_catalog,
)

__all__ = [
    "Snippet",
    "extract_snippet",
    "extract_snippets",
    "via_anchors",
    "grid_anchors",
    "TopoPattern",
    "pattern_of",
    "canonical_pattern",
    "PatternCatalog",
    "PatternEntry",
    "kl_divergence",
    "extract_patterns",
    "via_enclosure_catalog",
    "cluster_snippets",
    "SnippetCluster",
    "snippet_similarity",
    "PatternMatcher",
    "PatternMatch",
    "PatternDatabase",
    "PatternLifecycle",
    "load_catalog",
    "save_catalog",
]
