"""Double-patterning technology (DPT): layout decomposition onto two
exposure masks, stitch insertion, and compliance scoring."""

from repro.dpt.decompose import (
    ConflictGraph,
    DecompositionResult,
    build_conflict_graph,
    decompose_dpt,
)
from repro.dpt.stitch import Stitch, decompose_with_stitches
from repro.dpt.score import DptScore, score_decomposition
from repro.dpt.psm import PhaseAssignment, assign_phases, critical_gates

__all__ = [
    "ConflictGraph",
    "DecompositionResult",
    "build_conflict_graph",
    "decompose_dpt",
    "Stitch",
    "decompose_with_stitches",
    "DptScore",
    "score_decomposition",
    "PhaseAssignment",
    "assign_phases",
    "critical_gates",
]
