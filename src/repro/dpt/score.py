"""DPT-compliance scoring.

The 2012 scoring methodology abstracts decomposition quality to [0, 1]
metrics so layouts can be compared and optimized before tape-out:

* ``balance``  — density balance between the two exposures (equal mask
  loading images best).
* ``stitch_score`` — few stitches per feature.
* ``overlay_score`` — stitch overlaps large enough to tolerate mask
  misalignment.
* ``conflict_score`` — fraction of features free of odd-cycle conflicts.

The composite is the weighted mean; the paper's example improves a layout
from 0.66 to 0.78 by rebalancing masks — the bench reproduces that kind of
delta.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dpt.decompose import DecompositionResult
from repro.dpt.stitch import Stitch


@dataclass(frozen=True, slots=True)
class DptScore:
    balance: float
    stitch_score: float
    overlay_score: float
    conflict_score: float

    @property
    def composite(self) -> float:
        return (
            0.3 * self.balance
            + 0.2 * self.stitch_score
            + 0.2 * self.overlay_score
            + 0.3 * self.conflict_score
        )

    def summary(self) -> str:
        return (
            f"DPT score {self.composite:.2f} "
            f"(balance {self.balance:.2f}, stitches {self.stitch_score:.2f}, "
            f"overlay {self.overlay_score:.2f}, conflicts {self.conflict_score:.2f})"
        )


def score_decomposition(
    result: DecompositionResult,
    stitches: list[Stitch] | None = None,
    min_overlap_area: int = 400,
) -> DptScore:
    """Score a decomposition (with optional stitch list)."""
    stitches = stitches or []
    area_a = result.mask_a.area
    area_b = result.mask_b.area
    total = area_a + area_b
    balance = 1.0 - abs(area_a - area_b) / total if total else 1.0

    n_features = max(len(result.features), 1)
    stitch_score = max(0.0, 1.0 - len(stitches) / n_features)

    if stitches:
        good = sum(1 for s in stitches if s.overlap_area >= min_overlap_area)
        overlay_score = good / len(stitches)
    else:
        overlay_score = 1.0

    conflict_score = 1.0 - len(result.conflict_features) / n_features
    return DptScore(balance, stitch_score, overlay_score, conflict_score)
