"""Stitch insertion: splitting features to break odd cycles.

When a feature participates in an odd cycle, cutting it in two lets the
halves take different colors; the cut becomes a *stitch* where the two
exposures must overlap.  Stitches cost overlay sensitivity, so good flows
minimize them and standardize their geometry (the 20 nm stitch-library
paper) — the scorer in :mod:`repro.dpt.score` measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect, Region
from repro.dpt.decompose import DecompositionResult, decompose_dpt


@dataclass(frozen=True, slots=True)
class Stitch:
    """One stitch: the overlap box where both masks print the feature."""

    feature_index: int
    overlap: Rect
    horizontal_cut: bool

    @property
    def overlap_area(self) -> int:
        return self.overlap.area


def decompose_with_stitches(
    region: Region,
    same_mask_space: int,
    stitch_overlap: int = 20,
    max_rounds: int = 4,
) -> tuple[DecompositionResult, list[Stitch]]:
    """Decompose with stitch insertion on conflicted components.

    Each round splits, in every odd cycle, the feature with the highest
    conflict degree at the midpoint of its longest extent; the two halves
    overlap by ``stitch_overlap``.  Rounds repeat until the graph is
    bipartite or ``max_rounds`` is exhausted (some conflicts — e.g. a
    triangle of minimum-size squares — are genuinely unfixable).
    """
    stitches: list[Stitch] = []
    working = region
    split_boxes: list[tuple[Rect, bool, int]] = []  # (overlap, horizontal, orig index)
    for _ in range(max_rounds):
        result = decompose_dpt(working, same_mask_space)
        if result.ok:
            break
        new_cuts: list[tuple[Region, Rect, bool]] = []
        handled: set[int] = set()
        for cycle in result.conflict_cycles:
            cut_found = None
            # pick the cycle member whose two cycle-neighbours project
            # farthest apart along its long axis: cutting between their
            # attachment points moves them onto different halves, which
            # flips the cycle parity
            order = sorted(
                range(len(cycle)),
                key=lambda k: -_neighbor_gap(result.features, cycle, k),
            )
            for k in order:
                victim = cycle[k]
                if victim in handled:
                    continue
                prev_f = result.features[cycle[k - 1]]
                next_f = result.features[cycle[(k + 1) % len(cycle)]]
                cut = _cut_feature(
                    result.features[victim], stitch_overlap, prev_f, next_f,
                    same_mask_space,
                )
                if cut is not None:
                    cut_found = (result.features[victim],) + cut
                    handled.add(victim)
                    break
            if cut_found is not None:
                feature, overlap, horizontal = cut_found
                new_cuts.append((feature, overlap, horizontal))
        if not new_cuts:
            break
        for feature, overlap, horizontal in new_cuts:
            split_boxes.append((overlap, horizontal, -1))
            working = _apply_cut(working, feature, overlap, horizontal)
    result = decompose_dpt(working, same_mask_space)
    # reconstruct stitch records against the final feature list
    for overlap, horizontal, _ in split_boxes:
        idx = next(
            (i for i, f in enumerate(result.features) if f.overlaps(Region(overlap))),
            -1,
        )
        stitches.append(Stitch(idx, overlap, horizontal))
    # the overlap belongs on BOTH masks
    for stitch in stitches:
        patch = region & Region(stitch.overlap)
        result.mask_a = result.mask_a | patch
        result.mask_b = result.mask_b | patch
    return result, stitches


def _neighbor_gap(features: list[Region], cycle: list[int], k: int) -> int:
    """How far apart (along the victim's long axis) the two cycle
    neighbours of cycle[k] attach — the cut budget."""
    victim = features[cycle[k]].bbox
    prev_c = features[cycle[k - 1]].bbox.center
    next_c = features[cycle[(k + 1) % len(cycle)]].bbox.center
    if victim.width >= victim.height:
        return abs(prev_c.x - next_c.x)
    return abs(prev_c.y - next_c.y)


def _region_distance(a: Region, b: Region) -> int:
    best = None
    for ra in a.rects():
        for rb in b.rects():
            d = ra.distance(rb)
            if best is None or d < best:
                best = d
                if best == 0:
                    return 0
    return best if best is not None else 1 << 40


def _cut_feature(
    feature: Region,
    stitch_overlap: int,
    prev_f: Region,
    next_f: Region,
    same_mask_space: int,
):
    """Split a feature so its two cycle neighbours land on opposite
    halves *with legal same-mask spacing to the far half*.

    Scans candidate cut positions along the long axis; a position is valid
    when one neighbour clears the right half and the other clears the left
    half by the same-mask spacing.  Returns (overlap_box, horizontal_cut)
    or None when no such position exists (genuinely unfixable conflict).
    """
    bb = feature.bbox
    if bb is None:
        return None
    horizontal = bb.width >= bb.height  # cut across the long axis
    span = bb.width if horizontal else bb.height
    if span < 3 * stitch_overlap:
        return None
    margin = max(stitch_overlap, 2)
    lo = (bb.x0 if horizontal else bb.y0) + margin
    hi = (bb.x1 if horizontal else bb.y1) - margin
    step = max(stitch_overlap // 2, 5)
    for c in range(lo, hi + 1, step):
        if horizontal:
            left = feature & Region(Rect(bb.x0, bb.y0, c + stitch_overlap // 2, bb.y1))
            right = feature & Region(Rect(c - stitch_overlap // 2, bb.y0, bb.x1, bb.y1))
        else:
            left = feature & Region(Rect(bb.x0, bb.y0, bb.x1, c + stitch_overlap // 2))
            right = feature & Region(Rect(bb.x0, c - stitch_overlap // 2, bb.x1, bb.y1))
        if left.is_empty or right.is_empty:
            continue
        ok_forward = (
            _region_distance(prev_f, right) >= same_mask_space
            and _region_distance(next_f, left) >= same_mask_space
        )
        ok_backward = (
            _region_distance(prev_f, left) >= same_mask_space
            and _region_distance(next_f, right) >= same_mask_space
        )
        if ok_forward or ok_backward:
            overlap_region = left & right
            if not overlap_region.is_empty:
                return overlap_region.bbox, horizontal
    return None


def _apply_cut(working: Region, feature: Region, overlap: Rect, horizontal: bool) -> Region:
    """Separate the two halves in the working layout by removing a
    1-nm-wide slit at the centre of the overlap (so the conflict graph
    sees two features); the slit is healed when the overlap patch is added
    back to both masks."""
    if horizontal:
        mid = (overlap.x0 + overlap.x1) // 2
        slit = Rect(mid, overlap.y0, mid + 1, overlap.y1)
    else:
        mid = (overlap.y0 + overlap.y1) // 2
        slit = Rect(overlap.x0, mid, overlap.x1, mid + 1)
    return working - (Region(slit) & feature)
