"""DPT conflict graphs and two-coloring.

Features closer than the same-mask spacing limit cannot share an exposure;
they become adjacent in the *conflict graph*.  A layout is decomposable
exactly when that graph is bipartite; odd cycles are coloring conflicts
(the "non-decomposition-friendly designs" the pattern-matching paper
hunts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import networkx as nx

from repro.core.report import BaseReport, deprecated_alias
from repro.geometry import GridIndex, Rect, Region
from repro.obs import get_registry, names


@dataclass
class ConflictGraph:
    """Features plus their conflict edges."""

    features: list[Region]
    graph: nx.Graph

    @property
    def num_conflict_edges(self) -> int:
        return self.graph.number_of_edges()

    def odd_cycles(self) -> list[list[int]]:
        """One witness odd cycle per non-bipartite component."""
        out: list[list[int]] = []
        for nodes in nx.connected_components(self.graph):
            sub = self.graph.subgraph(nodes)
            if not nx.is_bipartite(sub):
                out.append(_find_odd_cycle(sub))
        return out


def _find_odd_cycle(graph: nx.Graph) -> list[int]:
    """A witness odd cycle in a non-bipartite graph via BFS layering."""
    start = next(iter(graph.nodes))
    level = {start: 0}
    parent = {start: None}
    queue = [start]
    while queue:
        u = queue.pop(0)
        for v in graph.neighbors(u):
            if v not in level:
                level[v] = level[u] + 1
                parent[v] = u
                queue.append(v)
            elif level[v] == level[u] and v != parent[u]:
                # same-level edge closes an odd cycle through the BFS tree
                pu, pv = u, v
                path_u, path_v = [u], [v]
                while pu != pv:
                    if level[pu] >= level[pv]:
                        pu = parent[pu]
                        path_u.append(pu)
                    else:
                        pv = parent[pv]
                        path_v.append(pv)
                return path_u[:-1] + list(reversed(path_v))
    return []  # pragma: no cover - caller guarantees non-bipartite


@dataclass
class DecompositionResult(BaseReport):
    """Outcome of a two-coloring attempt.

    Implements the :class:`~repro.core.report.BaseReport` contract: the
    findings are the conflicting feature indices, so ``result.ok`` is
    True exactly when the layout two-colors cleanly.
    """

    mask_a: Region
    mask_b: Region
    coloring: dict[int, int]
    features: list[Region]
    conflict_features: set[int] = field(default_factory=set)
    conflict_cycles: list[list[int]] = field(default_factory=list)

    # legacy spelling (pre-BaseReport), kept as a warning alias
    is_clean = deprecated_alias("is_clean", "ok")

    @property
    def findings(self) -> tuple[int, ...]:
        """Indices of features caught in an odd cycle, ascending."""
        return tuple(sorted(self.conflict_features))

    @property
    def num_conflicts(self) -> int:
        return len(self.conflict_cycles)

    def summary(self) -> str:
        return (
            f"DPT: {len(self.features)} features -> "
            f"A:{len([c for c in self.coloring.values() if c == 0])} "
            f"B:{len([c for c in self.coloring.values() if c == 1])}, "
            f"{self.num_conflicts} odd-cycle conflicts "
            f"({len(self.conflict_features)} features affected)"
        )


def build_conflict_graph(region: Region, same_mask_space: int) -> ConflictGraph:
    """Conflict graph of a layer at a same-mask spacing limit.

    Features are connected components; an edge joins two features whose
    Chebyshev separation is below ``same_mask_space``.
    """
    registry = get_registry()
    with registry.timer(names.DPT_CONFLICT_GRAPH_TIMER):
        features = region.components()
        graph = nx.Graph()
        graph.add_nodes_from(range(len(features)))
        index: GridIndex[int] = GridIndex(cell_size=max(4 * same_mask_space, 512))
        boxes: list[list[Rect]] = []
        for i, feat in enumerate(features):
            rects = list(feat.rects())
            boxes.append(rects)
            bb = feat.bbox
            index.insert(bb, i)
        for i, j in index.query_pairs(same_mask_space):
            if graph.has_edge(i, j):
                continue
            if _feature_distance(boxes[i], boxes[j], same_mask_space) < same_mask_space:
                graph.add_edge(i, j)
    registry.inc(names.DPT_FEATURES, len(features))
    registry.inc(names.DPT_CONFLICT_EDGES, graph.number_of_edges())
    return ConflictGraph(features, graph)


def _feature_distance(a: list[Rect], b: list[Rect], limit: int) -> int:
    best = limit
    for ra in a:
        for rb in b:
            d = ra.distance(rb)
            if d < best:
                best = d
                if best == 0:
                    return 0
    return best


def decompose_dpt(region: Region, same_mask_space: int) -> DecompositionResult:
    """Two-color a layer; conflicted components go (arbitrarily but
    deterministically) to alternating masks with their cycles reported."""
    registry = get_registry()
    t0 = time.perf_counter()
    cg = build_conflict_graph(region, same_mask_space)
    coloring: dict[int, int] = {}
    conflict_features: set[int] = set()
    cycles: list[list[int]] = []
    for nodes in nx.connected_components(cg.graph):
        sub = cg.graph.subgraph(nodes)
        if nx.is_bipartite(sub):
            coloring.update(nx.algorithms.bipartite.color(sub))
        else:
            cycles.append(_find_odd_cycle(sub))
            conflict_features.update(nodes)
            # best-effort greedy coloring so the masks stay complete
            for node in sorted(nodes):
                used = {coloring.get(nb) for nb in sub.neighbors(node)}
                coloring[node] = 0 if 0 not in used else 1
    # balance pass: each connected component's two-coloring is only fixed
    # up to a global flip, so flip whole components toward equal mask
    # loading (mask balance images best — the scoring paper's first metric)
    areas = [feat.area for feat in cg.features]
    load_a = load_b = 0
    for nodes in nx.connected_components(cg.graph):
        group = sorted(nodes)
        area0 = sum(areas[i] for i in group if coloring.get(i, 0) == 0)
        area1 = sum(areas[i] for i in group) - area0
        if (load_a + area0) + (load_b + area1) == 0:
            continue
        keep = abs((load_a + area0) - (load_b + area1))
        flip = abs((load_a + area1) - (load_b + area0))
        if flip < keep:
            for i in group:
                coloring[i] = 1 - coloring.get(i, 0)
            area0, area1 = area1, area0
        load_a += area0
        load_b += area1

    mask_a = Region()
    mask_b = Region()
    for i, feat in enumerate(cg.features):
        if coloring.get(i, 0) == 0:
            mask_a = mask_a | feat
        else:
            mask_b = mask_b | feat
    registry.observe(names.DPT_DECOMPOSE_TIMER, time.perf_counter() - t0)
    registry.inc(names.DPT_ODD_CYCLES, len(cycles))
    registry.inc(names.DPT_CONFLICT_FEATURES, len(conflict_features))
    return DecompositionResult(
        mask_a=mask_a,
        mask_b=mask_b,
        coloring=coloring,
        features=cg.features,
        conflict_features=conflict_features,
        conflict_cycles=cycles,
    )
