"""Alternating phase-shift mask (altPSM) assignment for critical gates.

The other two-coloring RET of the era: each critical (minimum-length)
gate is flanked by two clear windows etched to opposite phases (0 and
180 degrees), whose interference darkens the gate line.  Neighbouring
gates that share optical proximity must alternate consistently — phase
assignment is a graph two-coloring, and odd cycles are *phase conflicts*
that force layout changes, exactly like DPT a node later.

We reuse the DPT conflict-graph machinery: nodes are critical gates,
edges join gates within the phase-interaction distance, and the coloring
decides which side of each gate carries phase 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.report import BaseReport, deprecated_alias
from repro.dpt.decompose import _feature_distance, _find_odd_cycle
from repro.geometry import Rect, Region


@dataclass
class PhaseAssignment(BaseReport):
    """Shifter geometry per phase plus any unresolvable conflicts.

    Implements the :class:`~repro.core.report.BaseReport` contract: the
    findings are the phase-conflicted gate indices, so ``pa.ok`` is
    True exactly when every critical gate got a consistent phase.
    """

    phase0: Region
    phase180: Region
    critical_gates: int = 0
    conflicts: int = 0
    conflict_gates: set[int] = field(default_factory=set)

    # legacy spelling (pre-BaseReport), kept as a warning alias
    is_clean = deprecated_alias("is_clean", "ok")

    @property
    def findings(self) -> tuple[int, ...]:
        """Indices of gates caught in a phase conflict, ascending."""
        return tuple(sorted(self.conflict_gates))

    @property
    def findings_count(self) -> int:
        return self.conflicts

    def summary(self) -> str:
        return (
            f"altPSM: {self.critical_gates} critical gates, "
            f"{len(self.phase0)}+{len(self.phase180)} shifters, "
            f"{self.conflicts} phase conflicts"
        )


def critical_gates(poly: Region, active: Region, max_length_nm: int) -> list[Rect]:
    """Gates (poly over active) whose channel length needs PSM."""
    gates = []
    for g in (poly & active).rects():
        length = min(g.width, g.height)
        if length <= max_length_nm:
            gates.append(g)
    return gates


def assign_phases(
    poly: Region,
    active: Region,
    max_length_nm: int,
    interaction_nm: int,
    shifter_width_nm: int = 100,
    shifter_gap_nm: int = 20,
) -> PhaseAssignment:
    """Assign alternating phases to the shifters of every critical gate.

    Two gates within ``interaction_nm`` must take opposite orientations
    (which side is phase 0); the two-coloring is delegated to the DPT
    decomposer over the gate rectangles, including its odd-cycle
    reporting.  Shifter windows are placed ``shifter_gap_nm`` off each
    gate flank, ``shifter_width_nm`` wide.
    """
    gates = critical_gates(poly, active, max_length_nm)
    assignment = PhaseAssignment(Region(), Region(), critical_gates=len(gates))
    if not gates:
        return assignment
    # one phase node per poly LINE: both channel segments of a gate line
    # (NMOS and PMOS) share the same flanking shifters, so they must be
    # one node — otherwise every cell would report a spurious odd cycle
    lines: list[Region] = []
    for component in poly.components():
        owned = [g for g in gates if component.covers(Region(g))]
        if owned:
            lines.append(Region(owned))
    # conflict graph over the LINE nodes (not connected components —
    # a line's N and P channel rects are one node by construction)
    boxes = [list(line.rects()) for line in lines]
    graph = nx.Graph()
    graph.add_nodes_from(range(len(lines)))
    for i in range(len(lines)):
        for j in range(i + 1, len(lines)):
            if _feature_distance(boxes[i], boxes[j], interaction_nm) < interaction_nm:
                graph.add_edge(i, j)
    coloring: dict[int, int] = {}
    for nodes in nx.connected_components(graph):
        sub = graph.subgraph(nodes)
        if nx.is_bipartite(sub):
            coloring.update(nx.algorithms.bipartite.color(sub))
        else:
            assignment.conflicts += 1
            assignment.conflict_gates.update(_find_odd_cycle(sub))
            for node in sorted(nodes):
                used = {coloring.get(nb) for nb in sub.neighbors(node)}
                coloring[node] = 0 if 0 not in used else 1

    phase0_rects: list[Rect] = []
    phase180_rects: list[Rect] = []
    for i, feature in enumerate(lines):
        orientation = coloring.get(i, 0)
        for gate in feature.rects():
            left, right = _shifters(gate, shifter_width_nm, shifter_gap_nm)
            if orientation == 0:
                phase0_rects.append(left)
                phase180_rects.append(right)
            else:
                phase0_rects.append(right)
                phase180_rects.append(left)
    phase0 = Region(phase0_rects)
    phase180 = Region(phase180_rects)
    # facing shifters of opposite phase may collide at tight pitch: the
    # overlap belongs to neither (a phase cannot be both 0 and 180)
    collision = phase0 & phase180
    assignment.phase0 = phase0 - collision
    assignment.phase180 = phase180 - collision
    return assignment


def _shifters(gate: Rect, width: int, gap: int) -> tuple[Rect, Rect]:
    """The two clear windows flanking a gate, across its length axis."""
    if gate.width <= gate.height:  # vertical poly: shifters left/right
        left = Rect(gate.x0 - gap - width, gate.y0, gate.x0 - gap, gate.y1)
        right = Rect(gate.x1 + gap, gate.y0, gate.x1 + gap + width, gate.y1)
    else:  # horizontal poly: shifters below/above
        left = Rect(gate.x0, gate.y0 - gap - width, gate.x1, gate.y0 - gap)
        right = Rect(gate.x0, gate.y1 + gap, gate.x1, gate.y1 + gap + width)
    return left, right
