"""Streaming GDSII scan and on-the-fly flatten (no ``Layout`` built).

``scan_gds`` walks a stream file record-by-record (via
:func:`repro.gdsii.records.iter_file_records`) and keeps one compact
``_StreamCell`` per structure: local rect quads per (gds_layer,
gds_datatype) pair in ``array('q')`` storage, plus reference
placements.  ``flatten`` then walks the hierarchy with composed
lattice transforms and emits every flattened rect through a callback —
the substrate :mod:`repro.layout.store` ingests into sorted canonical
runs.

The emitted rect population is identical to ``read_gds`` followed by
``Cell.rects`` by construction: polygons are decomposed into their
canonical horizontal-slab rects in local coordinates at parse time
(``Polygon.to_region().rects()``, exactly what ``Cell.rects`` does),
and references compose placements with ``Transform.then`` in the same
column-major order as ``CellReference.placements``.
"""

from __future__ import annotations

import os
from array import array
from typing import Callable

from repro.gdsii import records as rec

# (mirrored, angle) -> Orientation; shared with read_gds so the two
# parsers can never drift on orientation decoding.
from repro.gdsii.io import _GDS_TO_ORIENT
from repro.gdsii.records import GdsFormatError
from repro.geometry import Point, Polygon, Transform
from repro.geometry.transform import _MATRICES

LayerKey = tuple[int, int]
EmitFn = Callable[[LayerKey, int, int, int, int], None]

_QUAD = 4


class _StreamCell:
    """One GDSII structure: local rect quads per layer plus references."""

    __slots__ = ("name", "quads", "refs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.quads: dict[LayerKey, array] = {}
        # (child name, dx, dy, orientation, cols, rows, step_dx, step_dy)
        self.refs: list[tuple] = []

    def add_quad(self, key: LayerKey, x0: int, y0: int, x1: int, y1: int) -> None:
        if x0 >= x1 or y0 >= y1:
            raise GdsFormatError(f"degenerate rect on layer {key} in {self.name!r}")
        quads = self.quads.get(key)
        if quads is None:
            quads = self.quads[key] = array("q")
        quads.extend((x0, y0, x1, y1))


class StreamLibrary:
    """Scanned library: cell table + metadata, never a full ``Layout``."""

    __slots__ = ("name", "dbu_nm", "cells")

    def __init__(self, name: str, dbu_nm: float, cells: dict[str, _StreamCell]) -> None:
        self.name = name
        self.dbu_nm = dbu_nm
        self.cells = cells

    def top_cell_name(self) -> str:
        """The unique unreferenced cell (same rule as ``Layout.top_cell``)."""
        referenced = {ref[0] for cell in self.cells.values() for ref in cell.refs}
        tops = [name for name in self.cells if name not in referenced]
        if len(tops) != 1:
            raise GdsFormatError(
                f"expected exactly one top cell, found {sorted(tops)!r}"
            )
        return tops[0]


def scan_gds(path: str | os.PathLike) -> StreamLibrary:
    """Scan a GDSII file into compact per-cell quad tables.

    Validation matches :func:`repro.gdsii.io.read_gds`: Manhattan-only
    angles, axis-parallel AREF steps, known reference targets.
    """
    layout_name: str | None = None
    dbu_nm = 1.0
    cells: dict[str, _StreamCell] = {}
    current: _StreamCell | None = None
    element: rec.Record | None = None
    el_kind = ""
    el_layer = 0
    el_datatype = 0
    el_sname = ""
    el_mirrored = False
    el_angle = 0.0
    el_colrow = (1, 1)
    el_xy: list[int] = []

    with open(path, "rb") as fh:
        for record in rec.iter_file_records(fh):
            t = record.rtype
            if t == rec.HEADER or t == rec.BGNLIB or t == rec.BGNSTR:
                continue
            if t == rec.LIBNAME:
                layout_name = record.ascii()
            elif t == rec.UNITS:
                _, metres_per_dbu = record.real8()
                if layout_name is None:
                    raise GdsFormatError("UNITS before LIBNAME")
                dbu_nm = metres_per_dbu * 1e9
            elif t == rec.STRNAME:
                current = _StreamCell(record.ascii())
                cells[current.name] = current
            elif t == rec.ENDSTR:
                current = None
            elif t in (rec.BOUNDARY, rec.SREF, rec.AREF):
                element = record
                el_kind = record.name
                el_layer = el_datatype = 0
                el_sname = ""
                el_mirrored = False
                el_angle = 0.0
                el_colrow = (1, 1)
                el_xy = []
            elif element is not None and t == rec.LAYER:
                el_layer = record.int2()[0]
            elif element is not None and t == rec.DATATYPE:
                el_datatype = record.int2()[0]
            elif element is not None and t == rec.SNAME:
                el_sname = record.ascii()
            elif element is not None and t == rec.STRANS:
                el_mirrored = bool(record.data[0] & 0x80)
            elif element is not None and t == rec.ANGLE:
                el_angle = record.real8()[0]
            elif element is not None and t == rec.COLROW:
                cols, rows = record.int2()
                el_colrow = (cols, rows)
            elif element is not None and t == rec.XY:
                el_xy = record.int4()
            elif t == rec.ENDEL:
                if current is None or element is None:
                    raise GdsFormatError("element outside structure")
                if el_kind == "BOUNDARY":
                    pts = [
                        Point(el_xy[i], el_xy[i + 1]) for i in range(0, len(el_xy), 2)
                    ]
                    poly = Polygon(pts)
                    key = (el_layer, el_datatype)
                    if poly.is_rect:
                        box = poly.bbox
                        current.add_quad(key, box.x0, box.y0, box.x1, box.y1)
                    else:
                        for r in poly.to_region().rects():
                            current.add_quad(key, r.x0, r.y0, r.x1, r.y1)
                else:
                    okey = (el_mirrored, el_angle % 360.0)
                    if okey not in _GDS_TO_ORIENT:
                        raise GdsFormatError(
                            f"unsupported angle {el_angle} (Manhattan database)"
                        )
                    orient = _GDS_TO_ORIENT[okey]
                    if el_kind == "SREF":
                        current.refs.append(
                            (el_sname, el_xy[0], el_xy[1], orient, 1, 1, 0, 0)
                        )
                    else:  # AREF
                        cols, rows = el_colrow
                        x0, y0, xc, yc, xr, yr = el_xy[:6]
                        if yc != y0 or xr != x0:
                            raise GdsFormatError(
                                "only axis-parallel AREF steps are supported"
                            )
                        dx = (xc - x0) // cols if cols else 0
                        dy = (yr - y0) // rows if rows else 0
                        current.refs.append(
                            (el_sname, x0, y0, orient, cols, rows, dx, dy)
                        )
                element = None
            elif t == rec.ENDLIB:
                break

    if layout_name is None:
        raise GdsFormatError("missing LIBNAME")
    for cell in cells.values():
        for ref in cell.refs:
            if ref[0] not in cells:
                raise GdsFormatError(f"reference to unknown cell {ref[0]!r}")
    return StreamLibrary(layout_name, dbu_nm, cells)


def flatten(lib: StreamLibrary, cell: str | None, emit: EmitFn) -> None:
    """Emit every flattened rect of ``cell`` (default: the top cell).

    Quads are transformed corner-by-corner with the orientation matrix
    and min/max-normalized — exactly ``Transform.apply_rect`` — and
    reference placements compose through ``Transform.then`` in the same
    column-major order as ``CellReference.placements``, so the emitted
    population matches ``Cell.rects`` on the materialized layout.
    """
    name = cell if cell is not None else lib.top_cell_name()
    root = lib.cells.get(name)
    if root is None:
        raise GdsFormatError(f"unknown cell {name!r}")
    _emit_cell(lib, root, Transform.IDENTITY, emit)


def _emit_cell(
    lib: StreamLibrary, cell: _StreamCell, transform: Transform, emit: EmitFn
) -> None:
    a, b, c, d = _MATRICES[transform.orientation]
    tx, ty = transform.dx, transform.dy
    for key, quads in cell.quads.items():
        for i in range(0, len(quads), _QUAD):
            x0, y0, x1, y1 = quads[i : i + _QUAD]
            ax0 = a * x0 + b * y0 + tx
            ay0 = c * x0 + d * y0 + ty
            ax1 = a * x1 + b * y1 + tx
            ay1 = c * x1 + d * y1 + ty
            if ax0 > ax1:
                ax0, ax1 = ax1, ax0
            if ay0 > ay1:
                ay0, ay1 = ay1, ay0
            emit(key, ax0, ay0, ax1, ay1)
    for sname, dx, dy, orient, cols, rows, step_dx, step_dy in cell.refs:
        child = lib.cells[sname]
        for col in range(cols):
            for row in range(rows):
                place = Transform(
                    dx + col * step_dx, dy + row * step_dy, orient
                )
                _emit_cell(lib, child, place.then(transform), emit)
