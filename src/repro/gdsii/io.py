"""GDSII stream reader and writer for :class:`repro.layout.Layout`.

Supported content: BOUNDARY elements (rects and rectilinear polygons),
SREF/AREF references with the eight lattice orientations, and axis-parallel
array steps.  Magnification and non-90-degree angles are rejected — this
database is integer-lattice Manhattan by design.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.geometry import Orientation, Point, Polygon, Rect, Transform
from repro.gdsii import records as rec
from repro.gdsii.records import GdsFormatError
from repro.layout import Cell, Layer, Layout

# GDSII ANGLE is CCW rotation applied after the (optional) x-axis mirror —
# exactly our Orientation convention.
_ORIENT_TO_GDS: dict[Orientation, tuple[bool, float]] = {
    Orientation.R0: (False, 0.0),
    Orientation.R90: (False, 90.0),
    Orientation.R180: (False, 180.0),
    Orientation.R270: (False, 270.0),
    Orientation.MX: (True, 0.0),
    Orientation.MX90: (True, 90.0),
    Orientation.MX180: (True, 180.0),
    Orientation.MX270: (True, 270.0),
}
_GDS_TO_ORIENT = {v: k for k, v in _ORIENT_TO_GDS.items()}

_EPOCH = [1970, 1, 1, 0, 0, 0]  # fixed timestamps keep output deterministic


def write_gds(layout: Layout, path: str | os.PathLike) -> None:
    """Serialize a layout library to a GDSII stream file.

    Records are flushed to the file handle one cell at a time, so writer
    memory stays O(largest cell) rather than O(whole library).
    """
    with open(path, "wb") as f:
        f.write(
            b"".join(
                [
                    rec.rec_int2(rec.HEADER, [600]),
                    rec.rec_int2(rec.BGNLIB, _EPOCH + _EPOCH),
                    rec.rec_ascii(rec.LIBNAME, layout.name),
                    # UNITS: dbu in user units (um), dbu in metres
                    rec.rec_real8(rec.UNITS, [layout.dbu_nm * 1e-3, layout.dbu_nm * 1e-9]),
                ]
            )
        )
        for cell in _bottom_up(layout):
            chunks: list[bytes] = [
                rec.rec_int2(rec.BGNSTR, _EPOCH + _EPOCH),
                rec.rec_ascii(rec.STRNAME, cell.name),
            ]
            for layer in sorted(cell.layers, key=lambda l: (l.gds_layer, l.gds_datatype)):
                for shape in cell.shapes(layer):
                    poly = Polygon.from_rect(shape) if isinstance(shape, Rect) else shape
                    chunks.append(_boundary(layer, poly))
            for ref in cell.references:
                chunks.append(_reference(ref))
            chunks.append(rec.rec_empty(rec.ENDSTR))
            f.write(b"".join(chunks))
        f.write(rec.rec_empty(rec.ENDLIB))


def _bottom_up(layout: Layout) -> list[Cell]:
    """Cells ordered so children precede parents (GDSII convention)."""
    order: list[Cell] = []
    seen: set[str] = set()

    def visit(cell: Cell) -> None:
        if cell.name in seen:
            return
        seen.add(cell.name)
        for ref in cell.references:
            visit(ref.cell)
        order.append(cell)

    for cell in layout:
        visit(cell)
    return order


def _boundary(layer: Layer, poly: Polygon) -> bytes:
    pts = list(poly.points) + [poly.points[0]]
    coords: list[int] = []
    for p in pts:
        coords.extend((p.x, p.y))
    return b"".join(
        [
            rec.rec_empty(rec.BOUNDARY),
            rec.rec_int2(rec.LAYER, [layer.gds_layer]),
            rec.rec_int2(rec.DATATYPE, [layer.gds_datatype]),
            rec.rec_int4(rec.XY, coords),
            rec.rec_empty(rec.ENDEL),
        ]
    )


def _reference(ref) -> bytes:
    mirrored, angle = _ORIENT_TO_GDS[ref.transform.orientation]
    chunks: list[bytes] = [rec.rec_empty(rec.AREF if ref.is_array else rec.SREF)]
    chunks.append(rec.rec_ascii(rec.SNAME, ref.cell.name))
    if mirrored or angle:
        chunks.append(rec.make_record(rec.STRANS, rec.DT_BITARRAY, (0x8000 if mirrored else 0).to_bytes(2, "big")))
        if angle:
            chunks.append(rec.rec_real8(rec.ANGLE, [angle]))
    x0, y0 = ref.transform.dx, ref.transform.dy
    if ref.is_array:
        chunks.append(rec.rec_int2(rec.COLROW, [ref.columns, ref.rows]))
        coords = [
            x0, y0,
            x0 + ref.columns * ref.dx, y0,
            x0, y0 + ref.rows * ref.dy,
        ]
    else:
        coords = [x0, y0]
    chunks.append(rec.rec_int4(rec.XY, coords))
    chunks.append(rec.rec_empty(rec.ENDEL))
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


@dataclass
class _PendingRef:
    parent: str
    child: str
    transform: Transform
    columns: int = 1
    rows: int = 1
    dx: int = 0
    dy: int = 0


@dataclass
class _ElementState:
    kind: str = ""
    layer: int = 0
    datatype: int = 0
    sname: str = ""
    mirrored: bool = False
    angle: float = 0.0
    colrow: tuple[int, int] = (1, 1)
    xy: list[int] = field(default_factory=list)


def read_gds(path: str | os.PathLike, layer_names: dict[tuple[int, int], str] | None = None) -> Layout:
    """Parse a GDSII stream file into a layout library.

    ``layer_names`` optionally maps (layer, datatype) to human names.
    """
    with open(path, "rb") as f:
        data = f.read()
    layer_names = layer_names or {}
    layout: Layout | None = None
    current: Cell | None = None
    element: _ElementState | None = None
    pending: list[_PendingRef] = []
    cells: dict[str, Cell] = {}

    for record in rec.iter_records(data):
        t = record.rtype
        if t == rec.HEADER or t == rec.BGNLIB or t == rec.BGNSTR:
            continue
        if t == rec.LIBNAME:
            layout = Layout(record.ascii())
        elif t == rec.UNITS:
            user_per_dbu, metres_per_dbu = record.real8()
            if layout is None:
                raise GdsFormatError("UNITS before LIBNAME")
            layout.dbu_nm = metres_per_dbu * 1e9
        elif t == rec.STRNAME:
            current = Cell(record.ascii())
            cells[current.name] = current
        elif t == rec.ENDSTR:
            current = None
        elif t in (rec.BOUNDARY, rec.SREF, rec.AREF):
            element = _ElementState(kind=record.name)
        elif element is not None and t == rec.LAYER:
            element.layer = record.int2()[0]
        elif element is not None and t == rec.DATATYPE:
            element.datatype = record.int2()[0]
        elif element is not None and t == rec.SNAME:
            element.sname = record.ascii()
        elif element is not None and t == rec.STRANS:
            element.mirrored = bool(record.data[0] & 0x80)
        elif element is not None and t == rec.ANGLE:
            element.angle = record.real8()[0]
        elif element is not None and t == rec.COLROW:
            cols, rows = record.int2()
            element.colrow = (cols, rows)
        elif element is not None and t == rec.XY:
            element.xy = record.int4()
        elif t == rec.ENDEL:
            if current is None or element is None:
                raise GdsFormatError("element outside structure")
            _finish_element(current, element, pending, layer_names)
            element = None
        elif t == rec.ENDLIB:
            break

    if layout is None:
        raise GdsFormatError("missing LIBNAME")
    for cell in cells.values():
        layout.add_cell(cell)
    for p in pending:
        if p.child not in cells:
            raise GdsFormatError(f"reference to unknown cell {p.child!r}")
        cells[p.parent].add_ref(cells[p.child], p.transform, p.columns, p.rows, p.dx, p.dy)
    return layout


def _finish_element(
    cell: Cell,
    el: _ElementState,
    pending: list[_PendingRef],
    layer_names: dict[tuple[int, int], str],
) -> None:
    if el.kind == "BOUNDARY":
        pts = [Point(el.xy[i], el.xy[i + 1]) for i in range(0, len(el.xy), 2)]
        layer = Layer(el.layer, el.datatype, layer_names.get((el.layer, el.datatype), ""))
        poly = Polygon(pts)
        if poly.is_rect:
            cell.add_rect(layer, poly.bbox)
        else:
            cell.add_polygon(layer, poly)
        return

    key = (el.mirrored, el.angle % 360.0)
    if key not in _GDS_TO_ORIENT:
        raise GdsFormatError(f"unsupported angle {el.angle} (Manhattan database)")
    orient = _GDS_TO_ORIENT[key]
    if el.kind == "SREF":
        x, y = el.xy[0], el.xy[1]
        pending.append(_PendingRef(cell.name, el.sname, Transform(x, y, orient)))
        return

    # AREF
    cols, rows = el.colrow
    x0, y0, xc, yc, xr, yr = el.xy[:6]
    if yc != y0 or xr != x0:
        raise GdsFormatError("only axis-parallel AREF steps are supported")
    dx = (xc - x0) // cols if cols else 0
    dy = (yr - y0) // rows if rows else 0
    pending.append(_PendingRef(cell.name, el.sname, Transform(x0, y0, orient), cols, rows, dx, dy))
