"""Low-level GDSII record encoding/decoding."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator

# record types
HEADER = 0x00
BGNLIB = 0x01
LIBNAME = 0x02
UNITS = 0x03
ENDLIB = 0x04
BGNSTR = 0x05
STRNAME = 0x06
ENDSTR = 0x07
BOUNDARY = 0x08
SREF = 0x0A
AREF = 0x0B
LAYER = 0x0D
DATATYPE = 0x0E
XY = 0x10
ENDEL = 0x11
SNAME = 0x12
COLROW = 0x13
STRANS = 0x1A
MAG = 0x1B
ANGLE = 0x1C

# data types
DT_NONE = 0x00
DT_BITARRAY = 0x01
DT_INT2 = 0x02
DT_INT4 = 0x03
DT_REAL8 = 0x05
DT_ASCII = 0x06

RECORD_NAMES = {
    HEADER: "HEADER", BGNLIB: "BGNLIB", LIBNAME: "LIBNAME", UNITS: "UNITS",
    ENDLIB: "ENDLIB", BGNSTR: "BGNSTR", STRNAME: "STRNAME", ENDSTR: "ENDSTR",
    BOUNDARY: "BOUNDARY", SREF: "SREF", AREF: "AREF", LAYER: "LAYER",
    DATATYPE: "DATATYPE", XY: "XY", ENDEL: "ENDEL", SNAME: "SNAME",
    COLROW: "COLROW", STRANS: "STRANS", MAG: "MAG", ANGLE: "ANGLE",
}


class GdsFormatError(ValueError):
    """Raised on malformed GDSII streams."""


def encode_real8(value: float) -> bytes:
    """Encode a float as a GDSII 8-byte excess-64 base-16 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    # normalize mantissa into [1/16, 1)
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    if mantissa >= 1 << 56:  # float rounding pushed us to the next hexade
        mantissa >>= 4
        exponent += 1
    if not (0 <= exponent <= 127):
        raise GdsFormatError(f"real8 exponent out of range: {exponent}")
    return bytes([sign | exponent]) + struct.pack(">Q", mantissa)[1:]


def decode_real8(data: bytes) -> float:
    """Decode a GDSII 8-byte real."""
    if len(data) != 8:
        raise GdsFormatError("real8 must be 8 bytes")
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = int.from_bytes(b"\x00" + data[1:], "big")
    return sign * (mantissa / float(1 << 56)) * (16.0 ** exponent)


@dataclass(frozen=True, slots=True)
class Record:
    rtype: int
    dtype: int
    data: bytes

    @property
    def name(self) -> str:
        return RECORD_NAMES.get(self.rtype, f"0x{self.rtype:02X}")

    # -- payload decoding -----------------------------------------------
    def int2(self) -> list[int]:
        return list(struct.unpack(f">{len(self.data) // 2}h", self.data))

    def int4(self) -> list[int]:
        return list(struct.unpack(f">{len(self.data) // 4}i", self.data))

    def real8(self) -> list[float]:
        return [decode_real8(self.data[i : i + 8]) for i in range(0, len(self.data), 8)]

    def ascii(self) -> str:
        return self.data.rstrip(b"\x00").decode("ascii")


def make_record(rtype: int, dtype: int, payload: bytes = b"") -> bytes:
    if len(payload) % 2:
        payload += b"\x00"
    total = 4 + len(payload)
    if total > 0xFFFF:
        raise GdsFormatError(f"record too long: {total} bytes")
    return struct.pack(">HBB", total, rtype, dtype) + payload


def rec_int2(rtype: int, values: list[int]) -> bytes:
    return make_record(rtype, DT_INT2, struct.pack(f">{len(values)}h", *values))


def rec_int4(rtype: int, values: list[int]) -> bytes:
    return make_record(rtype, DT_INT4, struct.pack(f">{len(values)}i", *values))


def rec_real8(rtype: int, values: list[float]) -> bytes:
    return make_record(rtype, DT_REAL8, b"".join(encode_real8(v) for v in values))


def rec_ascii(rtype: int, text: str) -> bytes:
    return make_record(rtype, DT_ASCII, text.encode("ascii"))


def rec_empty(rtype: int) -> bytes:
    return make_record(rtype, DT_NONE)


def iter_records(data: bytes) -> Iterator[Record]:
    """Parse a byte stream into records; stops at ENDLIB or end of data."""
    pos = 0
    n = len(data)
    while pos + 4 <= n:
        length, rtype, dtype = struct.unpack(">HBB", data[pos : pos + 4])
        if length < 4 or pos + length > n:
            raise GdsFormatError(f"bad record length {length} at offset {pos}")
        yield Record(rtype, dtype, data[pos + 4 : pos + length])
        pos += length
        if rtype == ENDLIB:
            return
    if pos != n:
        raise GdsFormatError("trailing bytes after last record")


def iter_file_records(fh: BinaryIO, chunk_size: int = 1 << 16) -> Iterator[Record]:
    """Parse records from a binary file handle without reading it whole.

    Same contract as :func:`iter_records` — stops at ENDLIB, raises on a
    record extending past the end of the stream, rejects 1–3 trailing
    bytes, and returns silently when the stream ends on a clean record
    boundary — but holds only one buffered chunk (plus the record being
    assembled) in memory, so multi-gigabyte streams never materialize.
    """
    buf = b""
    pos = 0
    base = 0  # absolute file offset of buf[0]
    while True:
        if len(buf) - pos < 4:
            base += pos
            buf = buf[pos:] + fh.read(chunk_size)
            pos = 0
            if len(buf) < 4:
                if buf:
                    raise GdsFormatError("trailing bytes after last record")
                return
        length, rtype, dtype = struct.unpack(">HBB", buf[pos : pos + 4])
        if length < 4:
            raise GdsFormatError(f"bad record length {length} at offset {base + pos}")
        while len(buf) - pos < length:
            chunk = fh.read(chunk_size)
            if not chunk:
                raise GdsFormatError(
                    f"bad record length {length} at offset {base + pos}"
                )
            buf += chunk
        yield Record(rtype, dtype, buf[pos + 4 : pos + length])
        pos += length
        if rtype == ENDLIB:
            return
