"""JSON interchange for layouts — a debuggable sibling of the GDSII stream.

The schema is intentionally flat::

    {
      "name": "LIB", "dbu_nm": 1.0,
      "cells": {
        "CELLNAME": {
          "shapes": [{"layer": [l, dt, "name"], "rect": [x0,y0,x1,y1]},
                      {"layer": [...], "polygon": [[x,y], ...]}],
          "refs": [{"cell": "CHILD", "origin": [x,y], "orientation": "R90",
                     "columns": 1, "rows": 1, "dx": 0, "dy": 0}]
        }
      }
    }
"""

from __future__ import annotations

import json
import os

from repro.geometry import Orientation, Point, Polygon, Rect, Transform
from repro.layout import Cell, Layer, Layout


def write_json(layout: Layout, path: str | os.PathLike) -> None:
    doc: dict = {"name": layout.name, "dbu_nm": layout.dbu_nm, "cells": {}}
    for cell in layout:
        shapes = []
        for layer in sorted(cell.layers, key=lambda l: (l.gds_layer, l.gds_datatype)):
            for shape in cell.shapes(layer):
                entry: dict = {"layer": [layer.gds_layer, layer.gds_datatype, layer.name]}
                if isinstance(shape, Rect):
                    entry["rect"] = list(shape.as_tuple())
                else:
                    entry["polygon"] = [[p.x, p.y] for p in shape.points]
                shapes.append(entry)
        refs = [
            {
                "cell": ref.cell.name,
                "origin": [ref.transform.dx, ref.transform.dy],
                "orientation": ref.transform.orientation.value,
                "columns": ref.columns,
                "rows": ref.rows,
                "dx": ref.dx,
                "dy": ref.dy,
            }
            for ref in cell.references
        ]
        doc["cells"][cell.name] = {"shapes": shapes, "refs": refs}
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)


def read_json(path: str | os.PathLike) -> Layout:
    with open(path) as f:
        doc = json.load(f)
    layout = Layout(doc["name"], doc.get("dbu_nm", 1.0))
    cells: dict[str, Cell] = {}
    for name, body in doc["cells"].items():
        cell = Cell(name)
        cells[name] = cell
        for entry in body.get("shapes", ()):
            l, dt, lname = entry["layer"]
            layer = Layer(l, dt, lname)
            if "rect" in entry:
                cell.add_rect(layer, Rect(*entry["rect"]))
            else:
                cell.add_polygon(layer, Polygon([Point(x, y) for x, y in entry["polygon"]]))
    for name, body in doc["cells"].items():
        for ref in body.get("refs", ()):
            cells[name].add_ref(
                cells[ref["cell"]],
                Transform(ref["origin"][0], ref["origin"][1], Orientation(ref["orientation"])),
                ref.get("columns", 1),
                ref.get("rows", 1),
                ref.get("dx", 0),
                ref.get("dy", 0),
            )
    for cell in cells.values():
        layout.add_cell(cell)
    return layout
