"""GDSII stream-format reader/writer and a JSON interchange format.

Implemented from the Calma GDSII Stream Format specification: each record
is ``[uint16 length][uint8 record-type][uint8 data-type]`` followed by the
payload, with 8-byte reals in excess-64 base-16 floating point.  Only the
records a layout database needs are supported (BOUNDARY, SREF, AREF and
library/structure framing); texts, paths and node records are out of scope.
"""

from repro.gdsii.io import read_gds, write_gds
from repro.gdsii.jsonio import read_json, write_json
from repro.gdsii.stream import scan_gds

__all__ = ["read_gds", "write_gds", "read_json", "write_json", "scan_gds"]
