"""Design-rule sweeps over regenerated standard cells.

A deliberately direct implementation of the DOE idea: every candidate
rule assignment builds a fresh ``Technology`` (the generator derives all
cell geometry from it), regenerates the library, and measures area and
litho hotspots.  Because generation is cheap, no compaction surrogate is
needed — the "layout generation as the response function" shortcut our
parametric cells make honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.designgen.stdcells import make_stdcell_library
from repro.drc import run_drc
from repro.geometry import Rect
from repro.litho import LithoModel, find_hotspots
from repro.tech.technology import Technology

# the rule knobs the sweep understands, as Technology field overrides
KNOBS = ("poly_pitch", "cell_height", "via_size", "via_enclosure", "metal_width", "metal_space")


@dataclass
class RuleSweepPoint:
    """One candidate rule assignment and its measured responses."""

    overrides: dict[str, int]
    cell_area_um2: float = 0.0
    drc_clean: bool = False
    hotspots: int = 0
    tech: Technology | None = field(default=None, repr=False)


def _apply_overrides(base: Technology, overrides: dict[str, int]) -> Technology:
    unknown = set(overrides) - set(KNOBS)
    if unknown:
        raise ValueError(f"unknown rule knobs: {sorted(unknown)}")
    return replace(base, **overrides)


def _measure(tech: Technology, cells: tuple[str, ...], litho_check: bool) -> tuple[float, bool, int]:
    library = make_stdcell_library(tech)
    area = 0.0
    clean = True
    hotspots = 0
    model = LithoModel(tech.litho) if litho_check else None
    for name in cells:
        std = library[name]
        bb = std.cell.bbox
        area += bb.area / 1e6
        report = run_drc(std.cell, tech.rules.minimum())
        clean = clean and report.ok
        if model is not None:
            m1 = std.cell.region(tech.layers.metal1)
            window = Rect(bb.x0 - 100, bb.y0 - 100, bb.x1 + 100, bb.y1 + 100)
            hotspots += len(
                find_hotspots(model, m1, window, pinch_limit=tech.metal_width // 2)
            )
    return area, clean, hotspots


def sweep_rule_values(
    base: Technology,
    knob: str,
    values: list[int],
    cells: tuple[str, ...] = ("INV_X1", "NAND2_X1", "DFF_X1"),
    litho_check: bool = False,
) -> list[RuleSweepPoint]:
    """Sweep one rule knob, regenerating and measuring the cells."""
    points = []
    for value in values:
        tech = _apply_overrides(base, {knob: value})
        area, clean, hotspots = _measure(tech, cells, litho_check)
        points.append(
            RuleSweepPoint(
                overrides={knob: value},
                cell_area_um2=area,
                drc_clean=clean,
                hotspots=hotspots,
                tech=tech,
            )
        )
    return points


def rule_area_sensitivity(
    base: Technology,
    deltas: dict[str, int] | None = None,
    cells: tuple[str, ...] = ("INV_X1", "NAND2_X1", "DFF_X1"),
) -> dict[str, float]:
    """One-at-a-time DOE: percent cell-area change per knob increase.

    ``deltas`` maps knob -> increment (defaults to ~10% of each nominal).
    The ranking — which rules are area-critical — is the experiment's
    deliverable; rules with ~0 sensitivity can be relaxed for free.
    """
    node = base.node_nm
    defaults = {
        "poly_pitch": max(node // 2, 2),
        "cell_height": node,
        "via_size": max(node // 8, 2),
        "via_enclosure": max(node // 8, 2),
    }
    deltas = deltas or defaults
    base_area, _, _ = _measure(base, cells, litho_check=False)
    sensitivity: dict[str, float] = {}
    for knob, delta in deltas.items():
        tech = _apply_overrides(base, {knob: getattr(base, knob) + delta})
        area, _, _ = _measure(tech, cells, litho_check=False)
        sensitivity[knob] = 100.0 * (area - base_area) / base_area
    return sensitivity
