"""Design-rule exploration: the area/manufacturability trade-off.

The "manufacturability-driven design rule exploration" idea: design rule
values are knobs; each candidate rule set regenerates the standard cells
and measures (a) cell area, (b) DRC cleanliness, and (c) litho
marginality — exposing which rules buy area and which buy yield.
"""

from repro.ruleopt.explore import (
    RuleSweepPoint,
    sweep_rule_values,
    rule_area_sensitivity,
)

__all__ = ["RuleSweepPoint", "sweep_rule_values", "rule_area_sensitivity"]
