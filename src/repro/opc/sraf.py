"""Sub-resolution assist feature (SRAF) insertion.

Isolated edges image with less contrast than dense ones; placing a
non-printing scatter bar parallel to an isolated edge restores a dense-like
environment.  The rules here are the classic 1-bar recipe: a bar of width
``bar_width`` (below the printing threshold) at distance ``bar_distance``,
inserted only where at least ``clearance`` of empty space exists so the bar
itself cannot bridge to a neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect, Region


@dataclass(frozen=True, slots=True)
class SrafSettings:
    bar_width: int = 20
    bar_distance: int = 70
    min_edge_length: int = 100
    clearance_beyond_bar: int = 40
    end_pullin: int = 20  # shorten bars at both ends to avoid corner webs

    @property
    def required_space(self) -> int:
        return self.bar_distance + self.bar_width + self.clearance_beyond_bar


def insert_srafs(drawn: Region, settings: SrafSettings | None = None) -> Region:
    """SRAF bars for a drawn region (returned separately from the mask).

    The caller combines them: ``mask = opc_mask | srafs``; keeping them
    separate lets ORC verify the bars do not print.
    """
    settings = settings or SrafSettings()
    bars: list[Rect] = []
    for start, end in drawn.edges():
        if start.manhattan(end) < settings.min_edge_length:
            continue
        nx, ny = _outward(start, end)
        x0, x1 = sorted((start.x, end.x))
        y0, y1 = sorted((start.y, end.y))
        # demand clear space for the bar plus clearance
        need = settings.required_space
        probe = Rect(
            x0 + (nx if nx > 0 else nx * need),
            y0 + (ny if ny > 0 else ny * need),
            x1 + (nx * need if nx > 0 else -(-nx)),
            y1 + (ny * need if ny > 0 else -(-ny)),
        )
        if drawn.overlaps(Region(probe)):
            continue
        bars.append(_bar(x0, y0, x1, y1, nx, ny, settings))
    if not bars:
        return Region()
    # bars from opposite isolated edges can collide; keep the union minus
    # any overlap conflicts resolved by the region algebra itself
    return Region(bars)


def _outward(start, end) -> tuple[int, int]:
    dx = end.x - start.x
    dy = end.y - start.y
    sx = (dx > 0) - (dx < 0)
    sy = (dy > 0) - (dy < 0)
    return (sy, -sx)


def _bar(x0, y0, x1, y1, nx, ny, settings: SrafSettings) -> Rect:
    d = settings.bar_distance
    w = settings.bar_width
    pull = settings.end_pullin
    if ny != 0:  # horizontal edge -> horizontal bar above/below
        if ny > 0:
            ylo, yhi = y0 + d, y0 + d + w
        else:
            ylo, yhi = y0 - d - w, y0 - d
        return Rect(x0 + pull, ylo, x1 - pull, yhi)
    if nx > 0:
        xlo, xhi = x0 + d, x0 + d + w
    else:
        xlo, xhi = x0 - d - w, x0 - d
    return Rect(xlo, y0 + pull, xhi, y1 - pull)
