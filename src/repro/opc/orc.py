"""Optical rule checking (post-OPC verification).

ORC answers three questions about a finished mask: does the target print
within EPE tolerance at nominal, does it survive the process corners
without pinch/bridge hotspots, and do the assist features stay
sub-resolution?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.report import BaseReport, deprecated_alias
from repro.geometry import Rect, Region
from repro.litho.hotspots import Hotspot, find_hotspots
from repro.litho.model import LithoModel
from repro.litho.process import ProcessWindow
from repro.opc.fragments import fragment_region
from repro.opc.modelbased import edge_placement_errors


@dataclass
class OrcReport(BaseReport):
    rms_epe_nm: float = 0.0
    max_epe_nm: float = 0.0
    epe_violations: int = 0
    hotspots: list[Hotspot] = field(default_factory=list)
    printing_srafs: int = 0

    # legacy spelling (pre-BaseReport), kept as a warning alias
    passed = deprecated_alias("passed", "ok")

    @property
    def findings_count(self) -> int:
        return self.epe_violations + len(self.hotspots) + self.printing_srafs

    def summary(self) -> str:
        return (
            f"ORC: rms EPE {self.rms_epe_nm:.2f} nm, max {self.max_epe_nm:.2f} nm, "
            f"{self.epe_violations} EPE violations, {len(self.hotspots)} hotspots, "
            f"{self.printing_srafs} printing SRAFs -> "
            f"{'PASS' if self.ok else 'FAIL'}"
        )


def verify_opc(
    model: LithoModel,
    mask: Region,
    drawn: Region,
    window: Rect,
    srafs: Region | None = None,
    epe_tolerance_nm: float = 5.0,
    process: ProcessWindow | None = None,
    grid: int | None = None,
) -> OrcReport:
    """Full post-OPC verification of a mask against its drawn target."""
    g = grid or model.settings.grid_nm
    full_mask = mask | srafs if srafs is not None else mask
    fragments = fragment_region(drawn)
    epes = edge_placement_errors(model, full_mask, drawn, window, fragments, grid=g)
    report = OrcReport()
    if epes:
        arr = np.asarray(epes)
        report.rms_epe_nm = float(np.sqrt(np.mean(arr**2)))
        report.max_epe_nm = float(np.max(np.abs(arr)))
        report.epe_violations = int(np.sum(np.abs(arr) > epe_tolerance_nm))
    report.hotspots = _mask_hotspots(model, full_mask, drawn, window, process, g)
    if srafs is not None and not srafs.is_empty:
        printed = model.print_contour(full_mask, window, dose=1.05, grid=g)
        report.printing_srafs = sum(
            1 for bar in srafs.components() if not (printed & (bar - drawn.grown(2))).is_empty
        )
    return report


def _mask_hotspots(
    model: LithoModel,
    mask: Region,
    drawn: Region,
    window: Rect,
    process: ProcessWindow | None,
    grid: int,
) -> list[Hotspot]:
    """Hotspots of the printed mask measured against the drawn intent."""
    return find_hotspots(model, drawn, window, process, grid=grid, mask=mask)