"""Optical proximity correction.

* :mod:`fragments` — edge fragmentation shared by all OPC flavours.
* :mod:`rulebased` — bias + hammerhead rule OPC (mid-1990s style).
* :mod:`modelbased` — iterative EPE-driven fragment movement (the
  production approach this library's litho model is built to exercise).
* :mod:`sraf` — sub-resolution assist feature insertion.
* :mod:`orc` — post-OPC verification (EPE statistics + hotspot recheck).
"""

from repro.opc.fragments import Fragment, fragment_region, reconstruct_mask
from repro.opc.rulebased import apply_rule_opc, RuleOpcSettings
from repro.opc.modelbased import apply_model_opc, ModelOpcSettings, edge_placement_errors
from repro.opc.sraf import insert_srafs, SrafSettings
from repro.opc.orc import OrcReport, verify_opc

__all__ = [
    "Fragment",
    "fragment_region",
    "reconstruct_mask",
    "apply_rule_opc",
    "RuleOpcSettings",
    "apply_model_opc",
    "ModelOpcSettings",
    "edge_placement_errors",
    "insert_srafs",
    "SrafSettings",
    "OrcReport",
    "verify_opc",
]
