"""Model-based OPC: iterative EPE-driven fragment movement.

Each iteration simulates the current mask, measures the edge placement
error at every fragment control point (sampled from the aerial image along
the outward normal), and moves fragments to cancel the error.  Gains below
1 damp the inter-fragment coupling; convergence to |EPE| of a nanometre or
two within 5-10 iterations mirrors production behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Rect, Region
from repro.litho.model import LithoModel
from repro.obs import get_registry, names
from repro.opc.fragments import Fragment, fragment_region, reconstruct_mask


@dataclass(frozen=True, slots=True)
class ModelOpcSettings:
    """Knobs for the iterative corrector.

    With ``pw_aware`` set, each iteration averages the EPE over the
    nominal condition and the two worst process corners (weights 1/2,
    1/4, 1/4), trading a little nominal fidelity for corner robustness —
    hammerhead-like line-end treatment emerges on its own.
    """

    max_len: int = 120
    corner_len: int = 40
    iterations: int = 6
    gain: float = 0.7
    max_offset: int = 40
    grid: int | None = None
    pw_aware: bool = False
    pw_dose_delta: float = 0.05
    pw_defocus_nm: float = 80.0
    # retargeting: aim the printed edge this many nm *inside* the drawn
    # edge.  At aggressive nodes a small inward bias buys bridge margin at
    # the high-dose corner for a tolerable CD loss — standard practice.
    target_bias_nm: float = 0.0


@dataclass
class OpcResult:
    """Mask plus convergence diagnostics."""

    mask: Region
    fragments: list[Fragment]
    epe_history: list[float]  # RMS EPE per iteration (pre-move)

    @property
    def final_rms_epe(self) -> float:
        return self.epe_history[-1] if self.epe_history else 0.0


def _bilinear(image: np.ndarray, window: Rect, grid: int, x: float, y: float) -> float:
    """Sample the image at layout coordinates with bilinear interpolation.

    Pixel (j, i) is centred at window.x0 + (i + 0.5) * grid.
    """
    fx = (x - window.x0) / grid - 0.5
    fy = (y - window.y0) / grid - 0.5
    ny, nx = image.shape
    i0 = int(np.floor(fx))
    j0 = int(np.floor(fy))
    ti = fx - i0
    tj = fy - j0
    i0 = max(0, min(i0, nx - 2))
    j0 = max(0, min(j0, ny - 2))
    return float(
        image[j0, i0] * (1 - ti) * (1 - tj)
        + image[j0, i0 + 1] * ti * (1 - tj)
        + image[j0 + 1, i0] * (1 - ti) * tj
        + image[j0 + 1, i0 + 1] * ti * tj
    )


def _fragment_epe(
    image: np.ndarray, window: Rect, grid: int, frag: Fragment, threshold: float,
    probe_nm: float = 4.0,
) -> float:
    """Signed EPE at the fragment midpoint: + means printed edge outside
    the drawn edge.

    Uses the local intensity and slope along the outward normal:
    ``epe = (I(edge) - threshold) / |dI/dn|``.
    """
    mid = frag.midpoint
    nx, ny = frag.normal
    i_edge = _bilinear(image, window, grid, mid.x, mid.y)
    i_out = _bilinear(image, window, grid, mid.x + nx * probe_nm, mid.y + ny * probe_nm)
    i_in = _bilinear(image, window, grid, mid.x - nx * probe_nm, mid.y - ny * probe_nm)
    slope = (i_in - i_out) / (2 * probe_nm)  # intensity falls outward for bright features
    if slope <= 1e-4:
        slope = 1e-4
    epe = (i_edge - threshold) / slope
    # clamp: where the image is flat (feature failed to print, or deep
    # inside a large plate) the linearization is meaningless — bound the
    # step so the iteration stays stable
    return max(-50.0, min(50.0, epe))


def edge_placement_errors(
    model: LithoModel,
    mask: Region,
    drawn: Region,
    window: Rect,
    fragments: list[Fragment] | None = None,
    dose: float = 1.0,
    defocus_nm: float = 0.0,
    grid: int | None = None,
) -> list[float]:
    """EPE at every fragment of ``drawn`` for a given mask/condition."""
    g = grid or model.settings.grid_nm
    frags = fragments if fragments is not None else fragment_region(drawn)
    image = model.aerial_image(mask, window, defocus_nm, g)
    threshold = model.settings.resist_threshold / dose
    return [_fragment_epe(image, window, g, f, threshold) for f in frags]


def apply_model_opc(
    drawn: Region,
    model: LithoModel,
    window: Rect | None = None,
    settings: ModelOpcSettings | None = None,
    active_window: Rect | None = None,
    context: Region | None = None,
) -> OpcResult:
    """Run iterative model-based OPC on a drawn region.

    ``active_window`` restricts correction to fragments whose midpoint
    lies inside it; the rest of ``drawn`` is frozen context.  Pass it when
    OPC-ing a clip out of a larger layout — fragments at the clip border
    see a half-empty neighbourhood and must not chase it.

    ``context`` is extra mask geometry that is exposed but never moved —
    SRAF bars, neighbouring already-final cells.  Production flows insert
    SRAFs first and OPC with them in place; do the same here.
    """
    settings = settings or ModelOpcSettings()
    g = settings.grid or model.settings.grid_nm
    if window is None:
        bb = drawn.bbox
        if bb is None:
            return OpcResult(drawn, [], [])
        pad = settings.max_offset + 8 * g
        window = bb.expanded(pad)
    fragments = fragment_region(drawn, settings.max_len, settings.corner_len)
    if active_window is not None:
        aw = active_window
        active = [
            aw.contains_point(f.midpoint) for f in fragments
        ]
    else:
        active = [True] * len(fragments)
    base_threshold = model.settings.resist_threshold
    if settings.pw_aware:
        conditions = [
            (1.0, 0.0, 0.5),
            (1.0 - settings.pw_dose_delta, settings.pw_defocus_nm, 0.25),
            (1.0 + settings.pw_dose_delta, settings.pw_defocus_nm, 0.25),
        ]
    else:
        conditions = [(1.0, 0.0, 1.0)]
    registry = get_registry()
    registry.inc(names.OPC_RUNS)
    registry.inc(names.OPC_FRAGMENTS, len(fragments))
    history: list[float] = []
    for _ in range(settings.iterations):
        with registry.timer(names.OPC_ITERATION_TIMER):
            mask = reconstruct_mask(drawn, fragments)
            if context is not None:
                mask = mask | context
            epes = np.zeros(len(fragments))
            for dose, defocus, weight in conditions:
                with registry.timer(names.OPC_SIMULATE_TIMER):
                    image = model.aerial_image(mask, window, defocus, g)
                threshold = base_threshold / dose
                epes += weight * np.array(
                    [
                        _fragment_epe(image, window, g, f, threshold) if active[k] else 0.0
                        for k, f in enumerate(fragments)
                    ]
                )
            epes += settings.target_bias_nm  # aim inside the drawn edge
            active_epes = epes[[k for k in range(len(fragments)) if active[k]]]
            if len(active_epes):
                history.append(float(np.sqrt(np.mean(np.square(active_epes)))))
            else:
                history.append(0.0)
            fragments = [
                f.moved(_clamp(f.offset - settings.gain * e, settings.max_offset)) if active[k] else f
                for k, (f, e) in enumerate(zip(fragments, epes))
            ]
    registry.inc(names.OPC_ITERATIONS, settings.iterations)
    if history:
        registry.gauge(names.OPC_FINAL_RMS_EPE_NM, history[-1])
    mask = reconstruct_mask(drawn, fragments)
    # the caller combines the context (SRAFs) back in; keeping the result
    # to the corrected main features makes masks composable
    return OpcResult(mask, fragments, history)


def _clamp(value: float, limit: int) -> int:
    return int(round(max(-limit, min(limit, value))))
