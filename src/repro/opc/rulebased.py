"""Rule-based OPC: selective bias and line-end hammerheads.

The 1990s-era recipe: fatten features whose neighbourhood is open
(isolated lines print thin), and cap line ends with hammerheads to fight
pullback.  No simulation involved — that is its charm and its limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect, Region


@dataclass(frozen=True, slots=True)
class RuleOpcSettings:
    """Bias/hammerhead parameters, typically derived from test-wafer data.

    ``iso_bias`` is applied to edges with no neighbour within
    ``iso_distance``; ``dense_bias`` everywhere else.  Line ends (edges
    shorter than ``line_end_max_width``) receive a hammerhead extending
    ``hammer_ext`` outward and overhanging ``hammer_overhang`` per side.
    """

    iso_bias: int = -3
    dense_bias: int = 0
    iso_distance: int = 200
    line_end_max_width: int = 90
    hammer_ext: int = 12
    hammer_overhang: int = 6


def apply_rule_opc(drawn: Region, settings: RuleOpcSettings | None = None) -> Region:
    """Return the rule-corrected mask for a drawn region.

    Negative bias values shave the edge inward (needed when the process
    prints isolated features fat, as the flare-dominated model here does).
    """
    settings = settings or RuleOpcSettings()
    additions: list[Rect] = []
    subtractions: list[Rect] = []
    for start, end in drawn.edges():
        length = start.manhattan(end)
        nx, ny = _outward(start, end)
        x0, x1 = sorted((start.x, end.x))
        y0, y1 = sorted((start.y, end.y))
        # line-end hammerhead
        if length <= settings.line_end_max_width:
            additions.append(_hammer(x0, y0, x1, y1, nx, ny, settings))
            continue
        # bias: isolated vs dense edge
        bias = settings.iso_bias if _edge_isolated(drawn, x0, y0, x1, y1, nx, ny, settings.iso_distance) else settings.dense_bias
        if bias == 0:
            continue
        b = abs(bias)
        sign = 1 if bias > 0 else -1
        rect = Rect(
            x0 + min(sign * nx * b, 0),
            y0 + min(sign * ny * b, 0),
            x1 + max(sign * nx * b, 0),
            y1 + max(sign * ny * b, 0),
        )
        (additions if bias > 0 else subtractions).append(rect)
    mask = drawn
    if additions:
        mask = mask | Region(additions)
    if subtractions:
        mask = mask - Region(subtractions)
    return mask


def _outward(start, end) -> tuple[int, int]:
    dx = end.x - start.x
    dy = end.y - start.y
    sx = (dx > 0) - (dx < 0)
    sy = (dy > 0) - (dy < 0)
    return (sy, -sx)


def _edge_isolated(
    drawn: Region, x0: int, y0: int, x1: int, y1: int, nx: int, ny: int, dist: int
) -> bool:
    """True when nothing else lies within ``dist`` outward of the edge."""
    probe = Rect(
        x0 + min(nx * dist, nx),
        y0 + min(ny * dist, ny),
        x1 + max(nx * dist, nx),
        y1 + max(ny * dist, ny),
    )
    return not drawn.overlaps(Region(probe))


def _hammer(x0, y0, x1, y1, nx, ny, settings: RuleOpcSettings) -> Rect:
    """A hammerhead rect capping a line end."""
    ext = settings.hammer_ext
    over = settings.hammer_overhang
    if ny != 0:  # horizontal line end -> vertical extension
        ylo = y0 + min(ny * ext, 0)
        yhi = y1 + max(ny * ext, 0)
        return Rect(x0 - over, ylo, x1 + over, yhi)
    xlo = x0 + min(nx * ext, 0)
    xhi = x1 + max(nx * ext, 0)
    return Rect(xlo, y0 - over, xhi, y1 + over)
