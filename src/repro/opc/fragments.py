"""Edge fragmentation and mask reconstruction.

A fragment is a piece of a drawn edge that OPC moves rigidly along its
outward normal.  Fragmenting splits every boundary edge into segments no
longer than ``max_len``, with shorter corner fragments next to vertices so
corners can be corrected independently of edge centres.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry import Point, Rect, Region


@dataclass(frozen=True, slots=True)
class Fragment:
    """An axis-parallel edge segment with an outward normal and an offset.

    ``start``/``end`` follow the region's boundary orientation (interior
    on the left); ``normal`` is the outward unit direction; ``offset`` is
    the current OPC displacement in nm (positive = outward).
    """

    start: Point
    end: Point
    normal: tuple[int, int]
    offset: int = 0

    @property
    def length(self) -> int:
        return self.start.manhattan(self.end)

    @property
    def midpoint(self) -> Point:
        return Point((self.start.x + self.end.x) // 2, (self.start.y + self.end.y) // 2)

    @property
    def is_horizontal(self) -> bool:
        return self.start.y == self.end.y

    def moved(self, offset: int) -> "Fragment":
        return replace(self, offset=offset)

    def extrusion(self) -> tuple[Rect, bool] | None:
        """The rect swept by this fragment's offset and whether it is
        additive (outward) — None when the offset is zero."""
        if self.offset == 0:
            return None
        nx, ny = self.normal
        d = self.offset
        additive = d > 0
        d = abs(d)
        x0, x1 = sorted((self.start.x, self.end.x))
        y0, y1 = sorted((self.start.y, self.end.y))
        if additive:
            rect = Rect(x0 + min(nx * d, 0), y0 + min(ny * d, 0),
                        x1 + max(nx * d, 0), y1 + max(ny * d, 0))
        else:
            rect = Rect(x0 + min(-nx * d, 0), y0 + min(-ny * d, 0),
                        x1 + max(-nx * d, 0), y1 + max(-ny * d, 0))
        return rect, additive


def _outward_normal(start: Point, end: Point) -> tuple[int, int]:
    """Interior is to the left of start->end, so outward is to the right."""
    dx = end.x - start.x
    dy = end.y - start.y
    sx = (dx > 0) - (dx < 0)
    sy = (dy > 0) - (dy < 0)
    return (sy, -sx)


def fragment_region(
    region: Region, max_len: int = 120, corner_len: int = 40
) -> list[Fragment]:
    """Fragment every boundary edge of a region.

    Edges longer than ``2 * corner_len + max_len`` get dedicated corner
    fragments of ``corner_len`` at each end plus centre fragments of at
    most ``max_len``; shorter edges are split evenly into pieces under
    ``max_len``.
    """
    if max_len <= 0 or corner_len <= 0:
        raise ValueError("fragment lengths must be positive")
    fragments: list[Fragment] = []
    for start, end in region.edges():
        length = start.manhattan(end)
        normal = _outward_normal(start, end)
        cuts = _cut_positions(length, max_len, corner_len)
        prev = 0
        for cut in cuts[1:]:
            a = _along(start, end, prev, length)
            b = _along(start, end, cut, length)
            fragments.append(Fragment(a, b, normal))
            prev = cut
    return fragments


def _cut_positions(length: int, max_len: int, corner_len: int) -> list[int]:
    if length <= max_len:
        return [0, length]
    if length > 2 * corner_len + max_len:
        inner = length - 2 * corner_len
        n = -(-inner // max_len)
        cuts = [0, corner_len]
        for k in range(1, n):
            cuts.append(corner_len + inner * k // n)
        cuts.extend([length - corner_len, length])
        return cuts
    n = -(-length // max_len)
    return [length * k // n for k in range(n + 1)]


def _along(start: Point, end: Point, dist: int, length: int) -> Point:
    if length == 0:
        return start
    return Point(
        start.x + (end.x - start.x) * dist // length,
        start.y + (end.y - start.y) * dist // length,
    )


def reconstruct_mask(region: Region, fragments: list[Fragment]) -> Region:
    """Apply fragment offsets to the drawn region to produce the mask.

    Outward offsets add material, inward offsets remove it.  Corner
    consistency follows from the order: all additions first, then all
    subtractions (a conservative choice that keeps the mask connected).
    """
    additions: list[Rect] = []
    subtractions: list[Rect] = []
    for frag in fragments:
        ext = frag.extrusion()
        if ext is None:
            continue
        rect, additive = ext
        (additions if additive else subtractions).append(rect)
    mask = region
    if additions:
        mask = mask | Region(additions)
    if subtractions:
        mask = mask - Region(subtractions)
    return mask
