"""Geometric check primitives.

Distance semantics: all checks use the Chebyshev (square) metric, the
natural metric for Manhattan morphology.  Width and spacing are measured in
the scaled-by-2 lattice so that "exactly at the limit" passes and anything
strictly below fails, with no parity restrictions on rule values.
"""

from __future__ import annotations

from repro.geometry import GridIndex, Rect, Region
from repro.drc.violations import Violation
from repro.tech.rules import (
    AreaRule,
    DensityRule,
    EnclosureRule,
    ExtensionRule,
    SpacingRule,
    WidthRule,
)


def _downscale_rect(r: Rect) -> Rect:
    """Map a rect from the x2 lattice back to layout coordinates
    (outward-rounded so markers never shrink away)."""
    return Rect(r.x0 // 2, r.y0 // 2, -(-r.x1 // 2), -(-r.y1 // 2))


def check_width(region: Region, rule: WidthRule) -> list[Violation]:
    """Flag any part of ``region`` locally narrower than ``min_width``.

    Implemented as a morphological opening in the doubled lattice: a
    feature of width exactly ``min_width`` survives, ``min_width - 1``
    does not.
    """
    if region.is_empty or rule.min_width <= 1:
        return []
    doubled = region.scaled(2)
    d = rule.min_width - 1  # erode/dilate amount in x2 lattice
    narrow = doubled - doubled.opened(d)
    return [
        Violation(rule, _downscale_rect(c.bbox), message="narrow feature")
        for c in narrow.components()
    ]


def check_spacing(region: Region, rule: SpacingRule) -> list[Violation]:
    """Same-layer spacing, projection metric: two boundary edges that
    *face* each other (antiparallel outward normals, overlapping
    projection) across an empty gap narrower than ``min_space``.

    This is how production edge-based DRC measures spacing.  It covers
    separate features and same-feature notches alike, does not flag
    concave corners of a merged polygon (where perpendicular edges meet),
    and ignores pairs shielded by interposed geometry.  Corner-to-corner
    diagonal separations are not checked (the standard projection-rule
    simplification).
    """
    if region.is_empty:
        return []
    s = rule.min_space
    # classify boundary edges by outward normal (edges() orients the
    # interior to the left of travel)
    right_bounds: list[tuple[int, int, int]] = []   # outward +x: (x, y0, y1)
    left_bounds: list[tuple[int, int, int]] = []    # outward -x
    top_bounds: list[tuple[int, int, int]] = []     # outward +y: (y, x0, x1)
    bottom_bounds: list[tuple[int, int, int]] = []  # outward -y
    for a, b in region.edges():
        if a.x == b.x:
            if b.y > a.y:
                right_bounds.append((a.x, a.y, b.y))
            else:
                left_bounds.append((a.x, b.y, a.y))
        else:
            if b.x > a.x:
                bottom_bounds.append((a.y, a.x, b.x))
            else:
                top_bounds.append((a.y, b.x, a.x))

    out: list[Violation] = []
    out.extend(_facing_violations(region, rule, right_bounds, left_bounds, s, vertical=True))
    out.extend(_facing_violations(region, rule, top_bounds, bottom_bounds, s, vertical=False))
    return out


def _facing_violations(
    region: Region,
    rule: SpacingRule,
    low_edges: list[tuple[int, int, int]],
    high_edges: list[tuple[int, int, int]],
    s: int,
    vertical: bool,
) -> list[Violation]:
    """Pairs (low outward+, high outward-) with high.pos - low.pos in
    (0, s), overlapping spans, and an empty gap box."""
    index: GridIndex[tuple[int, int, int]] = GridIndex(cell_size=max(4 * s, 256))
    for edge in high_edges:
        pos, a0, a1 = edge
        bbox = Rect(pos, a0, pos, a1) if vertical else Rect(a0, pos, a1, pos)
        index.insert(bbox, edge)
    out: list[Violation] = []
    seen: set[tuple] = set()
    for pos, a0, a1 in low_edges:
        if vertical:
            window = Rect(pos + 1, a0, pos + s, a1)
        else:
            window = Rect(a0, pos + 1, a1, pos + s)
        for other in index.query(window):
            opos, b0, b1 = other
            gap = opos - pos
            if not (0 < gap < s):
                continue
            o0, o1 = max(a0, b0), min(a1, b1)
            if o0 >= o1:
                continue
            key = (pos, opos, o0, o1)
            if key in seen:
                continue
            seen.add(key)
            marker = Rect(pos, o0, opos, o1) if vertical else Rect(o0, pos, o1, opos)
            # shielded pairs (metal in between) are measured to the
            # interposed geometry instead, which forms its own pair
            if region.overlaps(Region(marker)):
                continue
            out.append(Violation(rule, marker, measured=gap, message="spacing"))
    return out


def check_layer_spacing(region: Region, other: Region, rule: SpacingRule) -> list[Violation]:
    """Spacing between two different layers: ``other`` may not come within
    ``min_space`` of ``region`` (overlap also flags)."""
    if region.is_empty or other.is_empty:
        return []
    halo = region.grown(rule.min_space)
    close = halo & other
    return [
        Violation(rule, c.bbox, message="inter-layer spacing")
        for c in close.components()
    ]


def check_enclosure(inner: Region, outer: Region, rule: EnclosureRule) -> list[Violation]:
    """Every point of ``inner`` must lie at least ``min_enclosure`` inside
    ``outer``.  A conditional rule only checks inner features that overlap
    the outer layer at all (e.g. poly contacts vs diffusion contacts)."""
    if inner.is_empty:
        return []
    if rule.conditional:
        kept = [c for c in inner.components() if c.overlaps(outer)]
        if not kept:
            return []
        # one-pass union of the kept components (their canonical rects
        # are already disjoint) — repeated `merged | c` is O(n^2)
        inner = Region([r for c in kept for r in c.rects()])
    e = rule.min_enclosure
    if not rule.two_sided:
        safe = outer.grown(-e) if e > 0 else outer
        exposed = inner - safe
        return [
            Violation(rule, c.bbox, message="insufficient enclosure")
            for c in exposed.components()
        ]
    # two-sided: each inner feature passes if fully covered AND enclosed
    # by e along at least one axis
    safe_x = outer.grown(-e, 0) if e > 0 else outer
    safe_y = outer.grown(0, -e) if e > 0 else outer
    out: list[Violation] = []
    for comp in inner.components():
        if not (safe_x.covers(comp) or safe_y.covers(comp)) or not outer.covers(comp):
            out.append(Violation(rule, comp.bbox, message="insufficient enclosure"))
    return out


def check_area(region: Region, rule: AreaRule) -> list[Violation]:
    """Connected components smaller than ``min_area``."""
    out: list[Violation] = []
    for comp in region.components():
        if comp.area < rule.min_area:
            out.append(
                Violation(rule, comp.bbox, measured=comp.area, message="small feature")
            )
    return out


def _density_origins(lo: int, hi: int, w: int, step: int) -> list[int]:
    """Window origins stepped by ``step``, with the last origin clamped
    to ``hi - w`` so every evaluated window is full size (sub-window
    slivers at the high edge have noisy fill fractions and would raise
    spurious violations).  An extent smaller than the window yields one
    clipped window — there is no full-size placement to clamp to."""
    out: list[int] = []
    x = lo
    while x + w <= hi:
        out.append(x)
        x += step
    last = max(lo, hi - w)
    if not out or out[-1] != last:
        out.append(last)
    return out


def check_density(region: Region, rule: DensityRule, extent: Rect) -> list[Violation]:
    """Tile the extent with ``rule.window`` squares (half-window step,
    high-edge windows clamped inward to stay full size) and flag tiles
    whose fill fraction leaves [min_density, max_density]."""
    out: list[Violation] = []
    w = rule.window
    step = max(w // 2, 1)
    for x in _density_origins(extent.x0, extent.x1, w, step):
        for y in _density_origins(extent.y0, extent.y1, w, step):
            tile = Rect(x, y, min(x + w, extent.x1), min(y + w, extent.y1))
            if tile.area > 0:
                density = (region & Region(tile)).area / tile.area
                if density < rule.min_density or density > rule.max_density:
                    out.append(
                        Violation(rule, tile, measured=density, message="density")
                    )
    return out


def check_extension(layer: Region, other: Region, rule: ExtensionRule) -> list[Violation]:
    """``layer`` must extend at least ``min_extension`` beyond ``other``
    wherever it crosses it (e.g. poly endcap past active).

    For each crossing rect the extension direction is inferred from which
    sides of the crossing the ``layer`` continues on.
    """
    crossing = layer & other
    out: list[Violation] = []
    ext = rule.min_extension
    for g in crossing.rects():
        above = Rect(g.x0, g.y1, g.x1, g.y1 + ext)
        below = Rect(g.x0, g.y0 - ext, g.x1, g.y0)
        right = Rect(g.x1, g.y0, g.x1 + ext, g.y1)
        left = Rect(g.x0 - ext, g.y0, g.x0, g.y1)
        continues_v = layer.overlaps(Region(Rect(g.x0, g.y1, g.x1, g.y1 + 1))) or layer.overlaps(
            Region(Rect(g.x0, g.y0 - 1, g.x1, g.y0))
        )
        continues_h = layer.overlaps(Region(Rect(g.x1, g.y0, g.x1 + 1, g.y1))) or layer.overlaps(
            Region(Rect(g.x0 - 1, g.y0, g.x0, g.y1))
        )
        if continues_v and not continues_h:
            required = [above, below]
        elif continues_h and not continues_v:
            required = [right, left]
        else:
            # ambiguous or isolated crossing: demand the vertical pair,
            # the common gate orientation
            required = [above, below]
        for req in required:
            if not layer.covers(Region(req)):
                out.append(Violation(rule, req, message="short extension"))
    return out
