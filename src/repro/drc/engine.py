"""The rule-deck runner.

Two execution modes share one rule dispatcher:

* the classic single-pass mode (``run_drc_regions``) — every rule over
  the whole extent, unchanged default;
* a tiled parallel + incremental mode (``run_drc_tiled``) — *local*
  rules (width, spacing, extension), whose interaction distance is
  bounded by the rule value, fan out per tile over a worker pool with a
  halo window and seam-ownership filtering, while *global* rules
  (enclosure, area, density), which reason about whole connected
  components or the whole extent, fan out one task per rule.  With a
  :class:`~repro.parallel.TileCache`, every task is keyed by a content
  hash of the geometry it can see, so a re-run after a local edit
  re-checks only dirty tiles.

Tiled mode reports the same violation *population* as single-pass mode,
except that a violation spanning a tile seam is reported per owning
tile (markers split at seams) — the standard tiled-DRC contract.  For a
fixed tiling, serial and parallel runs are identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

from repro.drc import checks
from repro.drc.violations import DrcReport, Violation
from repro.geometry import Rect, Region
from repro.layout import Cell, Layer
from repro.layout.store import StoreRects, StoreView
from repro.obs import get_registry, names, span
from repro.parallel import (
    Checkpoint,
    FaultPlan,
    SharedPayload,
    ShmArena,
    ShmRects,
    Tile,
    TileCache,
    TileExecutor,
    digest_parts,
    tile_grid,
)
from repro.tech.rules import (
    AreaRule,
    DensityRule,
    EnclosureRule,
    ExtensionRule,
    Rule,
    RuleDeck,
    SpacingRule,
    WidthRule,
)

# Rules whose result at a point depends only on geometry within the rule
# value of that point: safe to evaluate on halo-clipped tiles.
_LOCAL_KINDS = (WidthRule, SpacingRule, ExtensionRule)

_EMPTY = Region()
_EMPTY_DIGEST = _EMPTY.digest()


def _rule_layers(rule: Rule) -> list[Layer]:
    out = []
    for attr in ("layer", "other", "inner", "outer"):
        layer = getattr(rule, attr, None)
        if layer is not None:
            out.append(layer)
    return out


def _rule_reach(rule: Rule) -> int:
    """Interaction distance of a local rule."""
    if isinstance(rule, WidthRule):
        return rule.min_width
    if isinstance(rule, SpacingRule):
        return rule.min_space
    if isinstance(rule, ExtensionRule):
        return rule.min_extension
    return 0


def _check_rule(
    rule: Rule, get: Callable[[Layer], Region], extent: Rect
) -> list[Violation]:
    if isinstance(rule, WidthRule):
        return checks.check_width(get(rule.layer), rule)
    if isinstance(rule, SpacingRule):
        if rule.other is None:
            return checks.check_spacing(get(rule.layer), rule)
        return checks.check_layer_spacing(get(rule.layer), get(rule.other), rule)
    if isinstance(rule, EnclosureRule):
        return checks.check_enclosure(get(rule.inner), get(rule.outer), rule)
    if isinstance(rule, AreaRule):
        return checks.check_area(get(rule.layer), rule)
    if isinstance(rule, DensityRule):
        return checks.check_density(get(rule.layer), rule, extent)
    if isinstance(rule, ExtensionRule):
        return checks.check_extension(get(rule.layer), get(rule.other), rule)
    raise TypeError(f"no check implemented for {type(rule).__name__}")  # pragma: no cover


def run_drc(
    cell: Cell | None,
    deck: RuleDeck,
    window: Rect | None = None,
    *,
    jobs: int = 1,
    tile_nm: int | None = None,
    cache: TileCache | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    fault_plan: FaultPlan | None = None,
    checkpoint_file: str | None = None,
    resume: bool = False,
    region_source: Callable[[Layer, Rect | None], Region] | None = None,
    executor: TileExecutor | None = None,
    sharer: "Callable[[_DrcPayload], SharedPayload | None] | None" = None,
    store: StoreView | None = None,
) -> DrcReport:
    """Flatten ``cell`` per layer and run every rule in ``deck``.

    ``window`` restricts checking (and flattening) to a clip region, the
    standard way to DRC a block out of a larger chip.  ``jobs``,
    ``tile_nm``, ``cache``, or any fault-tolerance option switches to
    the tiled parallel/incremental engine (see :func:`run_drc_tiled`);
    the default stays the classic single-pass run.

    Fault tolerance follows :meth:`TileExecutor.run
    <repro.parallel.TileExecutor.run>`: tasks failing more than
    ``max_retries`` times are quarantined on ``report.quarantined``,
    ``timeout`` bounds each chunk's wall time, and ``checkpoint_file``
    (+ ``resume``) lets an interrupted run restart where it left off.

    The residency hooks mirror :func:`repro.litho.fullchip.scan_full_chip`:
    ``region_source(layer, window)`` replaces the per-call flatten with
    a caller-owned (typically session-cached) region lookup,
    ``executor`` reuses a caller-owned — typically persistent —
    :class:`TileExecutor`, and ``sharer`` serves a pre-packed shared-
    memory payload instead of packing a fresh arena per run.  All three
    leave results and cache keys byte-identical.

    ``store`` runs the deck against an out-of-core layout store instead
    of flattening ``cell`` (which may then be ``None``): tile tasks
    window their rects straight out of the mmapped file, workers get
    ``(path, offset, count)`` handles instead of geometry, and the
    report, cache keys and checkpoint signature stay bit-identical to
    the in-RAM run over the same layout.
    """
    if cell is None and store is None:
        raise ValueError("run_drc needs a cell or a store")
    if store is not None and region_source is not None:
        raise ValueError("store and region_source are mutually exclusive")
    layers_needed: set[Layer] = set()
    for rule in deck:
        layers_needed.update(_rule_layers(rule))
    regions: "dict[Layer, Region] | _StoreLayerRegions"
    if store is not None:
        store_regions = _StoreLayerRegions.from_view(store, layers_needed)
        if window is None:
            # no up-front flatten: tile tasks window rects straight out
            # of the store; global rules materialize their layers lazily
            regions = store_regions
        else:
            with span("drc.flatten"):
                regions = {
                    layer: store_regions.clipped(layer, window)
                    for layer in layers_needed
                }
    else:
        source = region_source if region_source is not None else cell.region
        with span("drc.flatten"):
            regions = {layer: source(layer, window) for layer in layers_needed}
    if window is not None:
        extent = window
    else:
        bbox = cell.bbox if cell is not None else store.extent
        extent = bbox or Rect(0, 0, 1, 1)
    fault_tolerant = (
        timeout is not None
        or fault_plan is not None
        or checkpoint_file is not None
    )
    tiled = (
        jobs > 1
        or tile_nm is not None
        or cache is not None
        or fault_tolerant
        or executor is not None
    )
    with span("drc.check"):
        if not tiled:
            report = run_drc_regions(regions, deck, extent)
        else:
            report = run_drc_tiled(
                regions,
                deck,
                extent,
                jobs=jobs,
                tile_nm=tile_nm or 4000,
                cache=cache,
                timeout=timeout,
                max_retries=max_retries,
                fault_plan=fault_plan,
                checkpoint_file=checkpoint_file,
                resume=resume,
                executor=executor,
                sharer=sharer,
            )
    report.cell_name = cell.name if cell is not None else store.cell_name
    registry = get_registry()
    registry.inc(names.DRC_RUNS)
    registry.inc(names.DRC_RULES_RUN, report.rules_run)
    registry.inc(names.DRC_VIOLATIONS, len(report.violations))
    return report


def run_drc_regions(
    regions: "dict[Layer, Region] | _StoreLayerRegions",
    deck: RuleDeck,
    extent: Rect,
) -> DrcReport:
    """Run a deck against pre-extracted per-layer regions (single pass)."""
    report = DrcReport(rules_run=len(deck))

    def get(layer: Layer) -> Region:
        return regions.get(layer, _EMPTY)

    for rule in deck:
        report.extend(_check_rule(rule, get, extent))
    return report


class _SharedLayerRegions:
    """Layer→Region mapping whose geometry lives in shared memory.

    Stands in for the payload's plain region dict on pooled runs: it
    pickles as ``{layer: ShmRects}`` handles only, and each worker
    rebuilds a layer's :class:`Region` — from the handle's canonical
    rect order, so digests and results are bit-identical — on first
    access, caching it for the rest of the process.  The parent-side
    instance is seeded with the original regions, so in-process reads
    never touch the mapping.
    """

    __slots__ = ("_handles", "_regions")

    def __init__(
        self,
        handles: dict[Layer, ShmRects],
        regions: dict[Layer, Region] | None = None,
    ):
        self._handles = handles
        self._regions: dict[Layer, Region] = dict(regions) if regions else {}

    def __getstate__(self) -> dict[Layer, ShmRects]:
        return self._handles

    def __setstate__(self, state: dict[Layer, ShmRects]) -> None:
        self._handles = state
        self._regions = {}

    def get(self, layer: Layer, default: Region | None = None) -> Region | None:
        region = self._regions.get(layer)
        if region is None:
            handle = self._handles.get(layer)
            if handle is None:
                return default
            region = Region.from_canonical_rects(handle.rects())
            self._regions[layer] = region
        return region


class _StoreLayerRegions:
    """Layer→Region mapping backed by an out-of-core layout store.

    The store-file twin of :class:`_SharedLayerRegions`: it pickles as
    ``{layer: StoreRects}`` handles (three scalars each) plus the
    per-layer digests recorded at ingest, and workers mmap the store
    read-only instead of reattaching a shm segment.  Tile tasks go
    through :meth:`clipped`, which materializes only the rects whose
    bbox touches the tile window — a worker's resident geometry is
    bounded by its tile, not the chip.  ``get`` (full materialization)
    is kept for global rules and the single-pass engine.

    Digests come from the store directory, where they were computed
    slab-by-slab during ingest with the exact ``Region.digest()``
    packing — cache keys and checkpoint signatures are interchangeable
    with the in-RAM path.
    """

    __slots__ = ("_handles", "_digests", "_regions")

    def __init__(
        self, handles: dict[Layer, StoreRects], digests: dict[Layer, str]
    ) -> None:
        self._handles = handles
        self._digests = digests
        self._regions: dict[Layer, Region] = {}

    @classmethod
    def from_view(cls, view: StoreView, layers: "set[Layer]") -> "_StoreLayerRegions":
        handles: dict[Layer, StoreRects] = {}
        digests: dict[Layer, str] = {}
        for layer in layers:
            store_layer = view.layer_for(layer)
            digests[layer] = store_layer.digest()
            if not store_layer.is_empty:
                handles[layer] = store_layer.handle()
        return cls(handles, digests)

    def __getstate__(self) -> tuple[dict[Layer, StoreRects], dict[Layer, str]]:
        return (self._handles, self._digests)

    def __setstate__(
        self, state: tuple[dict[Layer, StoreRects], dict[Layer, str]]
    ) -> None:
        self._handles, self._digests = state
        self._regions = {}

    def get(self, layer: Layer, default: Region | None = None) -> Region | None:
        region = self._regions.get(layer)
        if region is None:
            handle = self._handles.get(layer)
            if handle is None:
                return default if layer not in self._digests else _EMPTY
            region = Region.from_canonical_rects(handle.rects())
            self._regions[layer] = region
        return region

    def clipped(self, layer: Layer, window: Rect) -> Region:
        """``full_layer & Region(window)`` from windowed candidates only.

        Exact: canonical rects not touching the window contribute
        nothing to the intersection, and the candidates arrive in
        canonical order, so the clipped region (hence its digest) is
        bit-identical to intersecting the materialized layer.
        """
        handle = self._handles.get(layer)
        if handle is None:
            return _EMPTY
        local = Region.from_canonical_rects(handle.window(window))
        return local & Region(window)

    def digest(self, layer: Layer) -> str:
        """``Region.digest()`` of the full layer, from the directory."""
        return self._digests.get(layer, _EMPTY_DIGEST)

    def signature_items(self) -> tuple[tuple[Layer, str], ...]:
        """(layer, digest) pairs in the checkpoint-signature order."""
        return tuple(
            (layer, self._digests[layer])
            for layer in sorted(self._digests, key=repr)
        )


def _clip_layer(
    regions: "dict[Layer, Region] | _SharedLayerRegions | _StoreLayerRegions",
    layer: Layer,
    window: Rect,
) -> Region:
    """One layer clipped to a tile window, whatever backs the mapping."""
    if isinstance(regions, _StoreLayerRegions):
        return regions.clipped(layer, window)
    return regions.get(layer, _EMPTY) & Region(window)


def _layer_digest(
    regions: "dict[Layer, Region] | _SharedLayerRegions | _StoreLayerRegions",
    layer: Layer,
) -> str:
    """Full-layer digest without materializing store-backed layers."""
    if isinstance(regions, _StoreLayerRegions):
        return regions.digest(layer)
    region = regions.get(layer, _EMPTY)
    return region.digest()


@dataclass(frozen=True)
class _DrcPayload:
    """Read-only per-run state shipped to each worker once.

    ``regions`` is one of: the plain per-layer dict; a
    :class:`_SharedLayerRegions` store (pooled runs, via
    :func:`_share_drc_payload`) whose geometry travels through shared
    memory instead of the pickle wire; or a :class:`_StoreLayerRegions`
    mapping (store-backed runs) that serves windowed clips straight
    from the mmapped layout store.  All expose the same ``get`` access
    the tasks use.
    """

    regions: "dict[Layer, Region] | _SharedLayerRegions | _StoreLayerRegions"
    local_rules: tuple[Rule, ...]
    global_rules: tuple[Rule, ...]
    extent: Rect


def _share_drc_payload(payload: _DrcPayload) -> SharedPayload | None:
    """Repack the payload's per-layer regions into shared memory.

    Only rule decks and scalars then cross the pickle wire.  Returns
    ``None`` — caller ships the payload pickled — when shared memory is
    unavailable.
    """
    layers = list(payload.regions)
    arena = ShmArena.pack(
        [list(payload.regions[layer].rects()) for layer in layers]
    )
    if arena is None:
        return None
    store = _SharedLayerRegions(dict(zip(layers, arena.handles)), payload.regions)
    return SharedPayload(replace(payload, regions=store), arena)


# A task is ("tile", Tile) for the local deck over one tile window, or
# ("rule", i) for global_rules[i] over the full extent.
_Task = tuple[str, "Tile | int"]


def _drc_task(payload: _DrcPayload, task: _Task) -> tuple[list[Violation], float]:
    registry = get_registry()
    t0 = time.perf_counter()
    tag, obj = task
    if tag == "tile":
        tile: Tile = obj
        clipped: dict[Layer, Region] = {}

        def get(layer: Layer) -> Region:
            if layer not in clipped:
                clipped[layer] = _clip_layer(payload.regions, layer, tile.window)
            return clipped[layer]

        found: list[Violation] = []
        for rule in payload.local_rules:
            found.extend(_check_rule(rule, get, tile.window))
        out = [v for v in found if tile.owns(v.marker.center.x, v.marker.center.y)]
    else:
        rule = payload.global_rules[obj]
        out = _check_rule(
            rule, lambda layer: payload.regions.get(layer, _EMPTY), payload.extent
        )
    seconds = time.perf_counter() - t0
    registry.inc(names.drc_task(tag))
    registry.inc(names.DRC_VIOLATIONS_OWNED, len(out))
    registry.observe(names.DRC_TASK_TIMER, seconds)
    registry.observe_hist(names.DRC_TASK_SECONDS_HIST, seconds)
    return out, seconds


def _task_key(payload: _DrcPayload, task: _Task) -> str:
    tag, obj = task
    if tag == "tile":
        tile: Tile = obj
        layers = sorted(
            {l for rule in payload.local_rules for l in _rule_layers(rule)},
            key=repr,
        )
        return digest_parts(
            "drc-tile-v1",
            tuple(repr(r) for r in payload.local_rules),
            tile.core.as_tuple(),
            tile.window.as_tuple(),
            tile.x_edge,
            tile.y_edge,
            tuple(
                _clip_layer(payload.regions, l, tile.window).digest()
                for l in layers
            ),
        )
    rule = payload.global_rules[obj]
    return digest_parts(
        "drc-rule-v1",
        repr(rule),
        payload.extent.as_tuple(),
        tuple(_layer_digest(payload.regions, l) for l in _rule_layers(rule)),
    )


def run_drc_tiled(
    regions: "dict[Layer, Region] | _StoreLayerRegions",
    deck: RuleDeck,
    extent: Rect,
    *,
    tile_nm: int = 4000,
    jobs: int = 1,
    cache: TileCache | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    fault_plan: FaultPlan | None = None,
    checkpoint_file: str | None = None,
    resume: bool = False,
    executor: TileExecutor | None = None,
    sharer: "Callable[[_DrcPayload], SharedPayload | None] | None" = None,
) -> DrcReport:
    """Tiled parallel/incremental deck run over per-layer regions.

    Local rules run per tile with a halo window of twice the largest
    rule reach (clip artefacts hug the window boundary, so ownership
    filtering by marker centre discards them); global rules run as one
    whole-extent task each.  The report's ``tiles*`` counters cover all
    tasks — geometry tiles plus whole-extent rule tasks.

    Fault tolerance is the executor's (:meth:`TileExecutor.run
    <repro.parallel.TileExecutor.run>`): exhausted tasks land on
    ``report.quarantined`` instead of raising, and ``checkpoint_file``
    (+ ``resume``) persists completed tasks for interrupted runs.
    """
    t_start = time.perf_counter()
    local = tuple(r for r in deck if isinstance(r, _LOCAL_KINDS))
    global_rules = tuple(r for r in deck if not isinstance(r, _LOCAL_KINDS))
    payload = _DrcPayload(regions, local, global_rules, extent)

    halo = max((_rule_reach(r) for r in local), default=0) * 2
    halo = max(-(-halo // 64) * 64, 64)
    tiles = tile_grid(extent, tile_nm, halo) if local else []
    tasks: list[_Task] = [("tile", t) for t in tiles]
    tasks += [("rule", i) for i in range(len(global_rules))]

    report = DrcReport(rules_run=len(deck), tiles=len(tasks))
    results: dict[int, list[Violation]] = {}
    pending: list[tuple[int, _Task]] = list(enumerate(tasks))
    keys: dict[int, str] = {}
    if cache is not None:
        with span("drc.key"):
            pending = []
            for i, task in enumerate(tasks):
                key = _task_key(payload, task)
                keys[i] = key
                hit = cache.get(key)
                if hit is None:
                    pending.append((i, task))
                else:
                    results[i] = hit

    checkpoint: Checkpoint | None = None
    if checkpoint_file is not None:
        if isinstance(regions, _StoreLayerRegions):
            digest_items = regions.signature_items()
        else:
            digest_items = tuple(
                (layer, region.digest())
                for layer, region in sorted(regions.items(), key=lambda kv: repr(kv[0]))
            )
        signature = digest_parts(
            "drc-ckpt-v1",
            tuple(repr(r) for r in deck),
            extent.as_tuple(),
            tile_nm,
            digest_items,
        )
        checkpoint = Checkpoint.open(checkpoint_file, signature, resume=resume)

    with span("drc.compute"):
        # pooled runs move the per-layer geometry into shared memory so
        # the per-worker pickle payload stays constant-size; task keys
        # above were computed from the plain payload and are identical
        tile_executor = executor if executor is not None else TileExecutor(jobs)
        exec_payload: _DrcPayload | SharedPayload = payload
        if (
            pending
            # store-backed payloads already pickle as (path, offset, count)
            # handles; no shm arena needed
            and not isinstance(regions, _StoreLayerRegions)
            and (tile_executor.jobs > 1 or timeout is not None)
        ):
            shared = (sharer or _share_drc_payload)(payload)
            if shared is not None:
                exec_payload = shared
        outcome = tile_executor.run(
            _drc_task,
            exec_payload,
            [t for _, t in pending],
            keys=[i for i, _ in pending],
            timeout=timeout,
            max_retries=max_retries,
            fault_plan=fault_plan,
            checkpoint=checkpoint,
        )
    for (i, _), value in zip(pending, outcome.results):
        if value is None:  # quarantined: no result for this task
            continue
        violations, seconds = value
        results[i] = violations
        if i in outcome.resumed_keys:
            continue  # replayed from checkpoint; costs belong to the prior run
        report.compute_s += seconds
        if cache is not None:
            cache.put(keys[i], violations)

    report.quarantined = outcome.quarantined
    report.tiles_resumed = len(outcome.resumed_keys)
    report.tiles_computed = outcome.computed
    report.tiles_cached = report.tiles - len(pending)
    for i in range(len(tasks)):
        report.extend(results.get(i, []))
    report.elapsed_s = time.perf_counter() - t_start
    if checkpoint is not None:
        # the run completed (quarantine included): nothing left to resume
        checkpoint.clear()
    registry = get_registry()
    registry.inc(names.DRC_TILES, report.tiles)
    registry.inc(names.DRC_TILES_COMPUTED, report.tiles_computed)
    registry.inc(names.DRC_TILES_CACHED, report.tiles_cached)
    registry.inc(names.DRC_TILES_RESUMED, report.tiles_resumed)
    registry.inc(names.DRC_TILES_QUARANTINED, len(report.quarantined))
    return report
