"""The rule-deck runner."""

from __future__ import annotations

from repro.drc import checks
from repro.drc.violations import DrcReport
from repro.geometry import Rect, Region
from repro.layout import Cell, Layer
from repro.tech.rules import (
    AreaRule,
    DensityRule,
    EnclosureRule,
    ExtensionRule,
    RuleDeck,
    SpacingRule,
    WidthRule,
)


def run_drc(cell: Cell, deck: RuleDeck, window: Rect | None = None) -> DrcReport:
    """Flatten ``cell`` per layer and run every rule in ``deck``.

    ``window`` restricts checking (and flattening) to a clip region, the
    standard way to DRC a block out of a larger chip.
    """
    layers_needed: set[Layer] = set()
    for rule in deck:
        for attr in ("layer", "other", "inner", "outer"):
            layer = getattr(rule, attr, None)
            if layer is not None:
                layers_needed.add(layer)
    regions = {layer: cell.region(layer, window) for layer in layers_needed}
    extent = window or cell.bbox or Rect(0, 0, 1, 1)
    report = run_drc_regions(regions, deck, extent)
    report.cell_name = cell.name
    return report


def run_drc_regions(
    regions: dict[Layer, Region], deck: RuleDeck, extent: Rect
) -> DrcReport:
    """Run a deck against pre-extracted per-layer regions."""
    report = DrcReport(rules_run=len(deck))
    empty = Region()

    def get(layer: Layer) -> Region:
        return regions.get(layer, empty)

    for rule in deck:
        if isinstance(rule, WidthRule):
            report.extend(checks.check_width(get(rule.layer), rule))
        elif isinstance(rule, SpacingRule):
            if rule.other is None:
                report.extend(checks.check_spacing(get(rule.layer), rule))
            else:
                report.extend(
                    checks.check_layer_spacing(get(rule.layer), get(rule.other), rule)
                )
        elif isinstance(rule, EnclosureRule):
            report.extend(
                checks.check_enclosure(get(rule.inner), get(rule.outer), rule)
            )
        elif isinstance(rule, AreaRule):
            report.extend(checks.check_area(get(rule.layer), rule))
        elif isinstance(rule, DensityRule):
            report.extend(checks.check_density(get(rule.layer), rule, extent))
        elif isinstance(rule, ExtensionRule):
            report.extend(
                checks.check_extension(get(rule.layer), get(rule.other), rule)
            )
        else:  # pragma: no cover - future rule kinds
            raise TypeError(f"no check implemented for {type(rule).__name__}")
    return report
