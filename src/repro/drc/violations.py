"""Violation objects and reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.report import BaseReport, deprecated_alias
from repro.geometry import Rect
from repro.parallel.faults import QuarantinedTile
from repro.tech.rules import Rule, RuleSeverity


@dataclass(frozen=True, slots=True)
class Violation:
    """One DRC violation: the rule broken and a marker box locating it."""

    rule: Rule
    marker: Rect
    measured: float | None = None
    message: str = ""

    @property
    def severity(self) -> RuleSeverity:
        return self.rule.severity

    def __str__(self) -> str:
        loc = self.marker.as_tuple()
        meas = f" measured={self.measured:g}" if self.measured is not None else ""
        return f"{self.rule.name} @ {loc}{meas} {self.message}".rstrip()


@dataclass
class DrcReport(BaseReport):
    """Aggregated result of a DRC run."""

    cell_name: str = ""
    violations: list[Violation] = field(default_factory=list)
    rules_run: int = 0
    # tiled/incremental execution counters (zero for the single-pass path)
    tiles: int = 0
    tiles_computed: int = 0
    tiles_cached: int = 0
    tiles_resumed: int = 0
    quarantined: list[QuarantinedTile] = field(default_factory=list)
    compute_s: float = 0.0
    elapsed_s: float = 0.0

    # legacy spellings (pre-BaseReport), kept as warning aliases
    compute_seconds = deprecated_alias("compute_seconds", "compute_s")
    elapsed_seconds = deprecated_alias("elapsed_seconds", "elapsed_s")
    is_clean = deprecated_alias("is_clean", "ok")

    @property
    def findings(self) -> list[Violation]:
        return self.violations

    @property
    def cache_hit_rate(self) -> float:
        return self.tiles_cached / self.tiles if self.tiles else 0.0

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: list[Violation]) -> None:
        self.violations.extend(violations)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def by_rule(self) -> dict[str, list[Violation]]:
        out: dict[str, list[Violation]] = {}
        for v in self.violations:
            out.setdefault(v.rule.name, []).append(v)
        return out

    def count(self, severity: RuleSeverity | None = None) -> int:
        if severity is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.severity is severity)

    def minimum_only(self) -> "DrcReport":
        return DrcReport(
            self.cell_name,
            [v for v in self.violations if v.severity is RuleSeverity.MINIMUM],
            self.rules_run,
        )

    def summary(self) -> str:
        lines = [f"DRC report for {self.cell_name or '<regions>'}: "
                 f"{len(self.violations)} violations across {self.rules_run} rules"]
        if self.tiles:
            line = (
                f"  tiles: {self.tiles} ({self.tiles_computed} computed, "
                f"{self.tiles_cached} cached, {self.cache_hit_rate:.0%} hit rate)"
            )
            if self.tiles_resumed:
                line += f" [resumed: {self.tiles_resumed}]"
            lines.append(line)
        if self.quarantined:
            lines.append(f"  QUARANTINED: {len(self.quarantined)} tasks failed")
        for name, vs in sorted(self.by_rule().items()):
            lines.append(f"  {name:<16} {len(vs):>6}")
        return "\n".join(lines)
