"""Recommended-rule (DFM) compliance scoring.

Mirrors the scoring-model methodology the panelists later published:
each recommended rule gets a compliance score in [0, 1] — the fraction of
the relevant geometry that already meets the recommended (not just the
minimum) value — and the composite score is an importance-weighted mean.
A score of 1 means the layout is fully "DFM-compliant"; the benches
correlate this score against the simulated yield proxy (experiment F6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.drc import checks
from repro.geometry import Rect, Region
from repro.layout import Cell, Layer
from repro.tech.rules import (
    DensityRule,
    EnclosureRule,
    Rule,
    RuleDeck,
    RuleSeverity,
    SpacingRule,
    WidthRule,
)


@dataclass
class DfmScore:
    """Per-rule compliance plus the composite."""

    per_rule: dict[str, float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)

    @property
    def composite(self) -> float:
        if not self.per_rule:
            return 1.0
        total_w = sum(self.weights.get(name, 1.0) for name in self.per_rule)
        acc = sum(score * self.weights.get(name, 1.0) for name, score in self.per_rule.items())
        return acc / total_w if total_w else 1.0

    def worst(self, n: int = 5) -> list[tuple[str, float]]:
        return sorted(self.per_rule.items(), key=lambda kv: kv[1])[:n]

    def summary(self) -> str:
        lines = [f"DFM score: {self.composite:.3f}"]
        for name, score in sorted(self.per_rule.items()):
            lines.append(f"  {name:<16} {score:6.3f}")
        return "\n".join(lines)


def score_recommended_rules(
    cell: Cell,
    deck: RuleDeck,
    window: Rect | None = None,
    weights: dict[str, float] | None = None,
) -> DfmScore:
    """Score a layout against the deck's recommended rules."""
    rec = [r for r in deck if r.severity is RuleSeverity.RECOMMENDED]
    layers: set[Layer] = set()
    for rule in rec:
        for attr in ("layer", "other", "inner", "outer"):
            layer = getattr(rule, attr, None)
            if layer is not None:
                layers.add(layer)
    regions = {layer: cell.region(layer, window) for layer in layers}
    extent = window or cell.bbox or Rect(0, 0, 1, 1)
    score = DfmScore(weights=dict(weights or {}))
    for rule in rec:
        score.per_rule[rule.name] = _rule_compliance(rule, regions, extent)
    return score


def _rule_compliance(rule: Rule, regions: dict[Layer, Region], extent: Rect) -> float:
    empty = Region()
    if isinstance(rule, WidthRule):
        region = regions.get(rule.layer, empty)
        if region.is_empty:
            return 1.0
        # area fraction already at the recommended width
        doubled = region.scaled(2)
        wide = doubled.opened(rule.min_width - 1)
        return wide.area / doubled.area
    if isinstance(rule, SpacingRule) and rule.other is None:
        region = regions.get(rule.layer, empty)
        if region.is_empty:
            return 1.0
        violations = checks.check_spacing(region, rule)
        features = max(len(region.components()), 1)
        return max(0.0, 1.0 - len(violations) / features)
    if isinstance(rule, SpacingRule):
        region = regions.get(rule.layer, empty)
        other = regions.get(rule.other, empty)
        if region.is_empty or other.is_empty:
            return 1.0
        violations = checks.check_layer_spacing(region, other, rule)
        features = max(len(other.components()), 1)
        return max(0.0, 1.0 - len(violations) / features)
    if isinstance(rule, EnclosureRule):
        inner = regions.get(rule.inner, empty)
        outer = regions.get(rule.outer, empty)
        if inner.is_empty:
            return 1.0
        violations = checks.check_enclosure(inner, outer, rule)
        features = max(len(inner.components()), 1)
        return max(0.0, 1.0 - len(violations) / features)
    if isinstance(rule, DensityRule):
        region = regions.get(rule.layer, empty)
        violations = checks.check_density(region, rule, extent)
        # tiles checked: approximate from extent and half-window stepping
        step = max(rule.window // 2, 1)
        nx = max(1, -(-(extent.x1 - extent.x0) // step))
        ny = max(1, -(-(extent.y1 - extent.y0) // step))
        return max(0.0, 1.0 - len(violations) / (nx * ny))
    return 1.0
