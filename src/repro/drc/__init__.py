"""Design-rule checking: geometric checks, rule-deck runner, violation
reports, and the recommended-rule (DFM) compliance scoring model."""

from repro.drc.violations import Violation, DrcReport
from repro.drc.engine import run_drc, run_drc_regions
from repro.drc.checks import (
    check_width,
    check_spacing,
    check_layer_spacing,
    check_enclosure,
    check_area,
    check_density,
    check_extension,
)
from repro.drc.scoring import DfmScore, score_recommended_rules

__all__ = [
    "Violation",
    "DrcReport",
    "run_drc",
    "run_drc_regions",
    "check_width",
    "check_spacing",
    "check_layer_spacing",
    "check_enclosure",
    "check_area",
    "check_density",
    "check_extension",
    "DfmScore",
    "score_recommended_rules",
]
