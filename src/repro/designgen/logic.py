"""Random-logic block generator: placed standard-cell rows plus a
deterministic track router over M2/M3.

The router is intentionally simple — each net owns private vertical (M2)
and horizontal (M3) tracks, so generated blocks are correct by
construction — but the resulting geometry has everything the DFM engines
need: multi-layer wires, single vias to make redundant, line ends, bends,
and density gradients.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geometry import Point, Rect, Transform
from repro.layout import Cell, Layout
from repro.designgen.stdcells import StdCellLibrary, make_stdcell_library
from repro.tech.technology import Technology


@dataclass
class LogicBlockSpec:
    """Knobs for the generator; defaults give a laptop-scale block.

    ``weak_spots`` sprinkles marginal-but-legal configurations (facing
    line-end pairs at tight tip gaps, minimum-pitch jog pairs) into free
    M1 area — the legacy-IP weak spots DFM techniques exist to catch.
    ``congested`` packs the routing tracks at minimum pitch so wire
    spreading has actual slack to exploit.
    """

    rows: int = 4
    row_width_nm: int = 20000
    net_count: int = 24
    utilization: float = 0.8
    seed: int = 1
    name: str = "LOGIC"
    weak_spots: int = 0
    congested: bool = True


@dataclass
class PlacedPin:
    net_hint: str
    at: Point  # pin centre in block coordinates
    is_output: bool


@dataclass
class LogicBlock:
    """The generated block plus bookkeeping the experiments use."""

    layout: Layout
    top: Cell
    spec: LogicBlockSpec
    cell_count: int = 0
    net_count: int = 0
    pins: list[PlacedPin] = field(default_factory=list)
    routed_nets: list[tuple[PlacedPin, PlacedPin]] = field(default_factory=list)
    gaps: list[Rect] = field(default_factory=list)  # unfilled placement area


def generate_logic_block(
    tech: Technology,
    spec: LogicBlockSpec | None = None,
    library: StdCellLibrary | None = None,
) -> LogicBlock:
    spec = spec or LogicBlockSpec()
    library = library or make_stdcell_library(tech)
    rng = random.Random(spec.seed)
    layout = Layout(spec.name)
    top = layout.new_cell(spec.name)

    row_h = tech.cell_height
    names = library.names()
    weights = [3 if "INV" in n or "NAND" in n else 1 for n in names]

    outputs: list[PlacedPin] = []
    inputs: list[PlacedPin] = []
    block_gaps: list[Rect] = []
    cell_count = 0
    for row in range(spec.rows):
        x = 0
        y = row * row_h
        while x < spec.row_width_nm:
            if rng.random() > spec.utilization:
                gap_w = tech.poly_pitch * 2  # placement gap
                block_gaps.append(Rect(x, y, x + gap_w, y + row_h))
                x += gap_w
                continue
            name = rng.choices(names, weights)[0]
            std = library[name]
            if x + std.width_nm > spec.row_width_nm:
                block_gaps.append(Rect(x, y, spec.row_width_nm, y + row_h))
                break
            t = Transform(x, y)
            top.add_ref(std.cell, t)
            cell_count += 1
            for pin in std.pins.values():
                centre = t.apply_rect(pin.rect).center
                placed = PlacedPin(net_hint=pin.name, at=centre, is_output=(pin.name == "Z"))
                (outputs if placed.is_output else inputs).append(placed)
            x += std.width_nm
    layout.add_cell(top)  # pulls the referenced library cells into the library

    block = LogicBlock(layout=layout, top=top, spec=spec, cell_count=cell_count)
    block.gaps = block_gaps
    block.pins = outputs + inputs
    if outputs and inputs:
        _route_nets(tech, top, outputs, inputs, spec, rng, block)
    if spec.weak_spots > 0:
        _seed_weak_spots(tech, top, spec, rng)
    return block


def _seed_weak_spots(tech: Technology, top: Cell, spec: LogicBlockSpec, rng: random.Random) -> None:
    """Drop marginal M1 configurations into the free strip above the rows.

    Each weak spot is a facing line-end pair at exactly the minimum tip
    gap — DRC-legal, litho-marginal (pullback necking at both tips): the
    population DRC-Plus pattern checks and litho verification find.
    """
    L = tech.layers
    w = tech.metal_width
    tight_gap = tech.metal_space  # exactly at the limit: legal, marginal
    strip_y = spec.rows * tech.cell_height + 4 * tech.metal_space
    length = 8 * w
    pitch = 6 * (w + tech.metal_space)
    for k in range(spec.weak_spots):
        x = (k * pitch) % max(spec.row_width_nm - 2 * w, pitch)
        lane = (k * pitch) // max(spec.row_width_nm - 2 * w, pitch)
        y = strip_y + lane * (2 * length + tight_gap + 6 * tech.metal_space)
        top.add_rect(L.metal1, Rect(x, y, x + w, y + length))
        top.add_rect(L.metal1, Rect(x, y + length + tight_gap, x + w, y + 2 * length + tight_gap))


def _route_nets(
    tech: Technology,
    top: Cell,
    outputs: list[PlacedPin],
    inputs: list[PlacedPin],
    spec: LogicBlockSpec,
    rng: random.Random,
    block: LogicBlock,
) -> None:
    """Pin-aligned routing, correct by construction.

    Each net drops a via directly on its pins (no M1 modification at
    all), runs min-width M2 verticals at the pin x positions, and joins
    them with a min-width M3 horizontal on a private track.  Two-sided
    via enclosure makes min-width landings legal; an explicit spacing
    check between M2 verticals rejects nets whose pins sit too close to
    already-routed columns.
    """
    L = tech.layers
    v = tech.via_size
    wire_w = tech.metal_width
    s = tech.metal_space
    m3_pitch = wire_w + s if spec.congested else 2 * (wire_w + s)

    block_h = spec.rows * tech.cell_height
    n_m3 = max((block_h - 2 * wire_w) // m3_pitch, 1)

    used_m3: set[int] = set()
    m2_columns: list[Rect] = []
    via_cuts: list[Rect] = []
    via_space = int(1.2 * v)
    routed = 0
    attempts = 0
    while routed < spec.net_count and attempts < spec.net_count * 8:
        attempts += 1
        src = rng.choice(outputs)
        dst = rng.choice(inputs)
        if src.at.x == dst.at.x:
            continue
        m3_t = _pick_track(rng, n_m3, used_m3)
        if m3_t is None:
            break
        ym3 = wire_w + m3_t * m3_pitch
        columns = [_m2_column(pin.at, ym3, wire_w, v, tech.via_enclosure) for pin in (src, dst)]
        if any(_column_conflicts(col, m2_columns, s) for col in columns):
            continue
        if columns[0].expanded(s).overlaps(columns[1]):
            continue
        cuts = []
        for pin in (src, dst):
            for yy in (pin.at.y, ym3):
                cuts.append(Rect(pin.at.x - v // 2, yy - v // 2,
                                 pin.at.x - v // 2 + v, yy - v // 2 + v))
        if any(
            old.distance(new) < via_space for old in via_cuts for new in cuts
        ):
            continue
        # cut spacing is net-independent: the net's own cut pairs (e.g.
        # the two V2s on the M3 track) must clear it too
        if any(
            cuts[i].distance(cuts[j]) < via_space and cuts[i] != cuts[j]
            for i in range(len(cuts))
            for j in range(i + 1, len(cuts))
        ):
            continue
        used_m3.add(m3_t)
        m2_columns.extend(columns)
        via_cuts.extend(cuts)
        _draw_net(tech, top, src.at, dst.at, ym3, wire_w)
        block.routed_nets.append((src, dst))
        routed += 1
    block.net_count = routed


def _m2_column(pin: Point, ym3: int, wire_w: int, v: int, enc: int) -> Rect:
    lo = wire_w // 2
    hi = wire_w - lo
    ext = (v - v // 2) + enc  # past the via centre line: half a cut + enclosure
    y0, y1 = sorted((pin.y, ym3))
    column = Rect(pin.x - lo, y0 - ext, pin.x + hi, y1 + ext)
    # keep the column long enough for the minimum-area rule
    min_h = 3 * wire_w
    if column.height < min_h:
        pad = (min_h - column.height + 1) // 2
        column = Rect(column.x0, column.y0 - pad, column.x1, column.y1 + pad)
    return column


def _column_conflicts(column: Rect, existing: list[Rect], s: int) -> bool:
    halo = column.expanded(s)
    return any(halo.overlaps(other) for other in existing)


def _pick_track(rng: random.Random, n: int, used: set[int]) -> int | None:
    free = [i for i in range(n) if i not in used]
    if not free:
        return None
    return rng.choice(free)


def _draw_net(
    tech: Technology,
    top: Cell,
    src: Point,
    dst: Point,
    ym3: int,
    wire_w: int,
) -> None:
    """One net: V1 on each pin -> M2 verticals -> V2 -> M3 horizontal."""
    L = tech.layers
    v = tech.via_size
    enc = tech.via_enclosure
    lo = wire_w // 2
    hi = wire_w - lo

    for pin in (src, dst):
        # via1 directly on the pin's M1 landing
        top.add_rect(L.via1, Rect(pin.x - v // 2, pin.y - v // 2,
                                  pin.x - v // 2 + v, pin.y - v // 2 + v))
        # M2 vertical from the pin to the M3 track, extended past both
        # vias by the (two-sided) enclosure
        top.add_rect(L.metal2, _m2_column(pin, ym3, wire_w, v, enc))
        # via2 at the M3 junction
        top.add_rect(L.via2, Rect(pin.x - v // 2, ym3 - v // 2,
                                  pin.x - v // 2 + v, ym3 - v // 2 + v))
    # M3 span, extended past the end vias by the enclosure
    hx0, hx1 = sorted((src.x, dst.x))
    end_ext = (v - v // 2) + enc
    top.add_rect(L.metal3, Rect(hx0 - end_ext, ym3 - lo, hx1 + end_ext, ym3 + hi))


def insert_fillers(tech: Technology, block: LogicBlock) -> int:
    """Drop filler cells into the recorded placement gaps, in place.

    Returns the number of fillers placed.  Gaps are tiled with the widest
    filler that fits (pitch granularity), keeping rails and well
    continuity across each row — what placement legalization does after
    detail placement.
    """
    from repro.designgen.stdcells import make_filler_cell

    pitch = tech.poly_pitch
    fillers: dict[int, Cell] = {}
    placed = 0
    for gap in block.gaps:
        x = gap.x0
        while gap.x1 - x >= pitch:
            n_pitches = min((gap.x1 - x) // pitch, 8)
            cell = fillers.get(n_pitches)
            if cell is None:
                cell = make_filler_cell(tech, n_pitches)
                fillers[n_pitches] = cell
                block.layout.add_cell(cell)
            block.top.add_ref(cell, Transform(x, gap.y0))
            placed += 1
            x += n_pitches * pitch
    return placed
