"""Classic test structures: gratings, combs, serpentines, via chains, and
DPT torture patterns — the calibration workloads of every DFM experiment."""

from __future__ import annotations

from repro.geometry import Point, Rect, Region
from repro.layout import Cell
from repro.tech.technology import Technology


def line_grating(
    width: int, pitch: int, n_lines: int, length: int, origin: Point = Point(0, 0)
) -> Region:
    """``n_lines`` vertical lines of ``width`` at ``pitch``."""
    if width <= 0 or pitch <= width or n_lines < 1:
        raise ValueError("need 0 < width < pitch and n_lines >= 1")
    return Region(
        [
            Rect(origin.x + i * pitch, origin.y, origin.x + i * pitch + width, origin.y + length)
            for i in range(n_lines)
        ]
    )


def isolated_line(width: int, length: int, origin: Point = Point(0, 0)) -> Region:
    return Region(Rect(origin.x, origin.y, origin.x + width, origin.y + length))


def comb_structure(
    finger_width: int,
    finger_space: int,
    n_fingers: int,
    finger_length: int,
    origin: Point = Point(0, 0),
) -> Region:
    """Two interdigitated combs — the canonical shorts monitor.

    Fingers alternate between a bottom spine and a top spine; any bridge
    between adjacent fingers shorts the combs.
    """
    pitch = finger_width + finger_space
    spine = finger_width * 2
    total_w = n_fingers * pitch + finger_width
    rects = [
        # bottom and top spines
        Rect(origin.x, origin.y, origin.x + total_w, origin.y + spine),
        Rect(origin.x, origin.y + spine + finger_length + 2 * finger_space,
             origin.x + total_w, origin.y + 2 * spine + finger_length + 2 * finger_space),
    ]
    for i in range(n_fingers):
        x = origin.x + i * pitch + finger_width
        if i % 2 == 0:  # bottom comb finger
            rects.append(Rect(x, origin.y + spine, x + finger_width,
                              origin.y + spine + finger_length + finger_space))
        else:  # top comb finger
            rects.append(Rect(x, origin.y + spine + finger_space, x + finger_width,
                              origin.y + spine + finger_length + 2 * finger_space))
    return Region(rects)


def serpentine(
    wire_width: int,
    wire_space: int,
    n_turns: int,
    leg_length: int,
    origin: Point = Point(0, 0),
) -> Region:
    """A single snaking wire — the canonical opens monitor."""
    pitch = wire_width + wire_space
    rects = []
    for i in range(n_turns):
        x = origin.x + i * pitch
        rects.append(Rect(x, origin.y, x + wire_width, origin.y + leg_length))
        # connector alternating top/bottom
        if i < n_turns - 1:
            if i % 2 == 0:
                rects.append(Rect(x, origin.y + leg_length - wire_width,
                                  x + pitch + wire_width, origin.y + leg_length))
            else:
                rects.append(Rect(x, origin.y, x + pitch + wire_width, origin.y + wire_width))
    return Region(rects)


def via_chain(tech: Technology, n_links: int, origin: Point = Point(0, 0)) -> Cell:
    """A daisy chain alternating M1 and M2 links joined by single vias."""
    L = tech.layers
    v = tech.via_size
    enc = tech.via_enclosure
    link_w = v + 2 * enc
    link_len = 4 * v + 4 * enc
    step = link_len - (v + 2 * enc)
    cell = Cell(f"VIACHAIN_{n_links}")
    x, y = origin.x, origin.y
    for i in range(n_links):
        layer = L.metal1 if i % 2 == 0 else L.metal2
        cell.add_rect(layer, Rect(x, y, x + link_len, y + link_w))
        via_x = x + link_len - enc - v
        cell.add_rect(L.via1, Rect(via_x, y + enc, via_x + v, y + enc + v))
        x += step
    # final landing pad so the last via is enclosed on both layers
    layer = L.metal1 if n_links % 2 == 0 else L.metal2
    cell.add_rect(layer, Rect(x, y, x + link_len, y + link_w))
    return cell


def dpt_torture(pitch: int, width: int, rows: int, origin: Point = Point(0, 0)) -> Region:
    """A brick-wall pattern whose staggered row offsets create dense
    conflict graphs at tight pitch — the DPT stress workload."""
    brick_len = 6 * pitch
    rects = []
    for j in range(rows):
        y = origin.y + j * pitch
        offset = (j % 3) * (brick_len // 3)
        for k in range(4):
            x = origin.x + offset + k * (brick_len + pitch)
            rects.append(Rect(x, y, x + brick_len, y + width))
    return Region(rects)


def line_end_pairs(
    width: int, gap: int, n_pairs: int, length: int, pitch: int, origin: Point = Point(0, 0)
) -> Region:
    """Facing line-end pairs at a given tip-to-tip gap — the classic
    pullback/bridge monitor for DRC-Plus pattern studies."""
    rects = []
    for i in range(n_pairs):
        x = origin.x + i * pitch
        rects.append(Rect(x, origin.y, x + width, origin.y + length))
        rects.append(Rect(x, origin.y + length + gap, x + width, origin.y + 2 * length + gap))
    return Region(rects)
