"""SRAM-like arrays: a dense bitcell replicated with AREF.

The bitcell is a caricature of a 6T cell — tight poly/active/contact/M1
geometry at minimum rules — dense and regular, the opposite design style
from random logic, which is exactly what the pattern-catalog KL-divergence
experiment needs.
"""

from __future__ import annotations

from repro.geometry import Rect, Transform
from repro.layout import Cell, Layout
from repro.tech.technology import Technology


def make_sram_bitcell(tech: Technology) -> Cell:
    n = tech.node_nm
    L = tech.layers
    v = tech.via_size
    enc = tech.via_enclosure
    poly_w = tech.poly_width
    # a tight cell: 10n x 8n
    w, h = 10 * n, 8 * n
    cell = Cell("SRAM_BIT")
    # two horizontal active strips
    cell.add_rect(L.active, Rect(n, n, w - n, 3 * n))
    cell.add_rect(L.active, Rect(n, h - 3 * n, w - n, h - n))
    # two vertical poly gates crossing both
    for gx in (3 * n, 7 * n):
        cell.add_rect(L.poly, Rect(gx, 0, gx + poly_w, h))
    # bitline contacts + stubs
    for cx in (int(1.2 * n), w - int(1.2 * n) - v):
        for cy in (2 * n - v // 2, h - 2 * n - v // 2):
            cell.add_rect(L.contact, Rect(cx, cy, cx + v, cy + v))
            cell.add_rect(L.metal1, Rect(cx - enc, cy - enc, cx + v + enc, cy + v + enc))
    # wordline in M1 across the middle
    cell.add_rect(L.metal1, Rect(0, h // 2 - n // 2, w, h // 2 + n - n // 2))
    return cell


def generate_sram_array(
    tech: Technology, rows: int = 16, cols: int = 16, name: str = "SRAM"
) -> Layout:
    layout = Layout(name)
    bit = make_sram_bitcell(tech)
    layout.add_cell(bit)
    top = layout.new_cell(name)
    bb = bit.bbox
    top.add_ref(bit, Transform(0, 0), columns=cols, rows=rows, dx=bb.width, dy=bb.height)
    # bitlines in M2 over the columns
    L = tech.layers
    wire_w = tech.via_size + 2 * tech.via_enclosure
    for c in range(cols):
        x = c * bb.width + bb.width // 2
        top.add_rect(L.metal2, Rect(x - wire_w // 2, 0, x + wire_w - wire_w // 2, rows * bb.height))
    return layout
