"""Parametric standard-cell library.

Cells follow the classic horizontal-rail template: NMOS active strip at
the bottom, PMOS strip at the top, vertical poly gates on the poly pitch,
contacted source/drain diffusion, M1 power rails, and M1 pin stubs.  The
geometry scales with the technology node so the same generator serves the
65/45/32 nm experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Orientation, Rect, Transform
from repro.layout import Cell, Layer
from repro.tech.technology import Technology


@dataclass
class PinInfo:
    """A logical pin and where to hook a router to it."""

    name: str
    layer: Layer
    rect: Rect


@dataclass
class StdCell:
    """A generated cell plus its pin map and drive parameters."""

    cell: Cell
    pins: dict[str, PinInfo] = field(default_factory=dict)
    width_nm: int = 0
    n_gates: int = 0
    drive_width_nm: int = 0
    logical_effort: float = 1.0
    parasitic: float = 1.0


@dataclass
class StdCellLibrary:
    tech: Technology
    cells: dict[str, StdCell] = field(default_factory=dict)

    def __getitem__(self, name: str) -> StdCell:
        return self.cells[name]

    def names(self) -> list[str]:
        return sorted(self.cells)


def abut_cells(
    left: Cell, right: Cell, *, flip_right: bool = False, name: str | None = None
) -> Cell:
    """Place ``right`` flush against ``left``'s right edge, rails aligned.

    The pair shares exactly one vertical boundary: ``left``'s bounding box
    is normalized to the origin, and ``right``'s left edge (its *right*
    edge when ``flip_right`` mirrors it about the vertical axis) lands on
    ``x = width(left)`` with zero gap and zero overlap.  Both cells keep
    their own hierarchy — the result is a two-reference parent cell, which
    is what a placement row produces and what the compliance matrix
    windows over.
    """
    lb, rb = left.bbox, right.bbox
    if lb is None or rb is None:
        raise ValueError("cannot abut an empty cell")
    boundary = lb.x1 - lb.x0
    pair = Cell(name or f"{left.name}__{'FS' if flip_right else 'N'}__{right.name}")
    pair.add_ref(left, Transform(-lb.x0, -lb.y0))
    if flip_right:
        # MX180 maps x -> dx - x, so [rb.x0, rb.x1] lands on
        # [dx - rb.x1, dx - rb.x0]; dx = boundary + rb.x1 puts the
        # mirrored edge exactly on the shared boundary.
        pair.add_ref(right, Transform(boundary + rb.x1, -rb.y0, Orientation.MX180))
    else:
        pair.add_ref(right, Transform(boundary - rb.x0, -rb.y0))
    return pair


def make_filler_cell(tech: Technology, n_pitches: int = 1) -> Cell:
    """A filler: rails, well, and implants only — drops into placement
    gaps so the rows stay continuous and M1 density stays uniform."""
    if n_pitches < 1:
        raise ValueError("filler needs at least one pitch")
    n = tech.node_nm
    L = tech.layers
    height = tech.cell_height
    width = n_pitches * tech.poly_pitch
    rail_h = 2 * n
    cell = Cell(f"FILL_X{n_pitches}")
    cell.add_rect(L.metal1, Rect(0, 0, width, rail_h))
    cell.add_rect(L.metal1, Rect(0, height - rail_h, width, height))
    cell.add_rect(L.nwell, Rect(0, height // 2, width, height))
    cell.add_rect(L.implant_n, Rect(0, rail_h, width, height // 2))
    cell.add_rect(L.implant_p, Rect(0, height // 2, width, height - rail_h))
    return cell


def make_stdcell_library(tech: Technology) -> StdCellLibrary:
    """Build the standard set: INV_X1, INV_X2, BUF_X1, NAND2_X1, NOR2_X1,
    AOI21_X1, and DFF_X1 (a composite block)."""
    lib = StdCellLibrary(tech=tech)
    lib.cells["INV_X1"] = _simple_cell(tech, "INV_X1", n_gates=1, drive=1, g=1.0, p=1.0)
    lib.cells["INV_X2"] = _simple_cell(tech, "INV_X2", n_gates=2, drive=2, g=1.0, p=1.0)
    lib.cells["BUF_X1"] = _simple_cell(tech, "BUF_X1", n_gates=2, drive=1, g=1.0, p=2.0)
    lib.cells["NAND2_X1"] = _simple_cell(tech, "NAND2_X1", n_gates=2, drive=1, g=4.0 / 3.0, p=2.0)
    lib.cells["NOR2_X1"] = _simple_cell(tech, "NOR2_X1", n_gates=2, drive=1, g=5.0 / 3.0, p=2.0)
    lib.cells["AOI21_X1"] = _simple_cell(tech, "AOI21_X1", n_gates=3, drive=1, g=2.0, p=3.0)
    lib.cells["DFF_X1"] = _simple_cell(tech, "DFF_X1", n_gates=6, drive=1, g=1.0, p=4.0)
    return lib


def _simple_cell(
    tech: Technology, name: str, n_gates: int, drive: int, g: float, p: float
) -> StdCell:
    """The shared physical template, parameterized by gate count."""
    n = tech.node_nm
    L = tech.layers
    height = tech.cell_height              # 14n
    pitch = tech.poly_pitch                # 4n
    poly_w = tech.poly_width
    v = tech.via_size
    enc = tech.via_enclosure
    width = (n_gates + 1) * pitch

    cell = Cell(name)
    rail_h = 2 * n
    enc_ct = max(enc // 2, 2)  # active/poly enclosure of contacts
    # power rails (M1)
    cell.add_rect(L.metal1, Rect(0, 0, width, rail_h))
    cell.add_rect(L.metal1, Rect(0, height - rail_h, width, height))
    # diffusion strips (3n tall each, 2n apart so N and P stay separate)
    nact_y0, nact_y1 = rail_h + n, rail_h + 4 * n
    pact_y0, pact_y1 = height - rail_h - 4 * n, height - rail_h - n
    # active must enclose the outermost contact columns
    act_margin = pitch // 2 - v // 2 - enc_ct - 1  # -1: odd via sizes round asymmetrically
    cell.add_rect(L.active, Rect(act_margin, nact_y0, width - act_margin, nact_y1))
    cell.add_rect(L.active, Rect(act_margin, pact_y0, width - act_margin, pact_y1))
    cell.add_rect(L.nwell, Rect(0, (nact_y1 + pact_y0) // 2, width, height))
    cell.add_rect(L.implant_n, Rect(0, rail_h, width, nact_y1 + n))
    cell.add_rect(L.implant_p, Rect(0, pact_y0 - n, width, height - rail_h))

    ext = int(1.3 * n) + 2  # poly endcap beyond active
    gate_xs = []
    for i in range(n_gates):
        gx = (i + 1) * pitch - poly_w // 2
        gate_xs.append(gx)
        cell.add_rect(L.poly, Rect(gx, nact_y0 - ext, gx + poly_w, nact_y1 + ext))
        cell.add_rect(L.poly, Rect(gx, pact_y0 - ext, gx + poly_w, pact_y1 + ext))

    # source/drain contacts between gates, tied to rails alternately.
    # M1 columns are drawn at contact width (two-sided enclosure style:
    # the metal encloses each cut vertically only) so adjacent columns at
    # the half-pitch keep legal spacing.
    pins: dict[str, PinInfo] = {}
    for i in range(n_gates + 1):
        cx = i * pitch + pitch // 2 - v // 2
        if i == 0 or i == n_gates or i % 2 == 0:
            # rail-side contact columns with M1 straps to the rails
            for (ay0, ay1, rail_y0, _rail_y1) in (
                (nact_y0, nact_y1, 0, rail_h),
                (pact_y0, pact_y1, height - rail_h, height),
            ):
                cy = (ay0 + ay1) // 2 - v // 2
                contact = Rect(cx, cy, cx + v, cy + v)
                if i == 0 or i == n_gates:
                    cell.add_rect(L.contact, contact)
                    if rail_y0 == 0:
                        cell.add_rect(L.metal1, Rect(cx, 0, cx + v, cy + v + enc))
                    else:
                        cell.add_rect(L.metal1, Rect(cx, cy - enc, cx + v, height))
        else:
            # internal/output node contact with an M1 stub (the pin)
            cy = (nact_y0 + nact_y1) // 2 - v // 2
            cy_p = (pact_y0 + pact_y1) // 2 - v // 2
            cell.add_rect(L.contact, Rect(cx, cy, cx + v, cy + v))
            cell.add_rect(L.contact, Rect(cx, cy_p, cx + v, cy_p + v))
            stub = Rect(cx, cy - enc, cx + v, cy_p + v + enc)
            cell.add_rect(L.metal1, stub)
            pin_name = "Z" if "Z" not in pins else f"N{i}"
            pins[pin_name] = PinInfo(pin_name, L.metal1, stub)

    # input pins: poly landing with contact in the mid-track
    mid_y = height // 2 - v // 2
    for k, gx in enumerate(gate_xs):
        pad_w = v + 2 * enc_ct
        px0 = gx + poly_w // 2 - pad_w // 2
        pad = Rect(px0, mid_y - enc_ct, px0 + pad_w, mid_y + v + enc_ct)
        cell.add_rect(L.poly, pad)
        cell.add_rect(L.contact, Rect(px0 + enc_ct, mid_y, px0 + enc_ct + v, mid_y + v))
        m1pad = Rect(px0 + enc_ct, mid_y - enc, px0 + enc_ct + v, mid_y + v + enc)
        cell.add_rect(L.metal1, m1pad)
        pins[f"A{k}"] = PinInfo(f"A{k}", L.metal1, m1pad)

    if "Z" not in pins:  # single-gate cells: output at the right contact column
        cx = n_gates * pitch + pitch // 2 - v // 2
        cy = (nact_y0 + nact_y1) // 2 - v // 2
        cy_p = (pact_y0 + pact_y1) // 2 - v // 2
        stub = Rect(cx, cy - enc, cx + v, cy_p + v + enc)
        cell.add_rect(L.contact, Rect(cx, cy, cx + v, cy + v))
        cell.add_rect(L.contact, Rect(cx, cy_p, cx + v, cy_p + v))
        cell.add_rect(L.metal1, stub)
        pins["Z"] = PinInfo("Z", L.metal1, stub)

    return StdCell(
        cell=cell,
        pins=pins,
        width_nm=width,
        n_gates=n_gates,
        drive_width_nm=drive * 4 * n,
        logical_effort=g,
        parasitic=p,
    )
