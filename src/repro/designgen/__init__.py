"""Synthetic design generators.

Every experiment needs layouts; since production designs are proprietary,
these generators produce seeded, reproducible stand-ins: a parametric
standard-cell library, routed random-logic blocks, SRAM-like arrays, and
the classic litho/yield test structures.
"""

from repro.designgen.stdcells import (
    StdCellLibrary,
    abut_cells,
    make_stdcell_library,
    make_filler_cell,
)
from repro.designgen.logic import generate_logic_block, insert_fillers, LogicBlockSpec
from repro.designgen.arrays import make_sram_bitcell, generate_sram_array
from repro.designgen.teststructures import (
    line_grating,
    isolated_line,
    comb_structure,
    serpentine,
    via_chain,
    dpt_torture,
    line_end_pairs,
)

__all__ = [
    "StdCellLibrary",
    "abut_cells",
    "make_stdcell_library",
    "make_filler_cell",
    "generate_logic_block",
    "insert_fillers",
    "LogicBlockSpec",
    "make_sram_bitcell",
    "generate_sram_array",
    "line_grating",
    "isolated_line",
    "comb_structure",
    "serpentine",
    "via_chain",
    "dpt_torture",
    "line_end_pairs",
]
