"""Statistical timing: per-gate channel lengths sampled from litho CD
distributions propagate to path-delay distributions.

The panel-era argument against pure corner timing: corners assume every
gate sits at its worst case simultaneously, which over-margins designs;
statistically, path delays concentrate.  This module quantifies both —
the corner (all-worst) delay and the sampled distribution — so the
margin the corner wastes is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timing.delay import DelayModel
from repro.timing.paths import TimingPath, path_delay_ps


@dataclass
class StatisticalTiming:
    """Sampled delays for one path plus the deterministic references."""

    name: str
    nominal_ps: float
    corner_ps: float
    samples_ps: np.ndarray

    @property
    def mean_ps(self) -> float:
        return float(self.samples_ps.mean())

    @property
    def sigma_ps(self) -> float:
        return float(self.samples_ps.std(ddof=1)) if len(self.samples_ps) > 1 else 0.0

    def quantile_ps(self, q: float) -> float:
        return float(np.quantile(self.samples_ps, q))

    @property
    def corner_margin_percent(self) -> float:
        """How far the all-worst corner sits above the sampled 99.9th
        percentile — the pessimism corner signoff pays."""
        p999 = self.quantile_ps(0.999)
        return 100.0 * (self.corner_ps - p999) / p999 if p999 else 0.0


def statistical_path_delays(
    path: TimingPath,
    length_sigma_nm: float,
    worst_length_nm: float,
    n_samples: int = 500,
    seed: int = 1,
    model: DelayModel | None = None,
) -> StatisticalTiming:
    """Sample per-stage channel lengths independently (Gaussian around
    drawn, truncated at 3 sigma) and accumulate path delays.

    ``worst_length_nm`` is the deterministic slow-corner length every
    stage would be assigned under corner signoff.
    """
    model = model or DelayModel()
    rng = np.random.default_rng(seed)
    nominal = path_delay_ps(path, model)
    corner = path_delay_ps(
        path.with_lengths({s.name: worst_length_nm for s in path.stages}), model
    )
    samples = np.empty(n_samples)
    for k in range(n_samples):
        lengths = {}
        for stage in path.stages:
            delta = rng.normal(0.0, length_sigma_nm)
            delta = max(-3 * length_sigma_nm, min(3 * length_sigma_nm, delta))
            lengths[stage.name] = stage.drawn_length_nm + delta
        samples[k] = path_delay_ps(path.with_lengths(lengths), model)
    return StatisticalTiming(
        name=path.name, nominal_ps=nominal, corner_ps=corner, samples_ps=samples
    )
