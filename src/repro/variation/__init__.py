"""Statistical process variation: sampled dose/focus conditions, CD
distributions with process-capability metrics, and statistical timing —
the "beyond corners" analysis the panel's variability debate pointed at.
"""

from repro.variation.sampling import ProcessSampler, ProcessSample
from repro.variation.cd_stats import CdDistribution, simulate_cd_distribution, process_capability
from repro.variation.stat_timing import StatisticalTiming, statistical_path_delays

__all__ = [
    "ProcessSampler",
    "ProcessSample",
    "CdDistribution",
    "simulate_cd_distribution",
    "process_capability",
    "StatisticalTiming",
    "statistical_path_delays",
]
