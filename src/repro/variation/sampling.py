"""Sampled process conditions.

Corners bound the process box; sampling fills it.  Dose is modelled as
Gaussian around nominal, defocus as the absolute value of a Gaussian
(focus errors are symmetric but blur is even in defocus) — both truncated
at 3 sigma to keep samples physical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ProcessSample:
    dose: float
    defocus_nm: float


@dataclass(frozen=True, slots=True)
class ProcessSampler:
    """Gaussian process-condition sampler."""

    dose_sigma: float = 0.02
    defocus_sigma_nm: float = 40.0
    truncate_sigma: float = 3.0

    def sample(self, n: int, seed: int = 1) -> list[ProcessSample]:
        rng = np.random.default_rng(seed)
        t = self.truncate_sigma
        doses = np.clip(
            rng.normal(1.0, self.dose_sigma, n),
            1.0 - t * self.dose_sigma,
            1.0 + t * self.dose_sigma,
        )
        defocus = np.abs(
            np.clip(
                rng.normal(0.0, self.defocus_sigma_nm, n),
                -t * self.defocus_sigma_nm,
                t * self.defocus_sigma_nm,
            )
        )
        return [ProcessSample(float(d), float(f)) for d, f in zip(doses, defocus)]
