"""CD distributions under sampled process conditions, and process
capability (Cpk) against the CD tolerance band."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Region
from repro.litho.cd import Cutline
from repro.litho.model import LithoModel
from repro.variation.sampling import ProcessSampler


@dataclass
class CdDistribution:
    """Sampled printed CDs at one gauge."""

    target_nm: float
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def mean_offset(self) -> float:
        return self.mean - self.target_nm

    def three_sigma_band(self) -> tuple[float, float]:
        return (self.mean - 3 * self.std, self.mean + 3 * self.std)


def simulate_cd_distribution(
    model: LithoModel,
    mask: Region,
    cut: Cutline,
    target_nm: float,
    sampler: ProcessSampler | None = None,
    n_samples: int = 50,
    seed: int = 1,
    grid: int | None = None,
) -> CdDistribution:
    """Monte Carlo the printed CD at a cutline across process samples."""
    sampler = sampler or ProcessSampler()
    values = []
    for sample in sampler.sample(n_samples, seed):
        cd = model.measure_cd(
            mask, cut, dose=sample.dose, defocus_nm=sample.defocus_nm, grid=grid
        )
        values.append(cd)
    return CdDistribution(target_nm=target_nm, values=np.asarray(values))


def process_capability(dist: CdDistribution, tolerance_nm: float) -> float:
    """Cpk against a symmetric tolerance band ``target +- tolerance``.

    Cpk >= 1.33 is the classic "capable" threshold; < 1 means the 3-sigma
    spread leaves the band.
    """
    if dist.std == 0:
        return float("inf")
    usl = dist.target_nm + tolerance_nm
    lsl = dist.target_nm - tolerance_nm
    return min(usl - dist.mean, dist.mean - lsl) / (3 * dist.std)
