"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    rc = main()
except BrokenPipeError:
    # Downstream pipe (e.g. ``| head``) closed early.  Redirect stdout to
    # devnull so the interpreter's shutdown flush doesn't raise again,
    # and exit with the conventional 128+SIGPIPE code.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    rc = 128 + 13
sys.exit(rc)
