"""Lattice-preserving coordinate transforms (the 8 square symmetries +
translation), as used by cell references in the layout database."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Orientation(Enum):
    """The dihedral group D4: rotations by multiples of 90 degrees, with or
    without a mirror about the x axis (applied before the rotation)."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"      # mirror about x axis (y -> -y)
    MX90 = "MX90"  # mirror then rotate 90
    MX180 = "MX180"
    MX270 = "MX270"

    @property
    def mirrored(self) -> bool:
        return self.value.startswith("MX")

    @property
    def rotation(self) -> int:
        """Rotation in degrees applied after the optional mirror."""
        suffix = self.value[2:] if self.mirrored else self.value[1:]
        return int(suffix) if suffix else 0


# (a, b, c, d) with x' = a*x + b*y, y' = c*x + d*y
_MATRICES: dict[Orientation, tuple[int, int, int, int]] = {
    Orientation.R0: (1, 0, 0, 1),
    Orientation.R90: (0, -1, 1, 0),
    Orientation.R180: (-1, 0, 0, -1),
    Orientation.R270: (0, 1, -1, 0),
    Orientation.MX: (1, 0, 0, -1),
    Orientation.MX90: (0, 1, 1, 0),
    Orientation.MX180: (-1, 0, 0, 1),
    Orientation.MX270: (0, -1, -1, 0),
}

_COMPOSE: dict[tuple[Orientation, Orientation], Orientation] = {}


def _compose_orientations(first: Orientation, second: Orientation) -> Orientation:
    """Orientation equivalent to applying ``first`` then ``second``."""
    key = (first, second)
    if key not in _COMPOSE:
        a1, b1, c1, d1 = _MATRICES[first]
        a2, b2, c2, d2 = _MATRICES[second]
        mat = (
            a2 * a1 + b2 * c1,
            a2 * b1 + b2 * d1,
            c2 * a1 + d2 * c1,
            c2 * b1 + d2 * d1,
        )
        for orient, m in _MATRICES.items():
            if m == mat:
                _COMPOSE[key] = orient
                break
    return _COMPOSE[key]


@dataclass(frozen=True, slots=True)
class Transform:
    """Rigid lattice transform: orientation followed by translation."""

    dx: int = 0
    dy: int = 0
    orientation: Orientation = Orientation.R0

    def apply_point(self, p: Point) -> Point:
        a, b, c, d = _MATRICES[self.orientation]
        return Point(a * p.x + b * p.y + self.dx, c * p.x + d * p.y + self.dy)

    def apply_rect(self, r: Rect) -> Rect:
        p0 = self.apply_point(Point(r.x0, r.y0))
        p1 = self.apply_point(Point(r.x1, r.y1))
        return Rect.from_points(p0, p1)

    def apply_points(self, pts) -> list[Point]:
        return [self.apply_point(p) for p in pts]

    def then(self, other: "Transform") -> "Transform":
        """Transform equivalent to applying ``self`` first, then ``other``."""
        origin = other.apply_point(self.apply_point(Point(0, 0)))
        orient = _compose_orientations(self.orientation, other.orientation)
        return Transform(origin.x, origin.y, orient)

    def inverse(self) -> "Transform":
        a, b, c, d = _MATRICES[self.orientation]
        # the matrices are orthogonal with determinant +-1; inverse = transpose
        inv_mat = (a, c, b, d)
        inv_orient = next(o for o, m in _MATRICES.items() if m == inv_mat)
        ia, ib, ic, id_ = inv_mat
        return Transform(
            -(ia * self.dx + ib * self.dy),
            -(ic * self.dx + id_ * self.dy),
            inv_orient,
        )

    @property
    def is_identity(self) -> bool:
        return self.dx == 0 and self.dy == 0 and self.orientation is Orientation.R0


Transform.IDENTITY = Transform()
