"""Integer lattice points."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point on the integer nanometre lattice.

    Points are immutable and hashable; arithmetic returns new points.
    """

    x: int
    y: int

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __mul__(self, k: int) -> "Point":
        return Point(self.x * k, self.y * k)

    __rmul__ = __mul__

    def __iter__(self):
        yield self.x
        yield self.y

    def manhattan(self, other: "Point") -> int:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev(self, other: "Point") -> int:
        """Chebyshev (L-infinity) distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def euclidean2(self, other: "Point") -> int:
        """Squared Euclidean distance (exact in integers)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: int, dy: int) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[int, int]:
        return (self.x, self.y)
