"""1-D interval set algebra on half-open integer intervals ``[a, b)``.

These primitives back the scanline algorithms in :mod:`repro.geometry.region`.
An *interval list* is a list of ``(a, b)`` tuples with ``a < b``, sorted by
``a``, pairwise disjoint and non-touching (i.e. canonical).
"""

from __future__ import annotations

Interval = tuple[int, int]


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Canonicalize an arbitrary interval list (union of the inputs)."""
    if not intervals:
        return []
    ivs = sorted(intervals)
    out: list[Interval] = []
    ca, cb = ivs[0]
    for a, b in ivs[1:]:
        if a <= cb:  # overlapping or touching: coalesce
            if b > cb:
                cb = b
        else:
            if ca < cb:
                out.append((ca, cb))
            ca, cb = a, b
    if ca < cb:
        out.append((ca, cb))
    return out


def intersect_intervals(xs: list[Interval], ys: list[Interval]) -> list[Interval]:
    """Intersection of two canonical interval lists."""
    out: list[Interval] = []
    i = j = 0
    while i < len(xs) and j < len(ys):
        a = max(xs[i][0], ys[j][0])
        b = min(xs[i][1], ys[j][1])
        if a < b:
            out.append((a, b))
        if xs[i][1] < ys[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract_intervals(xs: list[Interval], ys: list[Interval]) -> list[Interval]:
    """Difference ``xs - ys`` of two canonical interval lists."""
    out: list[Interval] = []
    j = 0
    for a, b in xs:
        cur = a
        while j < len(ys) and ys[j][1] <= cur:
            j += 1
        k = j
        while k < len(ys) and ys[k][0] < b:
            ya, yb = ys[k]
            if ya > cur:
                out.append((cur, ya))
            cur = max(cur, yb)
            if cur >= b:
                break
            k += 1
        if cur < b:
            out.append((cur, b))
    return out


def xor_intervals(xs: list[Interval], ys: list[Interval]) -> list[Interval]:
    """Symmetric difference of two canonical interval lists."""
    return merge_intervals(subtract_intervals(xs, ys) + subtract_intervals(ys, xs))


def total_length(xs: list[Interval]) -> int:
    """Sum of interval lengths."""
    return sum(b - a for a, b in xs)


def clip_intervals(xs: list[Interval], lo: int, hi: int) -> list[Interval]:
    """Clip a canonical interval list to ``[lo, hi)``."""
    out: list[Interval] = []
    for a, b in xs:
        a2, b2 = max(a, lo), min(b, hi)
        if a2 < b2:
            out.append((a2, b2))
    return out
