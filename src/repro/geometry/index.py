"""Uniform-grid spatial index for bbox queries.

The geometric engines (DRC spacing, pattern matching, via analysis) need
"all shapes near this window" queries.  A uniform grid of buckets is simple
and fast for IC layouts, whose shapes are small relative to the die and
roughly uniformly distributed.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.geometry.rect import Rect

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Maps items with bounding boxes into uniform grid buckets."""

    def __init__(self, cell_size: int = 2000):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        # buckets hold (bbox, ordinal, item); the ordinal is the item's
        # insertion rank and drives the allocation-free dedup in
        # query_into (a version-stamped mark array instead of a per-call
        # set of ids)
        self._buckets: dict[tuple[int, int], list[tuple[Rect, int, T]]] = {}
        self._items: list[tuple[Rect, T]] = []
        self._marks: list[int] = []
        self._stamp: int = 0

    def __len__(self) -> int:
        return len(self._items)

    def _cells(self, bbox: Rect) -> Iterator[tuple[int, int]]:
        cs = self.cell_size
        for gx in range(bbox.x0 // cs, bbox.x1 // cs + 1):
            for gy in range(bbox.y0 // cs, bbox.y1 // cs + 1):
                yield (gx, gy)

    def insert(self, bbox: Rect, item: T) -> None:
        ordinal = len(self._items)
        for cell in self._cells(bbox):
            self._buckets.setdefault(cell, []).append((bbox, ordinal, item))
        self._items.append((bbox, item))
        self._marks.append(0)

    def items(self) -> list[tuple[Rect, T]]:
        """All (bbox, item) pairs in insertion order."""
        return list(self._items)

    def extend(self, items: Iterable[tuple[Rect, T]]) -> None:
        for bbox, item in items:
            self.insert(bbox, item)

    def query(self, window: Rect) -> list[T]:
        """Items whose bbox *touches* the window (closed intersection).

        Results are deduplicated by identity and returned in insertion-
        stable order within each bucket.
        """
        seen: set[int] = set()
        out: list[T] = []
        for cell in self._cells(window):
            for bbox, _, item in self._buckets.get(cell, ()):
                # identity dedup is deterministic here: the ids never
                # leave this call and the output keeps insertion order,
                # so the result is identical in every worker process
                if id(item) not in seen and bbox.touches(window):  # repro-lint: disable=RL010
                    seen.add(id(item))
                    out.append(item)
        return out

    def query_into(self, window: Rect, out: list[T]) -> list[T]:
        """Buffer-reuse variant of :meth:`query` for hot loops.

        Clears and refills ``out`` (returned for convenience) with the
        items whose bbox touches ``window``.  Deduplication is per
        *insertion* (each inserted entry appears at most once) and uses a
        version-stamped mark array, so the call allocates no per-call
        ``set``/``list`` — the difference is measurable when a scan loop
        issues one query per tile times thousands of tiles.
        """
        out.clear()
        self._stamp += 1
        stamp = self._stamp
        marks = self._marks
        buckets = self._buckets
        cs = self.cell_size
        for gx in range(window.x0 // cs, window.x1 // cs + 1):
            for gy in range(window.y0 // cs, window.y1 // cs + 1):
                for bbox, ordinal, item in buckets.get((gx, gy), ()):
                    if marks[ordinal] != stamp and bbox.touches(window):
                        marks[ordinal] = stamp
                        out.append(item)
        return out

    def query_pairs(self, separation: int) -> Iterator[tuple[T, T]]:
        """All unordered item pairs whose bboxes come within ``separation``.

        Used for spacing-style checks; each pair is yielded once, in the
        order the first member was inserted.
        """
        order = {id(item): k for k, (_, item) in enumerate(self._items)}
        for k, (bbox, item) in enumerate(self._items):
            window = bbox.expanded(separation)
            for other in self.query(window):
                if order[id(other)] > k:
                    yield (item, other)
