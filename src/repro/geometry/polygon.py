"""Rectilinear polygons with exact integer vertices."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.intervals import merge_intervals
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.region import Region


class Polygon:
    """A simple rectilinear polygon (axis-parallel edges, no holes).

    Vertices are stored counter-clockwise with collinear runs collapsed.
    Conversion to a :class:`Region` (``to_region``) is the workhorse used
    by the layout database; most downstream algorithms operate on regions.
    """

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[Point | tuple[int, int]]):
        pts = [p if isinstance(p, Point) else Point(*p) for p in points]
        if len(pts) < 4:
            raise ValueError("a rectilinear polygon needs at least 4 vertices")
        if pts[0] == pts[-1]:
            pts = pts[:-1]
        pts = _collapse_collinear(pts)
        _validate_rectilinear(pts)
        if _signed_area2(pts) < 0:
            pts.reverse()
        # rotate so the lexicographically smallest vertex is first, making
        # the representation canonical
        k = min(range(len(pts)), key=lambda i: (pts[i].x, pts[i].y))
        self._points = tuple(pts[k:] + pts[:k])

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        return Polygon(rect.corners())

    @staticmethod
    def l_shape(width: int, height: int, notch_w: int, notch_h: int, origin: Point = Point(0, 0)) -> "Polygon":
        """An L: a ``width x height`` rect with the top-right ``notch_w x
        notch_h`` corner removed."""
        if not (0 < notch_w < width and 0 < notch_h < height):
            raise ValueError("notch must be strictly inside the bounding rect")
        ox, oy = origin.x, origin.y
        return Polygon(
            [
                (ox, oy),
                (ox + width, oy),
                (ox + width, oy + height - notch_h),
                (ox + width - notch_w, oy + height - notch_h),
                (ox + width - notch_w, oy + height),
                (ox, oy + height),
            ]
        )

    # -- properties -----------------------------------------------------------
    @property
    def points(self) -> tuple[Point, ...]:
        return self._points

    @property
    def num_vertices(self) -> int:
        return len(self._points)

    @property
    def bbox(self) -> Rect:
        xs = [p.x for p in self._points]
        ys = [p.y for p in self._points]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def area(self) -> int:
        return _signed_area2(list(self._points)) // 2

    @property
    def is_rect(self) -> bool:
        return len(self._points) == 4

    def edges(self) -> list[tuple[Point, Point]]:
        pts = self._points
        return [(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts))]

    def perimeter(self) -> int:
        return sum(a.manhattan(b) for a, b in self.edges())

    # -- predicates --------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Closed point-in-polygon test via crossing count on half-integer ray."""
        # cast a ray to +x at height p.y + 0.5 to avoid vertex degeneracies,
        # but first handle boundary membership exactly
        for a, b in self.edges():
            if a.x == b.x == p.x and min(a.y, b.y) <= p.y <= max(a.y, b.y):
                return True
            if a.y == b.y == p.y and min(a.x, b.x) <= p.x <= max(a.x, b.x):
                return True
        crossings = 0
        for a, b in self.edges():
            if a.x == b.x:  # vertical edge
                ylo, yhi = min(a.y, b.y), max(a.y, b.y)
                if ylo <= p.y < yhi and a.x > p.x:
                    crossings += 1
        return crossings % 2 == 1

    # -- conversions --------------------------------------------------------------
    def to_region(self) -> Region:
        """Decompose into a canonical Region via horizontal scanline."""
        pts = self._points
        n = len(pts)
        vedges = []
        for i in range(n):
            a, b = pts[i], pts[(i + 1) % n]
            if a.x == b.x:
                vedges.append((a.x, min(a.y, b.y), max(a.y, b.y)))
        ys = sorted({p.y for p in pts})
        rects: list[Rect] = []
        for ya, yb in zip(ys, ys[1:]):
            # x positions of vertical edges spanning this y-slab
            xs = sorted(x for x, y0, y1 in vedges if y0 <= ya and y1 >= yb)
            spans = merge_intervals([(xs[i], xs[i + 1]) for i in range(0, len(xs) - 1, 2)])
            for x0, x1 in spans:
                rects.append(Rect(x0, ya, x1, yb))
        return Region(rects)

    def translated(self, dx: int, dy: int) -> "Polygon":
        return Polygon([p.translated(dx, dy) for p in self._points])

    def scaled(self, k: int) -> "Polygon":
        return Polygon([Point(p.x * k, p.y * k) for p in self._points])

    # -- dunder ---------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"Polygon({len(self._points)} vertices, bbox={self.bbox.as_tuple()})"


def _collapse_collinear(pts: Sequence[Point]) -> list[Point]:
    """Drop vertices that lie on a straight run between neighbours."""
    out: list[Point] = []
    n = len(pts)
    for i in range(n):
        prev_pt = pts[(i - 1) % n]
        cur = pts[i]
        nxt = pts[(i + 1) % n]
        if (prev_pt.x == cur.x == nxt.x) or (prev_pt.y == cur.y == nxt.y):
            continue
        if cur == nxt:
            continue
        out.append(cur)
    return out


def _validate_rectilinear(pts: Sequence[Point]) -> None:
    n = len(pts)
    if n % 2 != 0:
        raise ValueError("rectilinear polygons have an even number of vertices")
    for i in range(n):
        a, b = pts[i], pts[(i + 1) % n]
        if a.x != b.x and a.y != b.y:
            raise ValueError(f"edge {a}-{b} is not axis-parallel")
        if a == b:
            raise ValueError("degenerate zero-length edge")


def _signed_area2(pts: Sequence[Point]) -> int:
    """Twice the signed (shoelace) area; positive for CCW."""
    total = 0
    n = len(pts)
    for i in range(n):
        a, b = pts[i], pts[(i + 1) % n]
        total += a.x * b.y - b.x * a.y
    return total
