"""Manhattan geometry kernel on integer-nanometre coordinates.

This package is the foundation of the DFM platform: points, rectangles,
rectilinear polygons, canonical rectangle-set regions with boolean algebra
and morphological sizing, coordinate transforms, and a grid spatial index.

All coordinates are integers in database units (1 dbu = 1 nm by
convention).  Geometry is restricted to axis-parallel ("Manhattan") shapes,
which makes every boolean operation exactly representable — the standard
trade-off for 2008-era metal/poly/via layers.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.polygon import Polygon
from repro.geometry.region import Region
from repro.geometry.transform import Orientation, Transform
from repro.geometry.index import GridIndex
from repro.geometry.intervals import (
    merge_intervals,
    intersect_intervals,
    subtract_intervals,
)

__all__ = [
    "Point",
    "Rect",
    "Polygon",
    "Region",
    "Orientation",
    "Transform",
    "GridIndex",
    "merge_intervals",
    "intersect_intervals",
    "subtract_intervals",
]
