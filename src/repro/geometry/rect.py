"""Axis-aligned integer rectangles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[x0, x1] x [y0, y1]``.

    Stored normalized (``x0 <= x1`` and ``y0 <= y1``).  A rect with zero
    width or height is *degenerate*; degenerate rects are permitted as
    values (e.g. cutlines) but regions drop them.
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self):
        if self.x0 > self.x1 or self.y0 > self.y1:
            x0, x1 = sorted((self.x0, self.x1))
            y0, y1 = sorted((self.y0, self.y1))
            object.__setattr__(self, "x0", x0)
            object.__setattr__(self, "x1", x1)
            object.__setattr__(self, "y0", y0)
            object.__setattr__(self, "y1", y1)

    # -- constructors -------------------------------------------------
    @staticmethod
    def from_points(p0: Point, p1: Point) -> "Rect":
        return Rect(min(p0.x, p1.x), min(p0.y, p1.y), max(p0.x, p1.x), max(p0.y, p1.y))

    @staticmethod
    def from_center(cx: int, cy: int, width: int, height: int) -> "Rect":
        """Rectangle centered at (cx, cy); width/height must be even to
        stay on the integer lattice."""
        if width % 2 or height % 2:
            raise ValueError("width and height must be even for a centered rect")
        return Rect(cx - width // 2, cy - height // 2, cx + width // 2, cy + height // 2)

    # -- basic properties ---------------------------------------------
    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) // 2, (self.y0 + self.y1) // 2)

    @property
    def is_degenerate(self) -> bool:
        return self.x0 == self.x1 or self.y0 == self.y1

    def corners(self) -> list[Point]:
        """Corners in counter-clockwise order starting at lower-left."""
        return [
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        ]

    # -- predicates ----------------------------------------------------
    def contains_point(self, p: Point, strict: bool = False) -> bool:
        if strict:
            return self.x0 < p.x < self.x1 and self.y0 < p.y < self.y1
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if interiors intersect (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def touches(self, other: "Rect") -> bool:
        """True if closures intersect (shared edge or corner counts)."""
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )

    # -- operations ----------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection rect, or ``None`` when interiors are disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x0 >= x1 or y0 >= y1:
            return None
        return Rect(x0, y0, x1, y1)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def expanded(self, d: int, dy: int | None = None) -> "Rect":
        """Grow by ``d`` on every side (shrink when negative).

        A separate vertical amount ``dy`` may be given.  Raises
        ``ValueError`` if shrinking would invert the rect.
        """
        if dy is None:
            dy = d
        x0, y0, x1, y1 = self.x0 - d, self.y0 - dy, self.x1 + d, self.y1 + dy
        if x0 > x1 or y0 > y1:
            raise ValueError(f"shrink by ({d},{dy}) inverts {self}")
        return Rect(x0, y0, x1, y1)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def scaled(self, k: int) -> "Rect":
        return Rect(self.x0 * k, self.y0 * k, self.x1 * k, self.y1 * k)

    def distance(self, other: "Rect") -> int:
        """Chebyshev separation between closures; 0 when touching."""
        dx = max(self.x0 - other.x1, other.x0 - self.x1, 0)
        dy = max(self.y0 - other.y1, other.y0 - self.y1, 0)
        return max(dx, dy)

    def euclidean_distance2(self, other: "Rect") -> int:
        """Squared Euclidean separation between closures."""
        dx = max(self.x0 - other.x1, other.x0 - self.x1, 0)
        dy = max(self.y0 - other.y1, other.y0 - self.y1, 0)
        return dx * dx + dy * dy

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.x0, self.y0, self.x1, self.y1)
