"""Canonical rectangle-set regions with boolean algebra and morphology.

A :class:`Region` represents an arbitrary rectilinear area as a canonical
set of disjoint rectangles.  Canonical form is the *vertical slab
decomposition with maximal horizontal merge*: the plane is cut at every
distinct x coordinate where the region's boundary changes, each slab holds
a canonical list of y-intervals, and adjacent slabs with identical
y-interval lists are merged back together.  Two regions describing the same
point set therefore always hold the same rectangle list, which makes
equality, hashing, and property-based testing trivial.

Boolean operations (union, intersection, difference, xor) are computed by
a joint slab sweep using the 1-D interval algebra in
:mod:`repro.geometry.intervals`.  Morphological sizing (grow/shrink with a
square structuring element) is built on top, which in turn powers the DRC
width/space/enclosure checks.
"""

from __future__ import annotations

import hashlib
import heapq
import struct
from typing import Iterable, Iterator, Sequence

from repro.geometry.intervals import (
    Interval,
    intersect_intervals,
    merge_intervals,
    subtract_intervals,
    xor_intervals,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect

# A slab is (x0, x1, [y-intervals]); slabs are sorted by x0 and disjoint.
Slab = tuple[int, int, list[Interval]]


def _slabs_from_rects(rects: Sequence[Rect]) -> list[Slab]:
    """Decompose arbitrary (possibly overlapping) rects into canonical slabs."""
    boxes = [r for r in rects if not r.is_degenerate]
    if not boxes:
        return []
    xs = sorted({r.x0 for r in boxes} | {r.x1 for r in boxes})
    boxes.sort(key=lambda r: r.x0)
    slabs: list[Slab] = []
    active: list[tuple[int, int, int]] = []  # heap of (x1, y0, y1)
    i = 0
    for xa, xb in zip(xs, xs[1:]):
        while i < len(boxes) and boxes[i].x0 <= xa:
            r = boxes[i]
            heapq.heappush(active, (r.x1, r.y0, r.y1))
            i += 1
        while active and active[0][0] <= xa:
            heapq.heappop(active)
        if active:
            ys = merge_intervals([(y0, y1) for (_, y0, y1) in active])
            if ys:
                slabs.append((xa, xb, ys))
    return _merge_slabs(slabs)


def _merge_slabs(slabs: list[Slab]) -> list[Slab]:
    """Merge x-adjacent slabs whose y-interval lists are identical."""
    out: list[Slab] = []
    for xa, xb, ys in slabs:
        if not ys:
            continue
        if out and out[-1][1] == xa and out[-1][2] == ys:
            out[-1] = (out[-1][0], xb, ys)
        else:
            out.append((xa, xb, list(ys)))
    return out


def _sweep(a: list[Slab], b: list[Slab], op) -> list[Slab]:
    """Joint slab sweep of two canonical slab lists under interval op."""
    xs = sorted({x for xa, xb, _ in a for x in (xa, xb)} | {x for xa, xb, _ in b for x in (xa, xb)})
    if not xs:
        return []
    out: list[Slab] = []
    ia = ib = 0
    for xa, xb in zip(xs, xs[1:]):
        while ia < len(a) and a[ia][1] <= xa:
            ia += 1
        while ib < len(b) and b[ib][1] <= xa:
            ib += 1
        ya: list[Interval] = []
        yb: list[Interval] = []
        if ia < len(a) and a[ia][0] <= xa:
            ya = a[ia][2]
        if ib < len(b) and b[ib][0] <= xa:
            yb = b[ib][2]
        ys = op(ya, yb)
        if ys:
            out.append((xa, xb, ys))
    return _merge_slabs(out)


class Region:
    """An immutable rectilinear area in canonical rectangle-set form."""

    __slots__ = ("_slabs", "_hash")

    def __init__(self, rects: Iterable[Rect] | Rect | None = None):
        if rects is None:
            rects = []
        elif isinstance(rects, Rect):
            rects = [rects]
        self._slabs: list[Slab] = _slabs_from_rects(list(rects))
        self._hash: int | None = None

    # -- internal -------------------------------------------------------
    @classmethod
    def _from_slabs(cls, slabs: list[Slab]) -> "Region":
        region = cls.__new__(cls)
        region._slabs = slabs
        region._hash = None
        return region

    @classmethod
    def from_canonical_rects(cls, rects: Iterable[Rect]) -> "Region":
        """Rebuild a region from its own canonical rect iteration.

        ``rects`` must be exactly what :meth:`rects` produced (the
        order ships rects slab by slab, y-sorted within each slab), as
        preserved by serialization paths like
        :class:`repro.parallel.shm.ShmRects`.  Rebuilding is then pure
        regrouping — no sweep — and bit-identical: canonical rects
        sharing an x-range are one slab's y-intervals.
        """
        slabs: list[Slab] = []
        for r in rects:
            if slabs and slabs[-1][0] == r.x0 and slabs[-1][1] == r.x1:
                slabs[-1][2].append((r.y0, r.y1))
            else:
                slabs.append((r.x0, r.x1, [(r.y0, r.y1)]))
        return cls._from_slabs(_merge_slabs(slabs))

    # -- iteration and size ----------------------------------------------
    def rects(self) -> Iterator[Rect]:
        """Iterate the canonical disjoint rectangles."""
        for xa, xb, ys in self._slabs:
            for y0, y1 in ys:
                yield Rect(xa, y0, xb, y1)

    def __iter__(self) -> Iterator[Rect]:
        return self.rects()

    def __len__(self) -> int:
        return sum(len(ys) for _, _, ys in self._slabs)

    def __bool__(self) -> bool:
        return bool(self._slabs)

    @property
    def is_empty(self) -> bool:
        return not self._slabs

    @property
    def area(self) -> int:
        return sum((xb - xa) * (y1 - y0) for xa, xb, ys in self._slabs for y0, y1 in ys)

    @property
    def bbox(self) -> Rect | None:
        if not self._slabs:
            return None
        x0 = self._slabs[0][0]
        x1 = self._slabs[-1][1]
        y0 = min(ys[0][0] for _, _, ys in self._slabs)
        y1 = max(ys[-1][1] for _, _, ys in self._slabs)
        return Rect(x0, y0, x1, y1)

    # -- equality ---------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self._slabs == other._slabs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple((xa, xb, tuple(ys)) for xa, xb, ys in self._slabs))
        return self._hash

    def digest(self) -> str:
        """Stable content hash of the region's point set.

        Hashes the canonical slab decomposition, so any two regions
        describing the same area — however they were constructed — share
        a digest.  This is what keys the incremental tile caches in
        :mod:`repro.parallel`.
        """
        h = hashlib.sha256()
        for xa, xb, ys in self._slabs:
            h.update(struct.pack("<qqq", xa, xb, len(ys)))
            for y0, y1 in ys:
                h.update(struct.pack("<qq", y0, y1))
        return h.hexdigest()

    def __repr__(self) -> str:
        n = len(self)
        bb = self.bbox
        return f"Region({n} rects, bbox={bb.as_tuple() if bb else None})"

    # -- membership ---------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies in the closed region."""
        for xa, xb, ys in self._slabs:
            if xa <= p.x <= xb:
                for y0, y1 in ys:
                    if y0 <= p.y <= y1:
                        return True
            if xa > p.x:
                # slabs sorted: a later slab may still touch p.x == xa, so
                # only stop once strictly past
                if xa > p.x:
                    break
        return False

    # -- boolean algebra -----------------------------------------------------
    def __or__(self, other: "Region") -> "Region":
        return Region._from_slabs(_sweep(self._slabs, other._slabs, lambda a, b: merge_intervals(a + b)))

    def __and__(self, other: "Region") -> "Region":
        return Region._from_slabs(_sweep(self._slabs, other._slabs, intersect_intervals))

    def __sub__(self, other: "Region") -> "Region":
        return Region._from_slabs(_sweep(self._slabs, other._slabs, subtract_intervals))

    def __xor__(self, other: "Region") -> "Region":
        return Region._from_slabs(_sweep(self._slabs, other._slabs, xor_intervals))

    union = __or__
    intersection = __and__
    difference = __sub__

    def overlaps(self, other: "Region") -> bool:
        """True when interiors intersect.

        A two-pointer sweep over both canonical slab lists that stops at
        the first intersecting (slab, slab) pair — unlike ``self & other``
        it never materializes the intersection, so disjoint-but-close
        regions (the common case in hotspot bridging and fill checks)
        answer in O(slabs scanned) with no allocation.
        """
        a, b = self._slabs, other._slabs
        ia = ib = 0
        while ia < len(a) and ib < len(b):
            ax0, ax1, ay = a[ia]
            bx0, bx1, by = b[ib]
            if ax1 <= bx0:
                ia += 1
                continue
            if bx1 <= ax0:
                ib += 1
                continue
            i = j = 0
            while i < len(ay) and j < len(by):
                if max(ay[i][0], by[j][0]) < min(ay[i][1], by[j][1]):
                    return True
                if ay[i][1] <= by[j][1]:
                    i += 1
                else:
                    j += 1
            if ax1 <= bx1:
                ia += 1
            else:
                ib += 1
        return False

    def covers(self, other: "Region") -> bool:
        """True when ``other`` is a subset of this region."""
        return (other - self).is_empty

    # -- transforms -------------------------------------------------------
    def translated(self, dx: int, dy: int) -> "Region":
        slabs = [(xa + dx, xb + dx, [(y0 + dy, y1 + dy) for y0, y1 in ys]) for xa, xb, ys in self._slabs]
        return Region._from_slabs(slabs)

    def scaled(self, k: int) -> "Region":
        if k <= 0:
            raise ValueError("scale factor must be positive")
        slabs = [(xa * k, xb * k, [(y0 * k, y1 * k) for y0, y1 in ys]) for xa, xb, ys in self._slabs]
        return Region._from_slabs(slabs)

    # -- morphology -----------------------------------------------------------
    def grown(self, d: int, dy: int | None = None) -> "Region":
        """Minkowski dilation by a ``2d x 2dy`` square (isotropic grow).

        Negative values shrink (erosion).  ``d`` applies horizontally and
        ``dy`` (default ``d``) vertically.
        """
        if dy is None:
            dy = d
        if d == 0 and dy == 0:
            return self
        if d >= 0 and dy >= 0:
            return Region([r.expanded(d, dy) for r in self.rects()])
        if d <= 0 and dy <= 0:
            return self._eroded(-d, -dy)
        # mixed signs: do the two axes sequentially
        return self.grown(d, 0).grown(0, dy)

    def _eroded(self, d: int, dy: int) -> "Region":
        """Erosion by complement-dilate-complement within a guard frame."""
        bb = self.bbox
        if bb is None:
            return Region()
        frame = Rect(bb.x0 - d - 1, bb.y0 - dy - 1, bb.x1 + d + 1, bb.y1 + dy + 1)
        complement = Region(frame) - self
        grown = complement.grown(d, dy)
        return Region(frame) - grown

    def opened(self, d: int) -> "Region":
        """Morphological opening: erode then dilate.

        Removes any feature narrower than ``2*d`` — the primitive behind
        minimum-width DRC checks.
        """
        return self.grown(-d).grown(d)

    def closed(self, d: int) -> "Region":
        """Morphological closing: dilate then erode.

        Fills any gap narrower than ``2*d`` — the primitive behind
        minimum-spacing DRC checks.
        """
        return self.grown(d).grown(-d)

    # -- structure --------------------------------------------------------
    def components(self) -> list["Region"]:
        """Split into 4-connected components (edge adjacency, not corners)."""
        rect_list = list(self.rects())
        n = len(rect_list)
        if n == 0:
            return []
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def join(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        # canonical rects only touch along slab boundaries (vertical edges)
        # or within the same slab never touch; sort by x0 and match edges.
        by_x0: dict[int, list[int]] = {}
        for idx, r in enumerate(rect_list):
            by_x0.setdefault(r.x0, []).append(idx)
        for idx, r in enumerate(rect_list):
            for jdx in by_x0.get(r.x1, []):
                other = rect_list[jdx]
                # shared vertical edge with overlapping y-span (not corner)
                if min(r.y1, other.y1) > max(r.y0, other.y0):
                    join(idx, jdx)
        groups: dict[int, list[Rect]] = {}
        for idx in range(n):
            groups.setdefault(find(idx), []).append(rect_list[idx])
        return [Region(g) for g in groups.values()]

    def holes(self) -> "Region":
        """Interior holes: areas enclosed by the region but not part of it."""
        bb = self.bbox
        if bb is None:
            return Region()
        frame = Rect(bb.x0 - 1, bb.y0 - 1, bb.x1 + 1, bb.y1 + 1)
        outside = Region(frame) - self
        # the component of `outside` touching the frame border is the true
        # outside; everything else is a hole
        hole_parts = [c for c in outside.components() if not _touches_frame(c, frame)]
        result = Region()
        for c in hole_parts:
            result = result | c
        return result

    def clipped(self, window: Rect) -> "Region":
        """Intersection with a rectangular window (fast path)."""
        return self & Region(window)

    def edges(self) -> list[tuple[Point, Point]]:
        """Boundary edges as (start, end) point pairs.

        Edges are oriented so the region interior lies to the *left* of the
        direction of travel.  Built from the canonical slabs: vertical
        boundary pieces come from xor-ing adjacent slabs' interval lists,
        horizontal pieces from each interval's top/bottom within its slab.
        """
        out: list[tuple[Point, Point]] = []
        # horizontal edges: bottom (left-to-right), top (right-to-left)
        for xa, xb, ys in self._slabs:
            for y0, y1 in ys:
                out.append((Point(xa, y0), Point(xb, y0)))  # bottom, interior above
                out.append((Point(xb, y1), Point(xa, y1)))  # top, interior below
        # vertical edges: boundaries where coverage changes between slabs
        boundaries: dict[int, tuple[list[Interval], list[Interval]]] = {}
        prev_end = None
        prev_ys: list[Interval] = []
        for xa, xb, ys in self._slabs:
            if prev_end is not None and prev_end == xa:
                boundaries[xa] = (prev_ys, ys)
            else:
                if prev_end is not None:
                    boundaries[prev_end] = (prev_ys, [])
                boundaries[xa] = ([], ys)
            prev_end, prev_ys = xb, ys
        if prev_end is not None:
            boundaries[prev_end] = (prev_ys, [])
        for x, (left, right) in sorted(boundaries.items()):
            for y0, y1 in subtract_intervals(right, left):
                out.append((Point(x, y1), Point(x, y0)))  # left side, interior right
            for y0, y1 in subtract_intervals(left, right):
                out.append((Point(x, y0), Point(x, y1)))  # right side, interior left
        return out

    def perimeter(self) -> int:
        """Total boundary length."""
        return sum(abs(b.x - a.x) + abs(b.y - a.y) for a, b in self.edges())

    def snapped(self, grid: int) -> "Region":
        """Snap every rectangle outward to the given grid."""
        if grid <= 1:
            return self
        snapped = [
            Rect(
                (r.x0 // grid) * grid,
                (r.y0 // grid) * grid,
                -(-r.x1 // grid) * grid,
                -(-r.y1 // grid) * grid,
            )
            for r in self.rects()
        ]
        return Region(snapped)


def _touches_frame(component: Region, frame: Rect) -> bool:
    bb = component.bbox
    if bb is None:
        return False
    return (
        bb.x0 <= frame.x0
        or bb.y0 <= frame.y0
        or bb.x1 >= frame.x1
        or bb.y1 >= frame.y1
    )
