"""Defect-model fitting from test-structure yields.

The fab-side half of yield learning: comb and serpentine monitors of
several geometries are measured (fail counts over many dies), and the
defect density D0 — and optionally the DSD peak x0 — are fitted so the
critical-area model reproduces the observations.  The fitted model then
predicts product yield before the product exists.

Fitting uses the Poisson likelihood: for monitor ``i`` with weighted
critical area ``CA_i`` and ``n_i`` dies of which ``k_i`` failed,

    lambda_i = D0 * CA_i / 1e14           (CA in nm^2, D0 in /cm^2)
    P(fail)  = 1 - exp(-lambda_i)

D0 enters monotonically, so the 1-D MLE is a simple bisection; the joint
(D0, x0) fit scans x0 over a grid and picks the likelihood maximum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry import Region
from repro.yieldmodels.critical_area import weighted_critical_area
from repro.yieldmodels.dsd import DefectSizeDistribution

NM2_PER_CM2 = 1e14


@dataclass(frozen=True, slots=True)
class MonitorObservation:
    """One test structure's measurement: geometry plus fail statistics.

    ``replicas`` is how many copies of the drawn tile the physical
    monitor repeats per die — production monitors tile metres of wire, so
    the simulated tile's critical area is multiplied accordingly.
    """

    name: str
    region: Region
    dies: int
    fails: int
    replicas: int = 1

    def __post_init__(self):
        if not 0 <= self.fails <= self.dies:
            raise ValueError("fails must be within [0, dies]")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


def _log_likelihood(d0: float, cas: list[float], observations: list[MonitorObservation]) -> float:
    total = 0.0
    for ca, obs in zip(cas, observations):
        lam = d0 * ca / NM2_PER_CM2
        p_fail = 1.0 - math.exp(-lam)
        p_fail = min(max(p_fail, 1e-12), 1.0 - 1e-12)
        total += obs.fails * math.log(p_fail) + (obs.dies - obs.fails) * math.log(1.0 - p_fail)
    return total


def fit_d0(
    observations: list[MonitorObservation],
    dsd: DefectSizeDistribution,
    d0_max: float = 100.0,
) -> float:
    """Maximum-likelihood D0 (defects/cm^2) for a known DSD.

    The likelihood in D0 is unimodal (each term is concave in lambda), so
    golden-section search over [0, d0_max] suffices.
    """
    if not observations:
        raise ValueError("need at least one observation")
    cas = [
        obs.replicas
        * (
            weighted_critical_area(obs.region, dsd, "shorts")
            + weighted_critical_area(obs.region, dsd, "opens")
        )
        for obs in observations
    ]
    if all(ca == 0 for ca in cas):
        raise ValueError("monitors have zero critical area; nothing to fit")
    lo, hi = 0.0, d0_max
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = hi - phi * (hi - lo), lo + phi * (hi - lo)
    fa, fb = _log_likelihood(a, cas, observations), _log_likelihood(b, cas, observations)
    for _ in range(80):
        if fa < fb:
            lo, a, fa = a, b, fb
            b = lo + phi * (hi - lo)
            fb = _log_likelihood(b, cas, observations)
        else:
            hi, b, fb = b, a, fa
            a = hi - phi * (hi - lo)
            fa = _log_likelihood(a, cas, observations)
    return (lo + hi) / 2.0


@dataclass(frozen=True, slots=True)
class FittedDefectModel:
    d0_per_cm2: float
    x0_nm: float
    log_likelihood: float


def fit_defect_model(
    observations: list[MonitorObservation],
    x0_grid_nm: list[float],
    x_max_nm: float,
    d0_max: float = 100.0,
) -> FittedDefectModel:
    """Joint (D0, x0) fit: scan x0, fit D0 per candidate, keep the best.

    Monitors with *different* minimum dimensions are what make x0
    identifiable — a single geometry only constrains the product
    D0 * CA(x0).
    """
    best: FittedDefectModel | None = None
    for x0 in x0_grid_nm:
        dsd = DefectSizeDistribution(x0_nm=x0, x_max_nm=x_max_nm)
        d0 = fit_d0(observations, dsd, d0_max)
        cas = [
            obs.replicas
            * (
                weighted_critical_area(obs.region, dsd, "shorts")
                + weighted_critical_area(obs.region, dsd, "opens")
            )
            for obs in observations
        ]
        ll = _log_likelihood(d0, cas, observations)
        if best is None or ll > best.log_likelihood:
            best = FittedDefectModel(d0_per_cm2=d0, x0_nm=x0, log_likelihood=ll)
    assert best is not None
    return best


def predict_fail_fraction(
    region: Region, dsd: DefectSizeDistribution, d0: float, replicas: int = 1
) -> float:
    """Fail probability the fitted model predicts for a new monitor."""
    ca = weighted_critical_area(region, dsd, "shorts") + weighted_critical_area(
        region, dsd, "opens"
    )
    return 1.0 - math.exp(-d0 * replicas * ca / NM2_PER_CM2)
