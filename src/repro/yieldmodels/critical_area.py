"""Critical-area extraction.

A square defect of side ``x`` centred at ``p``:

* causes a **short** when it touches two different features — so the
  short-critical area is the set of points covered by at least two of the
  features grown by ``x/2``.  Its area equals ``sum(area(grown_i)) -
  area(union(grown_i))`` up to higher-multiplicity overlaps (an upper
  bound that is exact for pairwise overlaps, the dominant case).
* causes an **open** when it severs a feature — which is exactly a short
  of the *complement*: the defect must connect two opposite sides of the
  background across the wire.  We compute it by duality, restricted to a
  halo around the layer so the infinite outside face is handled correctly.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect, Region
from repro.yieldmodels.dsd import DefectSizeDistribution


def _short_region(region: Region, defect_size: int) -> Region:
    """Defect centres covered by >= 2 features grown by half the defect
    size — exact (running-union) computation, no multiplicity
    overcounting for large defects that reach many features at once."""
    half = defect_size // 2
    components = region.components()
    if len(components) < 2:
        return Region()
    union = Region()
    covered_twice = Region()
    for component in components:
        g = component.grown(half)
        covered_twice = covered_twice | (g & union)
        union = union | g
    return covered_twice


def _open_band_region(region: Region, defect_size: int) -> Region:
    """Defect centres whose square spans a segment's full width, with the
    centre alongside the segment — the geometric form of the classic
    ``(x - w) * L`` band."""
    bands: list[Rect] = []
    for r in region.rects():
        if r.width <= r.height:  # vertical-ish segment: cut across x
            excess = defect_size - r.width
            if excess > 0:
                cx = (r.x0 + r.x1) // 2
                bands.append(Rect(cx - excess // 2, r.y0, cx - excess // 2 + excess, r.y1))
        else:
            excess = defect_size - r.height
            if excess > 0:
                cy = (r.y0 + r.y1) // 2
                bands.append(Rect(r.x0, cy - excess // 2, r.x1, cy - excess // 2 + excess))
    return Region(bands)


def critical_area_shorts(region: Region, defect_size: int) -> int:
    """Area (nm^2) where a ``defect_size`` square shorts two features."""
    if defect_size <= 1:
        return 0
    return _short_region(region, defect_size).area


def critical_area_opens(region: Region, defect_size: int, exclusive: bool = True) -> int:
    """Area (nm^2) where a ``defect_size`` square severs a feature.

    Segment approximation (the standard estimator): a defect cuts a wire
    segment of width ``w`` and length ``L`` when its centre lies in a band
    of width ``x - w`` across the wire running along its length — the
    classic ``(x - w) * L``, computed geometrically.  Junction rectangles
    are included, which slightly overestimates (cutting a junction rect
    does not always disconnect) — conservative in the safe direction.

    With ``exclusive`` (the default) centres that *also* short two
    features are excluded, so opens and shorts partition the fault space
    and their sum never exceeds the extent — large defects would
    otherwise be double-counted.
    """
    if defect_size <= 1 or region.is_empty:
        return 0
    band = _open_band_region(region, defect_size)
    if band.is_empty:
        return 0
    if exclusive:
        band = band - _short_region(region, defect_size)
    return band.area


def weighted_critical_area(
    region: Region,
    dsd: DefectSizeDistribution,
    mode: str = "shorts",
    n_sizes: int = 12,
) -> float:
    """DSD-weighted average critical area (nm^2): the effective area that,
    multiplied by the defect density, gives the fault rate lambda."""
    if mode == "shorts":
        ca_fn = critical_area_shorts
    elif mode == "opens":
        ca_fn = critical_area_opens
    else:
        raise ValueError("mode must be 'shorts' or 'opens'")
    sizes = dsd.quadrature_sizes(n_sizes)
    cas = np.array([ca_fn(region, int(round(x))) for x in sizes], dtype=float)
    pdf = dsd.pdf(sizes)
    # trapezoidal integration over the size grid
    return float(np.trapezoid(cas * pdf, sizes))
