"""Wire spreading and widening — critical-area DFM optimizers.

*Spreading* nudges wires apart where slack exists, cutting short-critical
area; *widening* fattens wires where space allows, cutting open-critical
area.  Both are post-route cleanups: they must never create a new spacing
violation, so every move is validated against the minimum rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import BaseReport
from repro.geometry import GridIndex, Rect, Region


@dataclass
class SpreadReport(BaseReport):
    features: int = 0
    moved: int = 0
    widened: int = 0

    def summary(self) -> str:
        return (
            f"wire spread/widen: {self.features} features, "
            f"{self.moved} moved, {self.widened} widened"
        )


def _neighbor_index(components: list[Region], reach: int) -> GridIndex[int]:
    index: GridIndex[int] = GridIndex(cell_size=max(4 * reach, 512))
    for i, comp in enumerate(components):
        index.insert(comp.bbox, i)
    return index


def _clearance(feature: Region, others: list[Region], limit: int) -> int:
    """Smallest separation to any other feature, capped at ``limit``."""
    best = limit
    for other in others:
        for ra in feature.rects():
            for rb in other.rects():
                d = ra.distance(rb)
                if d < best:
                    best = d
    return best


def spread_wires(
    region: Region, min_space: int, target_space: int, step: int = 0
) -> tuple[Region, SpreadReport]:
    """Nudge features apart toward ``target_space`` where legal.

    Each feature pair closer than ``target_space`` (but legal) is pushed
    apart by moving the *smaller* feature away, up to ``step`` nm (default
    half the slack), if the move does not violate ``min_space`` to anyone
    else.  Returns the new region; the original is untouched.
    """
    components = region.components()
    report = SpreadReport(features=len(components))
    if len(components) < 2:
        return region, report
    reach = max(target_space, min_space)
    index = _neighbor_index(components, reach)
    moved: dict[int, tuple[int, int]] = {}
    for i, j in index.query_pairs(reach):
        a, b = components[i], components[j]
        d = _clearance(a, [b], reach + 1)
        if d >= target_space or d < min_space:
            continue
        mover, anchor = (i, j) if a.area <= b.area else (j, i)
        slack = target_space - d
        amount = step or max(slack // 2, 1)
        direction = _push_direction(components[mover].bbox, components[anchor].bbox)
        dx, dy = direction[0] * amount, direction[1] * amount
        candidate = components[mover].translated(dx, dy)
        others = [components[k] for k in range(len(components)) if k != mover]
        if _legal(candidate, others, min_space):
            moved[mover] = (dx, dy)
            components[mover] = candidate
            report.moved += 1
    out = Region()
    for comp in components:
        out = out | comp
    return out, report


def _push_direction(mover: Rect, anchor: Rect) -> tuple[int, int]:
    mc, ac = mover.center, anchor.center
    dx = mc.x - ac.x
    dy = mc.y - ac.y
    if abs(dx) >= abs(dy):
        return ((1 if dx >= 0 else -1), 0)
    return (0, (1 if dy >= 0 else -1))


def _legal(candidate: Region, others: list[Region], min_space: int) -> bool:
    halo = candidate.grown(min_space - 1) if min_space > 1 else candidate
    for other in others:
        if halo.overlaps(other):
            return False
    return True


def redistribute_channel(
    region: Region,
    min_space: int,
    lo: int,
    hi: int,
    horizontal_wires: bool = True,
) -> tuple[Region, SpreadReport]:
    """Evenly redistribute parallel wires across a routing channel.

    The global form of wire spreading: all features (assumed parallel
    wires sortable along the cross axis) are re-placed between ``lo`` and
    ``hi`` with equal gaps — the way routers consume white space after
    detail routing.  Gaps never fall below ``min_space``; if the channel
    cannot hold the wires legally the input is returned unchanged.

    ``horizontal_wires`` selects the cross axis (True: wires run in x and
    are redistributed along y).
    """
    components = region.components()
    report = SpreadReport(features=len(components))
    if len(components) < 2:
        return region, report

    def pos(c: Region) -> int:
        bb = c.bbox
        return bb.y0 if horizontal_wires else bb.x0

    def size(c: Region) -> int:
        bb = c.bbox
        return bb.height if horizontal_wires else bb.width

    order = sorted(range(len(components)), key=lambda i: pos(components[i]))
    total_size = sum(size(components[i]) for i in order)
    slack = (hi - lo) - total_size
    n_gaps = len(order) - 1
    if slack < n_gaps * min_space:
        return region, report
    gap = slack // n_gaps
    out = Region()
    cursor = lo
    for rank, i in enumerate(order):
        comp = components[i]
        delta = cursor - pos(comp)
        if delta != 0:
            comp = comp.translated(0, delta) if horizontal_wires else comp.translated(delta, 0)
            report.moved += 1
        out = out | comp
        cursor += size(comp) + (gap if rank < n_gaps else 0)
    return out, report


def widen_wires(
    region: Region, min_space: int, widen_by: int
) -> tuple[Region, SpreadReport]:
    """Fatten each feature by ``widen_by`` per side where the result keeps
    ``min_space`` to every neighbour; per-feature all-or-nothing."""
    components = region.components()
    report = SpreadReport(features=len(components))
    result = list(components)
    for i, comp in enumerate(components):
        candidate = comp.grown(widen_by)
        others = [result[k] for k in range(len(result)) if k != i]
        if _legal(candidate, others, min_space):
            result[i] = candidate
            report.widened += 1
    out = Region()
    for comp in result:
        out = out | comp
    return out, report
