"""Defect size distributions.

The industry-standard Stapper form: defect density rises linearly up to a
peak size ``x0`` and falls as ``1/x^3`` beyond it.  The distribution is
normalized over ``[x_min, x_max]`` so it can be used directly as a
probability density for critical-area integration and for sampling
synthetic defects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class DefectSizeDistribution:
    """p(x) ~ x / x0^2 for x <= x0, ~ x0^2 / x^3 beyond (continuous at x0)."""

    x0_nm: float
    x_max_nm: float
    x_min_nm: float = 1.0

    def __post_init__(self):
        if not (0 < self.x_min_nm < self.x0_nm < self.x_max_nm):
            raise ValueError("need 0 < x_min < x0 < x_max")

    # unnormalized piecewise density
    def _raw(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        below = x / self.x0_nm**2
        above = self.x0_nm**2 / x**3
        return np.where(x <= self.x0_nm, below, above)

    @property
    def _norm(self) -> float:
        # integral below: (x0^2 - xmin^2) / (2 x0^2)
        below = (self.x0_nm**2 - self.x_min_nm**2) / (2 * self.x0_nm**2)
        # integral above: x0^2/2 * (1/x0^2 - 1/xmax^2)
        above = 0.5 * (1.0 - self.x0_nm**2 / self.x_max_nm**2)
        return below + above

    def pdf(self, x) -> np.ndarray:
        """Normalized probability density at size(s) ``x``."""
        x = np.asarray(x, dtype=float)
        out = self._raw(x) / self._norm
        return np.where((x < self.x_min_nm) | (x > self.x_max_nm), 0.0, out)

    def cdf(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        x = np.clip(x, self.x_min_nm, self.x_max_nm)
        below = (np.minimum(x, self.x0_nm) ** 2 - self.x_min_nm**2) / (2 * self.x0_nm**2)
        above = np.where(
            x > self.x0_nm,
            0.5 * (1.0 - self.x0_nm**2 / x**2),
            0.0,
        )
        return (below + above) / self._norm

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Inverse-CDF sampling of defect sizes."""
        u = rng.uniform(0.0, 1.0, n) * self._norm
        below_mass = (self.x0_nm**2 - self.x_min_nm**2) / (2 * self.x0_nm**2)
        out = np.empty(n)
        small = u <= below_mass
        out[small] = np.sqrt(self.x_min_nm**2 + 2 * self.x0_nm**2 * u[small])
        rest = u[~small] - below_mass
        # invert 0.5 * (1 - x0^2/x^2) = rest
        out[~small] = self.x0_nm / np.sqrt(np.maximum(1.0 - 2.0 * rest, 1e-12))
        return np.clip(out, self.x_min_nm, self.x_max_nm)

    def quadrature_sizes(self, n: int = 16) -> np.ndarray:
        """Geometric size grid for critical-area integration."""
        return np.geomspace(self.x_min_nm, self.x_max_nm, n)
