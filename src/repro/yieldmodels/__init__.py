"""Random-defect yield: defect size distributions, critical area analysis,
yield models, redundant-via insertion, and wire spreading/widening."""

from repro.yieldmodels.dsd import DefectSizeDistribution
from repro.yieldmodels.critical_area import (
    critical_area_shorts,
    critical_area_opens,
    weighted_critical_area,
)
from repro.yieldmodels.yield_model import (
    yield_poisson,
    yield_negative_binomial,
    layer_defect_lambda,
    YieldBreakdown,
)
from repro.yieldmodels.redundant_via import insert_redundant_vias, RedundantViaReport
from repro.yieldmodels.via_yield import via_yield, via_failure_lambda
from repro.yieldmodels.wire_spread import spread_wires, widen_wires, redistribute_channel
from repro.yieldmodels.montecarlo import (
    DefectInjector,
    DefectResult,
    estimate_fault_probability,
)
from repro.yieldmodels.fitting import (
    MonitorObservation,
    FittedDefectModel,
    fit_d0,
    fit_defect_model,
    predict_fail_fraction,
)

__all__ = [
    "DefectSizeDistribution",
    "critical_area_shorts",
    "critical_area_opens",
    "weighted_critical_area",
    "yield_poisson",
    "yield_negative_binomial",
    "layer_defect_lambda",
    "YieldBreakdown",
    "insert_redundant_vias",
    "RedundantViaReport",
    "via_yield",
    "via_failure_lambda",
    "spread_wires",
    "widen_wires",
    "redistribute_channel",
    "DefectInjector",
    "DefectResult",
    "estimate_fault_probability",
    "MonitorObservation",
    "FittedDefectModel",
    "fit_d0",
    "fit_defect_model",
    "predict_fail_fraction",
]
