"""Redundant-via insertion.

For every single cut, try to place a second cut next to it such that the
result is DRC-clean: the new cut must keep via-to-via spacing, stay
enclosed by both routing layers (optionally extending them when allowed),
and not collide with other geometry.  The candidate order (right, left,
up, down) and the deterministic scan order make runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import BaseReport
from repro.geometry import GridIndex, Rect, Region
from repro.layout import Cell, Layer
from repro.tech.technology import Technology


@dataclass
class RedundantViaReport(BaseReport):
    total_vias: int = 0
    already_redundant: int = 0
    inserted: int = 0
    unfixable: int = 0
    added_metal_area: int = 0
    insertions: list[Rect] = field(default_factory=list)

    @property
    def findings_count(self) -> int:
        return self.unfixable

    @property
    def coverage(self) -> float:
        """Fraction of via sites with two or more cuts after insertion."""
        if self.total_vias == 0:
            return 1.0
        return (self.already_redundant + self.inserted) / self.total_vias

    def summary(self) -> str:
        return (
            f"redundant vias: {self.total_vias} sites, "
            f"{self.already_redundant} already redundant, "
            f"{self.inserted} inserted, {self.unfixable} unfixable "
            f"-> coverage {self.coverage:.1%}"
        )


def insert_redundant_vias(
    cell: Cell,
    tech: Technology,
    via_layer: Layer | None = None,
    extend_metal: bool = True,
) -> RedundantViaReport:
    """Add redundant cuts on ``via_layer`` (default via1), in place.

    ``extend_metal`` permits patching the routing layers to enclose the
    new cut (the "smart" flow); without it insertion is opportunistic
    (only where existing metal already encloses a second cut).
    """
    via_layer = via_layer or tech.layers.via1
    lower_layer, upper_layer = tech.layers.routing_layers_for(via_layer)
    v = tech.via_size
    space = int(1.2 * v)
    enc = tech.via_enclosure

    vias = list(cell.region(via_layer).rects())
    lower = cell.region(lower_layer)
    upper = cell.region(upper_layer)
    occupied = Region(vias)

    report = RedundantViaReport()
    # group cuts into sites: cuts within one pitch belong to one via site
    index: GridIndex[int] = GridIndex(cell_size=max(8 * v, 256))
    for i, rect in enumerate(vias):
        index.insert(rect, i)
    site_of = list(range(len(vias)))

    def find(i: int) -> int:
        while site_of[i] != i:
            site_of[i] = site_of[site_of[i]]
            i = site_of[i]
        return i

    for i, j in index.query_pairs(v + space):
        if vias[i].distance(vias[j]) <= v + space:
            site_of[find(j)] = find(i)

    sites: dict[int, list[Rect]] = {}
    for i, rect in enumerate(vias):
        sites.setdefault(find(i), []).append(rect)

    report.total_vias = len(sites)
    pitch = v + space
    added_lower: list[Rect] = []
    added_upper: list[Rect] = []
    for root in sorted(sites):
        cuts = sites[root]
        if len(cuts) >= 2:
            report.already_redundant += 1
            continue
        cut = cuts[0]
        placed = False
        for dx, dy in ((pitch, 0), (-pitch, 0), (0, pitch), (0, -pitch)):
            cand = cut.translated(dx, dy)
            halo = cand.expanded(space)
            if occupied.overlaps(Region(halo)):
                continue
            need = Region(cand.expanded(enc))
            low_ok = lower.covers(need)
            up_ok = upper.covers(need)
            if not (low_ok and up_ok):
                if not extend_metal:
                    continue
                # extend only layers that already reach the original cut;
                # the patch bridges from the old via to the new one
                patch = Rect(
                    min(cut.x0, cand.x0) - enc,
                    min(cut.y0, cand.y0) - enc,
                    max(cut.x1, cand.x1) + enc,
                    max(cut.y1, cand.y1) + enc,
                )
                if not low_ok:
                    added_lower.append(patch)
                if not up_ok:
                    added_upper.append(patch)
                report.added_metal_area += patch.area - (Region(patch) & (lower if not low_ok else upper)).area
            cell.add_rect(via_layer, cand)
            occupied = occupied | Region(cand)
            report.inserted += 1
            report.insertions.append(cand)
            placed = True
            break
        if not placed:
            report.unfixable += 1
    for patch in added_lower:
        cell.add_rect(lower_layer, patch)
    for patch in added_upper:
        cell.add_rect(upper_layer, patch)
    return report
