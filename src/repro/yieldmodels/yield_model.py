"""Yield models over critical area."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry import Region
from repro.tech.technology import DefectModel
from repro.yieldmodels.critical_area import weighted_critical_area
from repro.yieldmodels.dsd import DefectSizeDistribution

NM2_PER_CM2 = 1e14


def yield_poisson(lam: float) -> float:
    """Poisson limited yield ``exp(-lambda)``."""
    return math.exp(-lam)


def yield_negative_binomial(lam: float, alpha: float) -> float:
    """Negative-binomial yield ``(1 + lambda/alpha)^-alpha`` — defect
    clustering (finite alpha) always helps yield relative to Poisson."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return (1.0 + lam / alpha) ** (-alpha)


def layer_defect_lambda(
    region: Region,
    defects: DefectModel,
    d0_per_cm2: float | None = None,
) -> float:
    """Expected fault count for one layer: shorts + opens faults."""
    d0 = defects.d0_per_cm2 if d0_per_cm2 is None else d0_per_cm2
    dsd = DefectSizeDistribution(
        x0_nm=defects.x0_nm, x_max_nm=defects.max_size_nm
    )
    ca_short = weighted_critical_area(region, dsd, "shorts")
    ca_open = weighted_critical_area(region, dsd, "opens")
    return d0 * (ca_short + ca_open) / NM2_PER_CM2


@dataclass
class YieldBreakdown:
    """Per-mechanism lambda contributions and the combined yield."""

    lambdas: dict[str, float] = field(default_factory=dict)
    clustering_alpha: float = 2.0

    def add(self, name: str, lam: float) -> None:
        self.lambdas[name] = self.lambdas.get(name, 0.0) + lam

    @property
    def total_lambda(self) -> float:
        return sum(self.lambdas.values())

    @property
    def poisson(self) -> float:
        return yield_poisson(self.total_lambda)

    @property
    def negative_binomial(self) -> float:
        return yield_negative_binomial(self.total_lambda, self.clustering_alpha)

    def summary(self) -> str:
        lines = [f"yield breakdown (lambda total {self.total_lambda:.4g}):"]
        for name, lam in sorted(self.lambdas.items()):
            lines.append(f"  {name:<20} {lam:.4g}")
        lines.append(
            f"  poisson yield {self.poisson:.4f}, "
            f"neg-binomial (a={self.clustering_alpha:g}) {self.negative_binomial:.4f}"
        )
        return "\n".join(lines)
