"""Monte Carlo defect injection — the empirical check on the analytic
critical-area model.

Defects are sampled with sizes from the DSD and uniform positions over
the layout extent; each is classified geometrically:

* **short** — the (square) defect touches two or more distinct features,
* **open** — the defect spans a feature's full local width (approximated
  per canonical segment, matching the analytic estimator),
* benign otherwise.

``estimate_fault_probability`` then equals ``weighted_critical_area /
extent_area`` in expectation — a relationship the property tests pin
down, and the ablation bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import GridIndex, Rect, Region
from repro.yieldmodels.dsd import DefectSizeDistribution


@dataclass
class DefectResult:
    """Classification counts from one Monte Carlo run."""

    n_defects: int = 0
    shorts: int = 0
    opens: int = 0
    benign: int = 0
    kill_positions: list[tuple[int, int]] = field(default_factory=list)

    @property
    def fault_probability(self) -> float:
        if self.n_defects == 0:
            return 0.0
        return (self.shorts + self.opens) / self.n_defects


class DefectInjector:
    """Samples and classifies random defects over a layout region."""

    def __init__(self, region: Region, extent: Rect | None = None):
        self.region = region
        self.extent = extent or (region.bbox or Rect(0, 0, 1, 1))
        self._features = region.components()
        self._index: GridIndex[int] = GridIndex(
            cell_size=max((self.extent.width + self.extent.height) // 64, 256)
        )
        for i, feat in enumerate(self._features):
            self._index.insert(feat.bbox, i)
        self._feature_rects = [list(f.rects()) for f in self._features]

    def classify(self, defect: Rect) -> str:
        """'short', 'open', or 'benign' for one square defect."""
        candidates = self._index.query(defect)
        touched: list[int] = []
        for i in candidates:
            if any(defect.overlaps(r) for r in self._feature_rects[i]):
                touched.append(i)
        if len(touched) >= 2:
            return "short"
        if len(touched) == 1:
            # open when the defect spans a full segment width with its
            # centre alongside the segment — the same geometry the
            # analytic segment estimator integrates
            centre = defect.center
            for rect in self._feature_rects[touched[0]]:
                if not defect.overlaps(rect):
                    continue
                if rect.width <= rect.height:  # vertical-ish segment
                    if (
                        defect.x0 <= rect.x0
                        and defect.x1 >= rect.x1
                        and rect.y0 <= centre.y <= rect.y1
                    ):
                        return "open"
                else:
                    if (
                        defect.y0 <= rect.y0
                        and defect.y1 >= rect.y1
                        and rect.x0 <= centre.x <= rect.x1
                    ):
                        return "open"
        return "benign"

    def run(
        self,
        n_defects: int,
        dsd: DefectSizeDistribution,
        rng: np.random.Generator,
        keep_positions: bool = False,
    ) -> DefectResult:
        """Inject ``n_defects`` random defects and classify each."""
        result = DefectResult(n_defects=n_defects)
        if n_defects == 0:
            return result
        sizes = dsd.sample(n_defects, rng)
        xs = rng.integers(self.extent.x0, self.extent.x1, n_defects)
        ys = rng.integers(self.extent.y0, self.extent.y1, n_defects)
        for size, x, y in zip(sizes, xs, ys):
            half = int(size) // 2
            defect = Rect(int(x) - half, int(y) - half, int(x) + half + 1, int(y) + half + 1)
            kind = self.classify(defect)
            if kind == "short":
                result.shorts += 1
            elif kind == "open":
                result.opens += 1
            else:
                result.benign += 1
            if keep_positions and kind != "benign":
                result.kill_positions.append((int(x), int(y)))
        return result


def estimate_fault_probability(
    region: Region,
    dsd: DefectSizeDistribution,
    n_defects: int = 5000,
    seed: int = 1,
    extent: Rect | None = None,
) -> float:
    """One-call Monte Carlo estimate of P(random defect causes a fault)."""
    injector = DefectInjector(region, extent)
    rng = np.random.default_rng(seed)
    return injector.run(n_defects, dsd, rng).fault_probability
