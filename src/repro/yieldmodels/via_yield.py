"""Via failure statistics.

Single vias fail independently with probability ``p``; a redundant pair
fails only when both cuts fail (``p^2``).  With millions of vias on a die,
even tiny ``p`` dominates yield — the argument for redundant-via DFM.
"""

from __future__ import annotations

import math


def via_failure_lambda(n_single: int, n_redundant_pairs: int, p_fail: float) -> float:
    """Expected via-failure count."""
    if not 0.0 <= p_fail < 1.0:
        raise ValueError("p_fail must be in [0, 1)")
    return n_single * p_fail + n_redundant_pairs * p_fail * p_fail


def via_yield(n_single: int, n_redundant_pairs: int, p_fail: float) -> float:
    """Yield limited by via failures (Poisson)."""
    return math.exp(-via_failure_lambda(n_single, n_redundant_pairs, p_fail))
