"""Job model and typed errors for the verification service.

A :class:`Job` is one client request — "verify this cell I just edited"
— travelling through the daemon: submitted into the priority queue,
dispatched against a resident layout session, and finished with a
wire-safe result summary (plus, in process, the full report object).
Every state transition is timestamped so queue-wait and service-time
latencies are measurable per job, and every terminal state maps onto
the CLI exit-code contract documented in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Any

from repro.core.report import BaseReport
from repro.service import errors


class ServiceError(Exception):
    """Base class of every typed service failure.

    ``code`` is the wire identifier (stable across releases); the
    message is human-readable detail.
    """

    code = errors.SERVICE_ERROR

    def to_dict(self) -> dict[str, str]:
        return {"code": self.code, "message": str(self)}


class QueueFullError(ServiceError):
    """The job queue is at capacity: the request was shed, not queued."""

    code = errors.QUEUE_FULL


class UnknownJobError(ServiceError):
    """No job with the requested id exists on this daemon."""

    code = errors.UNKNOWN_JOB


class BadRequestError(ServiceError):
    """The request is malformed: unknown kind, missing parameter, ..."""

    code = errors.BAD_REQUEST


class ServiceClosedError(ServiceError):
    """The service is shutting down and no longer accepts work."""

    code = errors.SERVICE_CLOSED


class Priority(IntEnum):
    """Priority classes, strictly ordered: lower value is served first.

    ``INTERACTIVE`` is the in-design verify-while-editing loop the
    service exists for; ``BATCH`` is scripted regression traffic;
    ``BACKGROUND`` is opportunistic full-chip work.  Fairness between
    clients applies *within* a class (round-robin), never across
    classes.
    """

    INTERACTIVE = 0
    BATCH = 1
    BACKGROUND = 2

    @classmethod
    def from_name(cls, name: "str | int | Priority") -> "Priority":
        if isinstance(name, Priority):
            return name
        if isinstance(name, int):
            return cls(name)
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise BadRequestError(
                f"unknown priority {name!r} (expected one of "
                f"{', '.join(p.name.lower() for p in cls)})"
            ) from None


class JobState(str, Enum):
    """Lifecycle of a job; the five non-QUEUED/RUNNING states are
    terminal."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.QUEUED, JobState.RUNNING)


_JOB_IDS = itertools.count(1)

# Job kinds that run a verification engine (vs. control operations
# handled at the protocol layer).
VERIFY_KINDS = ("scan", "drc", "matrix")


@dataclass
class Job:
    """One request's full lifecycle record.

    ``params`` is the client's raw parameter dict (gds path, cell,
    layer, tile size, ...), validated at execution time.  ``report``
    holds the real :class:`~repro.core.report.BaseReport` for in-process
    clients; ``result`` is the JSON-safe summary that crosses the wire.
    """

    client: str
    kind: str
    params: dict[str, Any]
    priority: Priority = Priority.INTERACTIVE
    timeout_s: float | None = None
    id: int = field(default_factory=lambda: next(_JOB_IDS))
    state: JobState = JobState.QUEUED
    error: str | None = None
    submitted_monotonic: float = 0.0
    started_monotonic: float = 0.0
    finished_monotonic: float = 0.0
    report: BaseReport | None = None
    result: dict[str, Any] | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def wait_s(self) -> float:
        """Queue wait: submit to dispatch (0 until dispatched)."""
        if not self.started_monotonic:
            return 0.0
        return self.started_monotonic - self.submitted_monotonic

    @property
    def service_s(self) -> float:
        """Service time: dispatch to finish (0 until finished)."""
        if not self.finished_monotonic or not self.started_monotonic:
            return 0.0
        return self.finished_monotonic - self.started_monotonic

    def fail(self, error: str, state: JobState = JobState.FAILED) -> None:
        """Move to a terminal failure state with ``error`` recorded."""
        self.state = state
        self.error = error

    def snapshot(self) -> dict[str, Any]:
        """The wire-safe status/result view of this job."""
        out: dict[str, Any] = {
            "id": self.id,
            "client": self.client,
            "kind": self.kind,
            "priority": self.priority.name.lower(),
            "state": self.state.value,
            "wait_s": round(self.wait_s, 6),
            "service_s": round(self.service_s, 6),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = self.result
        return out
