"""The verification service: resident sessions + warm pool + shared store.

:class:`VerificationService` is the in-process heart of the daemon (the
socket front end in :mod:`repro.service.daemon` is a thin wrapper).  It
owns four long-lived pieces and wires every job through all of them:

* a :class:`~repro.service.session.SessionManager` of resident layouts,
  so a request against a warm session skips GDSII parse, flatten, and
  canonicalization entirely;
* one persistent :class:`~repro.parallel.TileExecutor` whose worker
  pool stays warm across requests (the ``pool.warm_reuse`` counter
  proves it);
* a :class:`~repro.service.store.ResultStore` shared across runs and
  clients, so any client's re-verify after an edit recomputes only the
  dirty tiles — whoever computed the clean ones;
* a :class:`~repro.service.queue.PriorityJobQueue` dispatched by a
  single background thread: strict priority bands, round-robin across
  clients within a band, bounded depth with typed shed.

Jobs run one at a time on the dispatcher thread — the parallelism is
*inside* a job (the executor's worker pool), which keeps results
deterministic and the warm pool's payload residency coherent.  Per-job
``timeout_s`` and :meth:`~VerificationService.cancel` reuse the
executor's cooperative abort machinery: the run raises
:class:`~repro.parallel.AbortRun` at the next tile boundary and any
checkpoint is flushed, exactly like an operator interrupt.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any

from repro import __version__
from repro.drc.engine import run_drc
from repro.litho.fullchip import scan_full_chip
from repro.litho.model import LithoModel
from repro.obs import get_registry, names
from repro.parallel import AbortRun, TileExecutor
from repro.service.jobs import (
    VERIFY_KINDS,
    BadRequestError,
    Job,
    JobState,
    Priority,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)
from repro.service.queue import PriorityJobQueue
from repro.service.session import SessionManager, resolve_layer
from repro.service.store import ResultStore
from repro.tech import make_node

# Terminal jobs kept for status queries before the history is trimmed.
_JOB_HISTORY = 1024


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_ms:
        return 0.0
    return sorted_ms[min(len(sorted_ms) - 1, int(q * (len(sorted_ms) - 1) + 0.5))]


class VerificationService:
    """Long-lived verification engine serving many requests.

    ``autostart=False`` leaves the dispatcher thread unstarted — jobs
    queue up until :meth:`start` — which tests use to observe and
    reorder the queue deterministically.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        node: int = 45,
        max_depth: int = 256,
        max_sessions: int = 4,
        store_entries: int = 100_000,
        latency_window: int = 2048,
        autostart: bool = True,
        session_store_dir: str | None = None,
    ) -> None:
        self.default_node = node
        self.executor = TileExecutor(jobs, persistent=True)
        self.sessions = SessionManager(
            max_sessions=max_sessions, store_dir=session_store_dir
        )
        self.store = ResultStore(max_entries=store_entries)
        self.queue = PriorityJobQueue(max_depth=max_depth)
        self._jobs: OrderedDict[int, Job] = OrderedDict()
        self._lock = threading.Lock()
        self._latencies_ms: deque[float] = deque(maxlen=latency_window)
        self._techs: dict[int, Any] = {}
        self._models: dict[int, LithoModel] = {}
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timeout": 0,
            "shed": 0,
        }
        self._closing = threading.Event()
        self._dispatcher: threading.Thread | None = None
        if autostart:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._dispatcher is not None or self._closing.is_set():
            return
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    def close(self) -> None:
        """Stop accepting work, cancel queued jobs, release resources.

        The in-flight job (if any) finishes first — cancel it explicitly
        beforehand for a faster stop.  Idempotent.
        """
        if self._closing.is_set():
            return
        self._closing.set()
        self.queue.close()
        # drain what never got dispatched
        while True:
            job = self.queue.pop(timeout=0)
            if job is None:
                break
            self._finish_cancelled(job, "service shut down before dispatch")
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=60.0)
        self.executor.close()
        self.sessions.close()

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- client surface -------------------------------------------------
    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None = None,
        *,
        client: str = "local",
        priority: "Priority | str | int" = Priority.INTERACTIVE,
        timeout_s: float | None = None,
    ) -> Job:
        """Queue a verification job; returns the live :class:`Job`.

        Raises :class:`BadRequestError` for an unknown kind,
        :class:`QueueFullError` when the queue sheds the request, and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        if self._closing.is_set():
            raise ServiceClosedError("service is shutting down")
        if kind not in VERIFY_KINDS:
            raise BadRequestError(
                f"unknown job kind {kind!r} (expected one of {', '.join(VERIFY_KINDS)})"
            )
        job = Job(
            client=client,
            kind=kind,
            params=dict(params or {}),
            priority=Priority.from_name(priority),
            timeout_s=timeout_s,
        )
        job.submitted_monotonic = time.monotonic()
        registry = get_registry()
        with self._lock:
            self._jobs[job.id] = job
            while len(self._jobs) > _JOB_HISTORY:
                oldest = next(iter(self._jobs.values()))
                if not oldest.state.terminal:
                    break
                del self._jobs[oldest.id]
        try:
            self.queue.push(job)
        except QueueFullError:
            with self._lock:
                self.counters["shed"] += 1
                del self._jobs[job.id]
            registry.inc(names.SERVICE_SHED)
            raise
        with self._lock:
            self.counters["submitted"] += 1
        registry.inc(names.SERVICE_JOBS_SUBMITTED)
        registry.gauge(names.SERVICE_QUEUE_DEPTH, len(self.queue))
        return job

    def submit_batch(
        self,
        items: "list[dict[str, Any]]",
        *,
        client: str = "local",
        priority: "Priority | str | int" = Priority.BACKGROUND,
        timeout_s: float | None = None,
    ) -> "list[Job | ServiceError]":
        """Queue many jobs at once with partial-failure semantics.

        Each item is ``{"kind": ..., "params": {...}}``.  The returned
        list is aligned with ``items``: a live :class:`Job` where the
        submit succeeded, the typed :class:`ServiceError` (not raised)
        where that one item was rejected — a malformed item or a shed
        request never aborts the rest of the batch.  Only a service
        already shut down fails the whole call.

        Defaults to the ``background`` band so a batch never starves
        interactive submits.
        """
        if self._closing.is_set():
            raise ServiceClosedError("service is shutting down")
        registry = get_registry()
        registry.inc(names.SERVICE_BATCHES)
        out: list[Job | ServiceError] = []
        for item in items:
            try:
                if not isinstance(item, dict):
                    raise BadRequestError("batch item must be a JSON object")
                kind = item.get("kind")
                if not isinstance(kind, str):
                    raise BadRequestError("batch item missing 'kind'")
                params = item.get("params") or {}
                if not isinstance(params, dict):
                    raise BadRequestError("batch item 'params' must be a JSON object")
                out.append(
                    self.submit(
                        kind,
                        params,
                        client=client,
                        priority=priority,
                        timeout_s=timeout_s,
                    )
                )
                registry.inc(names.SERVICE_BATCH_JOBS)
            except ServiceError as exc:
                registry.inc(names.SERVICE_BATCH_REJECTED)
                out.append(exc)
        return out

    def wait(self, job: Job, timeout: float | None = None) -> Job:
        """Block until ``job`` is terminal (or ``timeout`` elapses)."""
        job.done.wait(timeout=timeout)
        return job

    def job(self, job_id: int) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job with id {job_id}")
        return job

    def status(self, job_id: int) -> dict[str, Any]:
        return self.job(job_id).snapshot()

    def cancel(self, job_id: int) -> dict[str, Any]:
        """Cancel a job: immediately if still queued, cooperatively (at
        the next tile boundary) if running.  Terminal jobs are left
        alone."""
        job = self.job(job_id)
        if job.state.terminal:
            return job.snapshot()
        job.cancel_event.set()
        if self.queue.remove(job_id) is not None:
            self._finish_cancelled(job, "cancelled while queued")
        return job.snapshot()

    def metrics(self) -> dict[str, Any]:
        """Live service metrics, independent of the obs registry state."""
        with self._lock:
            counters = dict(self.counters)
            latencies = sorted(self._latencies_ms)
        return {
            "version": __version__,
            "jobs": counters,
            "queue": {"depth": len(self.queue), **self.queue.snapshot()},
            "store": {
                "entries": len(self.store),
                "hits": self.store.hits,
                "misses": self.store.misses,
                "hit_rate": round(self.store.hit_rate, 4),
                "evictions": self.store.evictions,
            },
            "latency_ms": {
                "count": len(latencies),
                "p50": round(_percentile(latencies, 0.50), 3),
                "p99": round(_percentile(latencies, 0.99), 3),
            },
        }

    # -- dispatch -------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.25)
            if job is None:
                if self._closing.is_set():
                    return
                continue
            self._run_job(job)

    def _finish_cancelled(self, job: Job, reason: str) -> None:
        job.fail(reason, JobState.CANCELLED)
        job.finished_monotonic = time.monotonic()
        with self._lock:
            self.counters["cancelled"] += 1
        get_registry().inc(names.SERVICE_JOBS_CANCELLED)
        job.done.set()

    def _run_job(self, job: Job) -> None:
        if job.cancel_event.is_set() or job.done.is_set():
            if not job.done.is_set():
                self._finish_cancelled(job, "cancelled while queued")
            return
        registry = get_registry()
        job.started_monotonic = time.monotonic()
        job.state = JobState.RUNNING
        timed_out = threading.Event()
        timer: threading.Timer | None = None
        if job.timeout_s is not None:

            def _expire() -> None:
                timed_out.set()
                job.cancel_event.set()

            timer = threading.Timer(job.timeout_s, _expire)
            timer.daemon = True
            timer.start()
        self.executor.cancel_event = job.cancel_event
        outcome = "completed"
        try:
            job.report, job.result = self._execute(job)
            job.state = JobState.DONE
        except AbortRun:
            if timed_out.is_set():
                job.fail(f"timed out after {job.timeout_s:g}s", JobState.TIMEOUT)
                outcome = "timeout"
            else:
                job.fail("cancelled while running", JobState.CANCELLED)
                outcome = "cancelled"
        except ServiceError as exc:
            job.fail(f"{exc.code}: {exc}")
            outcome = "failed"
        except Exception as exc:
            # the daemon must outlive any single bad job
            job.fail(f"{type(exc).__name__}: {exc}")
            outcome = "failed"
        finally:
            if timer is not None:
                timer.cancel()
            self.executor.cancel_event = None
            job.finished_monotonic = time.monotonic()
            with self._lock:
                self.counters[outcome] += 1
                total_ms = (job.wait_s + job.service_s) * 1000.0
                self._latencies_ms.append(total_ms)
                latencies = sorted(self._latencies_ms)
            registry.inc(
                {
                    "completed": names.SERVICE_JOBS_COMPLETED,
                    "failed": names.SERVICE_JOBS_FAILED,
                    "cancelled": names.SERVICE_JOBS_CANCELLED,
                    "timeout": names.SERVICE_JOBS_TIMEOUT,
                }[outcome]
            )
            registry.observe_hist(names.SERVICE_WAIT_SECONDS_HIST, job.wait_s)
            registry.observe_hist(names.SERVICE_SERVICE_SECONDS_HIST, job.service_s)
            registry.gauge(names.SERVICE_P50_MS, round(_percentile(latencies, 0.50), 3))
            registry.gauge(names.SERVICE_P99_MS, round(_percentile(latencies, 0.99), 3))
            registry.gauge(names.SERVICE_QUEUE_DEPTH, len(self.queue))
            job.done.set()

    # -- execution ------------------------------------------------------
    def _tech(self, node: int) -> Any:
        tech = self._techs.get(node)
        if tech is None:
            tech = self._techs[node] = make_node(node)
        return tech

    def _model(self, node: int) -> LithoModel:
        model = self._models.get(node)
        if model is None:
            model = self._models[node] = LithoModel(self._tech(node).litho)
        return model

    def _execute(self, job: Job) -> tuple[Any, dict[str, Any]]:
        params = job.params
        registry = get_registry()
        registry.inc(names.SERVICE_REQUESTS)
        if job.kind == "matrix":
            # a self-contained scenario item: no layout file, no session
            # — the shared store deduplicates identical windows across
            # jobs, batches, and clients
            from repro.matrix.engine import execute_matrix_job

            try:
                result = execute_matrix_job(params, store=self.store)
            except ValueError as exc:
                raise BadRequestError(str(exc)) from exc
            return None, result
        gds = params.get("gds")
        if not gds:
            raise BadRequestError("missing required parameter 'gds'")
        node = int(params.get("node", self.default_node))
        tile_nm = int(params.get("tile", 4000))
        chunk_timeout = params.get("chunk_timeout")
        limit = int(params.get("limit", 10))
        session = self.sessions.get(gds)
        tech = self._tech(node)
        # store-backed sessions serve windowed rects straight from the
        # mmapped store file: no parse, no flatten, no arena — and the
        # tile cache keys are interchangeable with the in-RAM path
        layout_store = session.store_for(params.get("cell"))
        cell = session.cell(params.get("cell")) if layout_store is None else None
        if job.kind == "scan":
            layer = resolve_layer(tech, params.get("layer", "M1"))
            if layout_store is not None:
                store_layer = layout_store.layer_for(layer)
                # an empty layer has no rect run to window; its (empty)
                # region scans identically
                drawn = store_layer if not store_layer.is_empty else store_layer.region()
                sharer = None
            else:
                drawn = session.region(cell, layer)
                sharer = session.scan_sharer(cell, layer)
            view = self.store.view(
                self.store.namespace("scan", __version__, node)
            )
            report = scan_full_chip(
                self._model(node),
                drawn,
                tile_nm=tile_nm,
                pinch_limit=tech.metal_width // 2,
                jobs=self.executor.jobs,
                cache=view,
                timeout=chunk_timeout,
                executor=self.executor,
                sharer=sharer,
            )
            listing = [str(h) for h in report.hotspots[:limit]]
        elif job.kind == "drc":
            deck = tech.rules.minimum()
            view = self.store.view(
                self.store.namespace(
                    "drc", __version__, node, tuple(repr(r) for r in deck)
                )
            )
            if layout_store is not None:
                report = run_drc(
                    None,
                    deck,
                    None,
                    jobs=self.executor.jobs,
                    tile_nm=tile_nm,
                    cache=view,
                    timeout=chunk_timeout,
                    executor=self.executor,
                    store=layout_store,
                )
            else:
                report = run_drc(
                    cell,
                    deck,
                    None,
                    jobs=self.executor.jobs,
                    tile_nm=tile_nm,
                    cache=view,
                    timeout=chunk_timeout,
                    region_source=session.region_source(cell),
                    executor=self.executor,
                    sharer=session.drc_sharer(cell, None),
                )
            listing = [str(v) for v in report.violations[:limit]]
        else:  # unreachable: submit() validates the kind
            raise BadRequestError(f"unknown job kind {job.kind!r}")
        result = {
            "ok": report.ok,
            "findings": report.findings_count,
            "tiles": report.tiles,
            "tiles_computed": report.tiles_computed,
            "tiles_cached": report.tiles_cached,
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "quarantined": len(report.quarantined),
            "summary": report.summary(),
            "listing": listing,
        }
        return report, result


# ServiceClient lives with the rest of the client surface now; the
# import is kept so `from repro.service.core import ServiceClient`
# call sites keep working.
from repro.service.client import ServiceClient as ServiceClient  # noqa: E402
