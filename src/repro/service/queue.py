"""Priority job queue with per-client fairness and bounded depth.

Dispatch order is: strict priority bands first (all ``INTERACTIVE``
work before any ``BATCH``, and so on), and **round-robin across
clients** within a band — a client that dumps a hundred jobs into a
band cannot starve a client that submits one, because each pop takes
the next client in rotation and only then that client's oldest job
(FIFO per client).

Depth is bounded: when ``max_depth`` queued jobs are already waiting,
:meth:`PriorityJobQueue.push` sheds the request with
:class:`~repro.service.jobs.QueueFullError` instead of queueing it —
the daemon stays responsive and the client gets an explicit, typed
"try later" rather than an unbounded latency tail.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from repro.service.jobs import (
    Job,
    Priority,
    QueueFullError,
    ServiceClosedError,
)


class PriorityJobQueue:
    """Thread-safe bounded queue: priority bands, fair within a band.

    Each band holds an ``OrderedDict`` mapping client name to that
    client's FIFO of queued jobs; the OrderedDict order *is* the
    round-robin rotation (pop takes the first client, serves its oldest
    job, and moves the client to the back if it still has work).
    """

    def __init__(self, max_depth: int = 256) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._bands: dict[Priority, OrderedDict[str, deque[Job]]] = {
            p: OrderedDict() for p in Priority
        }
        self._depth = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return self._depth

    def push(self, job: Job) -> None:
        """Queue ``job``, or shed with a typed error when full/closed."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shutting down")
            if self._depth >= self.max_depth:
                raise QueueFullError(
                    f"queue full ({self._depth}/{self.max_depth} jobs); "
                    "retry later or lower the submission rate"
                )
            band = self._bands[job.priority]
            fifo = band.get(job.client)
            if fifo is None:
                fifo = band[job.client] = deque()
            fifo.append(job)
            self._depth += 1
            self._not_empty.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """Next job by (priority, client rotation, per-client FIFO).

        Blocks up to ``timeout`` seconds (forever when ``None``);
        returns ``None`` on timeout or when the queue is closed and
        drained.
        """
        with self._not_empty:
            while self._depth == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            for band in self._bands.values():
                if not band:
                    continue
                client, fifo = next(iter(band.items()))
                job = fifo.popleft()
                # rotate: served client goes to the back of its band,
                # or leaves the rotation if it has nothing queued.
                del band[client]
                if fifo:
                    band[client] = fifo
                self._depth -= 1
                return job
            raise AssertionError("depth > 0 with all bands empty")

    def remove(self, job_id: int) -> Job | None:
        """Remove and return a still-queued job, or ``None`` if it is
        no longer in the queue (already dispatched or never queued)."""
        with self._lock:
            for band in self._bands.values():
                for client, fifo in band.items():
                    for job in fifo:
                        if job.id == job_id:
                            fifo.remove(job)
                            if not fifo:
                                del band[client]
                            self._depth -= 1
                            return job
            return None

    def close(self) -> None:
        """Refuse new work and wake every blocked :meth:`pop`."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def snapshot(self) -> dict[str, int]:
        """Queued-job count per priority band (for metrics/status)."""
        with self._lock:
            return {
                p.name.lower(): sum(len(f) for f in band.values())
                for p, band in self._bands.items()
            }
