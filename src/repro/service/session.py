"""Resident layout sessions: load a GDSII once, serve many requests.

The one-shot CLI pays the full cost — parse the GDSII, flatten the
hierarchy, canonicalize each layer, pack geometry into shared memory —
on *every* invocation, which dwarfs the incremental tile work the cache
makes cheap.  A :class:`LayoutSession` pays it once: the layout, the
per-layer canonical regions, and the packed shared-memory arenas are
all cached for the life of the session, so a verify request against a
warm session is queue + dirty-tile simulation and nothing else.

Sessions hand the engines *unowned* :class:`~repro.parallel.shm.SharedPayload`
wrappers (``owned=False``): the executor maps the same arena into the
warm worker pool on every request and leaves the block alone when the
run ends; the session unlinks its arenas on :meth:`close` or reload.

Staleness is stat-based: :class:`SessionManager` re-stats the file per
request and reloads when size or mtime changed — an edited layout gets
a fresh session (and fresh arenas, hence new cache keys for dirty
tiles) on its next request.
"""

from __future__ import annotations

import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Any, Callable

from repro.drc.engine import _DrcPayload, _SharedLayerRegions, _share_drc_payload
from repro.gdsii import read_gds
from repro.geometry import Rect, Region
from repro.layout import Layer
from repro.layout.cell import Cell
from repro.litho.fullchip import _ScanGeometry, _ScanPayload, _share_payload
from repro.obs import get_registry, names
from repro.parallel.shm import ShmArena, SharedPayload
from repro.service.jobs import BadRequestError

log = logging.getLogger("repro.service")


def resolve_layer(tech: Any, name: str) -> Layer:
    """Look up a tech layer by name, with a typed error for the wire."""
    for f in fields(tech.layers):
        layer = getattr(tech.layers, f.name)
        if isinstance(layer, Layer) and layer.name == name:
            return layer
    raise BadRequestError(f"unknown layer {name!r} for this tech node")


@dataclass(frozen=True)
class SessionKey:
    """Identity of a loaded layout file: path plus stat signature."""

    path: str
    mtime_ns: int
    size: int

    @classmethod
    def stat(cls, path: str) -> "SessionKey":
        try:
            st = os.stat(path)
        except OSError as exc:
            raise BadRequestError(f"cannot stat layout {path!r}: {exc}") from exc
        return cls(path=os.path.abspath(path), mtime_ns=st.st_mtime_ns, size=st.st_size)


class LayoutSession:
    """One resident layout: parsed cells, cached regions, packed arenas.

    All caches are keyed so that a request can only ever hit geometry
    derived from this exact file version; the manager retires the whole
    session (arenas included) when the file changes.
    """

    def __init__(self, key: SessionKey) -> None:
        self.key = key
        self.layout = read_gds(key.path)
        self._lock = threading.Lock()
        self._regions: dict[tuple[str, str, str], Region] = {}
        # (kind, cell, discriminator) -> (arena, parent-side shared object)
        self._arenas: dict[tuple[str, ...], tuple[ShmArena, Any]] = {}
        self._closed = False

    def cell(self, name: str | None = None) -> Cell:
        try:
            if name:
                return self.layout.cell(name)
            return self.layout.top_cell()
        except (KeyError, ValueError) as exc:
            raise BadRequestError(str(exc)) from exc

    def region(self, cell: Cell, layer: Layer, window: Rect | None = None) -> Region:
        """``cell.region(layer, window)``, cached per session."""
        cache_key = (cell.name, repr(layer), repr(window))
        with self._lock:
            region = self._regions.get(cache_key)
        if region is None:
            region = cell.region(layer, window)
            with self._lock:
                region = self._regions.setdefault(cache_key, region)
        return region

    def region_source(
        self, cell: Cell
    ) -> Callable[[Layer, Rect | None], Region]:
        """A ``region_source`` hook for :func:`repro.drc.engine.run_drc`
        serving this session's cached regions."""

        def source(layer: Layer, window: Rect | None) -> Region:
            return self.region(cell, layer, window)

        return source

    # -- shared-memory residency ----------------------------------------
    def scan_sharer(
        self, cell: Cell, layer: Layer
    ) -> Callable[[_ScanPayload], SharedPayload | None]:
        """A ``sharer`` for :func:`~repro.litho.fullchip.scan_full_chip`
        that reuses one packed arena per (cell, layer) for the session's
        lifetime.

        Valid because the payload's drawn geometry is rebuilt from this
        session's cached :class:`Region` on every request — same
        canonical rect order, so substituting the resident shared
        geometry is bit-identical to packing afresh.  Payloads the
        resident arena cannot represent (mask layers, legacy full-sweep
        regions) fall back to the per-run packer.
        """
        arena_key = ("scan", cell.name, repr(layer))

        def sharer(payload: _ScanPayload) -> SharedPayload | None:
            if payload.mask is not None or not isinstance(
                payload.drawn, _ScanGeometry
            ):
                return _share_payload(payload)
            with self._lock:
                cached = self._arenas.get(arena_key)
            if cached is None:
                arena = ShmArena.pack([payload.drawn.rects])
                if arena is None:
                    return None
                geometry = payload.drawn.shared(arena.handles[0])
                with self._lock:
                    if arena_key in self._arenas:
                        arena.close()  # lost a race: use the winner's
                    else:
                        self._arenas[arena_key] = (arena, geometry)
                    cached = self._arenas[arena_key]
            arena, geometry = cached
            return SharedPayload(
                replace(payload, drawn=geometry), arena, owned=False
            )

        return sharer

    def drc_sharer(
        self, cell: Cell, window: Rect | None
    ) -> Callable[[_DrcPayload], SharedPayload | None]:
        """A ``sharer`` for :func:`~repro.drc.engine.run_drc` reusing
        one packed arena per (cell, window, layer set)."""

        def sharer(payload: _DrcPayload) -> SharedPayload | None:
            if isinstance(payload.regions, _SharedLayerRegions):
                return _share_drc_payload(payload)
            layers = sorted(payload.regions, key=repr)
            arena_key = (
                "drc",
                cell.name,
                repr(window),
                *(repr(layer) for layer in layers),
            )
            with self._lock:
                cached = self._arenas.get(arena_key)
            if cached is None:
                arena = ShmArena.pack(
                    [list(payload.regions[layer].rects()) for layer in layers]
                )
                if arena is None:
                    return None
                handles = dict(zip(layers, arena.handles))
                with self._lock:
                    if arena_key in self._arenas:
                        arena.close()
                    else:
                        self._arenas[arena_key] = (arena, handles)
                    cached = self._arenas[arena_key]
            arena, handles = cached
            store = _SharedLayerRegions(handles, payload.regions)
            return SharedPayload(
                replace(payload, regions=store), arena, owned=False
            )

        return sharer

    def close(self) -> None:
        """Unlink every resident arena (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            arenas = [arena for arena, _ in self._arenas.values()]
            self._arenas.clear()
        for arena in arenas:
            arena.close()


class SessionManager:
    """LRU-bounded pool of resident sessions with stat-based reload."""

    def __init__(self, max_sessions: int = 4) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self._sessions: OrderedDict[str, LayoutSession] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, path: str) -> LayoutSession:
        """The resident session for ``path``, loading or reloading as
        needed (reload when the file's stat signature changed)."""
        key = SessionKey.stat(path)
        registry = get_registry()
        stale: LayoutSession | None = None
        with self._lock:
            session = self._sessions.get(key.path)
            if session is not None:
                if session.key == key:
                    self._sessions.move_to_end(key.path)
                    registry.inc(names.SERVICE_SESSIONS_REUSED)
                    return session
                stale = self._sessions.pop(key.path)
        if stale is not None:
            stale.close()
            registry.inc(names.SERVICE_SESSIONS_RELOADED)
            log.info("reloading changed layout %s", key.path)
        else:
            registry.inc(names.SERVICE_SESSIONS_LOADED)
            log.info("loading layout %s", key.path)
        session = LayoutSession(key)
        evicted: list[LayoutSession] = []
        with self._lock:
            self._sessions[key.path] = session
            self._sessions.move_to_end(key.path)
            while len(self._sessions) > self.max_sessions:
                _, old = self._sessions.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            old.close()
            registry.inc(names.SERVICE_SESSIONS_EVICTED)
        return session

    def close(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
