"""Resident layout sessions: load a GDSII once, serve many requests.

The one-shot CLI pays the full cost — parse the GDSII, flatten the
hierarchy, canonicalize each layer, pack geometry into shared memory —
on *every* invocation, which dwarfs the incremental tile work the cache
makes cheap.  A :class:`LayoutSession` pays it once: the layout, the
per-layer canonical regions, and the packed shared-memory arenas are
all cached for the life of the session, so a verify request against a
warm session is queue + dirty-tile simulation and nothing else.

Sessions hand the engines *unowned* :class:`~repro.parallel.shm.SharedPayload`
wrappers (``owned=False``): the executor maps the same arena into the
warm worker pool on every request and leaves the block alone when the
run ends; the session unlinks its arenas on :meth:`close` or reload.

Staleness is stat-based: :class:`SessionManager` re-stats the file per
request and reloads when size or mtime changed — an edited layout gets
a fresh session (and fresh arenas, hence new cache keys for dirty
tiles) on its next request.

With a ``store_dir``, a session is backed by an out-of-core layout
store instead (:mod:`repro.layout.store`): the GDSII is streamed once
into a cached ``.lstore`` file, requests window rects straight out of
the mmap, and the session never materializes the layout at all.  The
store file outlives the daemon, so a restarted service re-maps it —
``layoutstore.reused`` — instead of re-parsing and re-packing.  Any
failure to build or map the store falls back to the classic in-RAM
parse (``layoutstore.fallback``), with identical results.
"""

from __future__ import annotations

import hashlib
import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Any, Callable

from repro.drc.engine import _DrcPayload, _SharedLayerRegions, _share_drc_payload
from repro.gdsii import read_gds
from repro.gdsii.records import GdsFormatError
from repro.geometry import Rect, Region
from repro.layout import Layer
from repro.layout.cell import Cell
from repro.layout.library import Layout
from repro.layout.store import LayoutStoreError, StoreView, ensure_store
from repro.litho.fullchip import _ScanGeometry, _ScanPayload, _share_payload
from repro.obs import get_registry, names
from repro.parallel.shm import ShmArena, SharedPayload
from repro.service.jobs import BadRequestError

log = logging.getLogger("repro.service")


def resolve_layer(tech: Any, name: str) -> Layer:
    """Look up a tech layer by name, with a typed error for the wire."""
    for f in fields(tech.layers):
        layer = getattr(tech.layers, f.name)
        if isinstance(layer, Layer) and layer.name == name:
            return layer
    raise BadRequestError(f"unknown layer {name!r} for this tech node")


@dataclass(frozen=True)
class SessionKey:
    """Identity of a loaded layout file: path plus stat signature."""

    path: str
    mtime_ns: int
    size: int

    @classmethod
    def stat(cls, path: str) -> "SessionKey":
        try:
            st = os.stat(path)
        except OSError as exc:
            raise BadRequestError(f"cannot stat layout {path!r}: {exc}") from exc
        return cls(path=os.path.abspath(path), mtime_ns=st.st_mtime_ns, size=st.st_size)


class LayoutSession:
    """One resident layout: parsed cells, cached regions, packed arenas.

    All caches are keyed so that a request can only ever hit geometry
    derived from this exact file version; the manager retires the whole
    session (arenas included) when the file changes.
    """

    def __init__(self, key: SessionKey, store_dir: str | None = None) -> None:
        self.key = key
        self._lock = threading.Lock()
        self._regions: dict[tuple[str, str, str], Region] = {}
        # (kind, cell, discriminator) -> (arena, parent-side shared object)
        self._arenas: dict[tuple[str, ...], tuple[ShmArena, Any]] = {}
        self._closed = False
        self._layout: Layout | None = None
        self.store_view: StoreView | None = None
        if store_dir is not None:
            self.store_view = self._open_store(store_dir)
        if self.store_view is None:
            # classic eager parse: first-request latency stays where it
            # always was when no store is in play
            self._layout = read_gds(key.path)

    def _open_store(self, store_dir: str) -> StoreView | None:
        """Map (building if needed) this layout's cached store file.

        The file name is a hash of the absolute path, so a re-ingested
        layout overwrites its own store in place and a restarted daemon
        finds the previous run's file.  Any failure — unreadable dir,
        malformed GDSII, foreign or stale store that cannot be rebuilt —
        drops to the in-RAM path rather than failing the session.
        """
        digest = hashlib.sha256(self.key.path.encode("utf-8")).hexdigest()[:16]
        store_path = os.path.join(store_dir, f"{digest}.lstore")
        try:
            os.makedirs(store_dir, exist_ok=True)
            return ensure_store(self.key.path, store_path)
        except (LayoutStoreError, GdsFormatError, OSError) as exc:
            get_registry().inc(names.LAYOUTSTORE_FALLBACK)
            log.warning(
                "layout store unusable for %s (%s); falling back to in-RAM parse",
                self.key.path,
                exc,
            )
            return None

    @property
    def layout(self) -> Layout:
        """The parsed layout, materialized on first use.

        Store-backed sessions serve requests without ever touching this;
        it parses lazily only when a request needs the hierarchy (an
        explicit non-top cell, or a store that went unusable).
        """
        # double-checked locking: the unlocked read is deliberate — the
        # reference is written exactly once (under the lock below) and
        # never torn; after that, every request skips the lock entirely
        layout = self._layout  # repro-lint: disable=RL008
        if layout is None:
            with self._lock:
                if self._layout is None:
                    self._layout = read_gds(self.key.path)
                layout = self._layout
        return layout

    def store_for(self, cell_name: str | None) -> StoreView | None:
        """The session's store view, if it covers this cell selection.

        The store is ingested for the top cell; a request naming any
        other cell (or naming the top cell of a store that failed to
        map) gets ``None`` and takes the in-RAM path.
        """
        view = self.store_view
        if view is None:
            return None
        if cell_name is not None and cell_name != view.cell_name:
            return None
        return view

    def cell(self, name: str | None = None) -> Cell:
        try:
            if name:
                return self.layout.cell(name)
            return self.layout.top_cell()
        except (KeyError, ValueError) as exc:
            raise BadRequestError(str(exc)) from exc

    def region(self, cell: Cell, layer: Layer, window: Rect | None = None) -> Region:
        """``cell.region(layer, window)``, cached per session."""
        cache_key = (cell.name, repr(layer), repr(window))
        with self._lock:
            region = self._regions.get(cache_key)
        if region is None:
            region = cell.region(layer, window)
            with self._lock:
                region = self._regions.setdefault(cache_key, region)
        return region

    def region_source(
        self, cell: Cell
    ) -> Callable[[Layer, Rect | None], Region]:
        """A ``region_source`` hook for :func:`repro.drc.engine.run_drc`
        serving this session's cached regions."""

        def source(layer: Layer, window: Rect | None) -> Region:
            return self.region(cell, layer, window)

        return source

    # -- shared-memory residency ----------------------------------------
    def scan_sharer(
        self, cell: Cell, layer: Layer
    ) -> Callable[[_ScanPayload], SharedPayload | None]:
        """A ``sharer`` for :func:`~repro.litho.fullchip.scan_full_chip`
        that reuses one packed arena per (cell, layer) for the session's
        lifetime.

        Valid because the payload's drawn geometry is rebuilt from this
        session's cached :class:`Region` on every request — same
        canonical rect order, so substituting the resident shared
        geometry is bit-identical to packing afresh.  Payloads the
        resident arena cannot represent (mask layers, legacy full-sweep
        regions) fall back to the per-run packer.
        """
        arena_key = ("scan", cell.name, repr(layer))

        def sharer(payload: _ScanPayload) -> SharedPayload | None:
            if payload.mask is not None or not isinstance(
                payload.drawn, _ScanGeometry
            ):
                return _share_payload(payload)
            with self._lock:
                cached = self._arenas.get(arena_key)
            if cached is None:
                arena = ShmArena.pack([payload.drawn.rects])
                if arena is None:
                    return None
                geometry = payload.drawn.shared(arena.handles[0])
                with self._lock:
                    if arena_key in self._arenas:
                        arena.close()  # lost a race: use the winner's
                    else:
                        self._arenas[arena_key] = (arena, geometry)
                    cached = self._arenas[arena_key]
            arena, geometry = cached
            return SharedPayload(
                replace(payload, drawn=geometry), arena, owned=False
            )

        return sharer

    def drc_sharer(
        self, cell: Cell, window: Rect | None
    ) -> Callable[[_DrcPayload], SharedPayload | None]:
        """A ``sharer`` for :func:`~repro.drc.engine.run_drc` reusing
        one packed arena per (cell, window, layer set)."""

        def sharer(payload: _DrcPayload) -> SharedPayload | None:
            if isinstance(payload.regions, _SharedLayerRegions):
                return _share_drc_payload(payload)
            layers = sorted(payload.regions, key=repr)
            arena_key = (
                "drc",
                cell.name,
                repr(window),
                *(repr(layer) for layer in layers),
            )
            with self._lock:
                cached = self._arenas.get(arena_key)
            if cached is None:
                arena = ShmArena.pack(
                    [list(payload.regions[layer].rects()) for layer in layers]
                )
                if arena is None:
                    return None
                handles = dict(zip(layers, arena.handles))
                with self._lock:
                    if arena_key in self._arenas:
                        arena.close()
                    else:
                        self._arenas[arena_key] = (arena, handles)
                    cached = self._arenas[arena_key]
            arena, handles = cached
            store = _SharedLayerRegions(handles, payload.regions)
            return SharedPayload(
                replace(payload, regions=store), arena, owned=False
            )

        return sharer

    def close(self) -> None:
        """Unlink every resident arena (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            arenas = [arena for arena, _ in self._arenas.values()]
            self._arenas.clear()
        for arena in arenas:
            arena.close()


class SessionManager:
    """LRU-bounded pool of resident sessions with stat-based reload.

    ``store_dir`` switches new sessions to the out-of-core layout store
    (see :class:`LayoutSession`); store files live there keyed by a hash
    of the layout path and survive manager — and daemon — restarts.
    """

    def __init__(self, max_sessions: int = 4, store_dir: str | None = None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.store_dir = store_dir
        self._sessions: OrderedDict[str, LayoutSession] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, path: str) -> LayoutSession:
        """The resident session for ``path``, loading or reloading as
        needed (reload when the file's stat signature changed)."""
        key = SessionKey.stat(path)
        registry = get_registry()
        stale: LayoutSession | None = None
        with self._lock:
            session = self._sessions.get(key.path)
            if session is not None:
                if session.key == key:
                    self._sessions.move_to_end(key.path)
                    registry.inc(names.SERVICE_SESSIONS_REUSED)
                    return session
                stale = self._sessions.pop(key.path)
        if stale is not None:
            stale.close()
            registry.inc(names.SERVICE_SESSIONS_RELOADED)
            log.info("reloading changed layout %s", key.path)
        else:
            registry.inc(names.SERVICE_SESSIONS_LOADED)
            log.info("loading layout %s", key.path)
        session = LayoutSession(key, store_dir=self.store_dir)
        evicted: list[LayoutSession] = []
        with self._lock:
            self._sessions[key.path] = session
            self._sessions.move_to_end(key.path)
            while len(self._sessions) > self.max_sessions:
                _, old = self._sessions.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            old.close()
            registry.inc(names.SERVICE_SESSIONS_EVICTED)
        return session

    def close(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
