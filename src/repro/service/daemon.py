"""The socket front end: a threaded TCP server around the service.

One daemon process holds the resident sessions, the warm worker pool,
and the shared result store; any number of short-lived clients connect,
speak one :mod:`repro.service.protocol` request, and disconnect.  The
listener binds localhost only — the service trusts its callers (it
opens the files they name), so it must never be reachable off-host.

Discovery is file-based: the daemon atomically writes a JSON *state
file* (``{"host", "port", "pid", "schema"}``) once the socket is bound
— ``--port 0`` picks a free port, so the state file is how clients
learn the real one — and removes it on clean shutdown.  Clients
(:class:`repro.service.client.SocketClient`) read it instead of taking
host/port flags.

Shutdown is graceful from three directions — the ``shutdown`` wire op,
SIGTERM, SIGINT — and always the same sequence: stop accepting, cancel
queued jobs, let the in-flight job finish, release arenas and the
worker pool, remove the state file.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socketserver
import tempfile
import threading
from typing import Any

from repro import __version__
from repro.obs import get_registry, names
from repro.service import protocol
from repro.service.core import VerificationService
from repro.service.jobs import (
    BadRequestError,
    Job,
    Priority,
    ServiceError,
    UnknownJobError,
)

log = logging.getLogger("repro.service")


def write_state_file(path: str, state: dict[str, Any]) -> None:
    """Atomically publish daemon coordinates (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".repro-serve-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class _Handler(socketserver.StreamRequestHandler):
    """One connection: any number of request/response exchanges in
    sequence, until the client hangs up (one-shot clients hang up after
    the first).  Streaming ops write several response lines, flushed
    incrementally, before the next request is read."""

    server: "ServiceDaemon"

    def handle(self) -> None:
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 1)
            except OSError:
                return
            if not line:
                return  # client hung up: connection done
            get_registry().inc(names.SERVICE_REQUESTS)
            try:
                request = protocol.decode(line)
                if request.get("op") in protocol.STREAM_OPS:
                    if not self._stream(request):
                        return
                    continue
                response = self.server.dispatch(request)
            except ServiceError as exc:
                response = protocol.error_response(exc)
            # a handler crash must not take the daemon down; the failure
            # is routed back to the one client that caused it
            except Exception as exc:  # repro-lint: disable=RL004
                log.exception("request handler failed")
                response = protocol.error_response(
                    ServiceError(f"internal error: {type(exc).__name__}: {exc}")
                )
            if not self._write(response):
                return

    def _write(self, response: dict[str, Any]) -> bool:
        """One response line, flushed; False when the client hung up."""
        try:
            self.wfile.write(protocol.encode(response))
            self.wfile.flush()
            return True
        except OSError:
            return False

    def _stream(self, request: dict[str, Any]) -> bool:
        """Run a streaming op, writing each response line as it is
        produced; False when the client hung up mid-stream."""
        try:
            for response in self.server.dispatch_stream(request):
                if not self._write(response):
                    return False
            return True
        except ServiceError as exc:
            return self._write(protocol.error_response(exc))
        except Exception as exc:  # repro-lint: disable=RL004
            log.exception("stream handler failed")
            return self._write(
                protocol.error_response(
                    ServiceError(f"internal error: {type(exc).__name__}: {exc}")
                )
            )


class ServiceDaemon(socketserver.ThreadingTCPServer):
    """Localhost JSON-over-TCP server owning a
    :class:`VerificationService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: VerificationService,
        host: str = "127.0.0.1",
        port: int = 0,
        state_file: str | None = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.state_file = state_file
        self._stop = threading.Event()
        if state_file:
            write_state_file(
                state_file,
                {
                    "schema": protocol.SCHEMA,
                    "host": self.server_address[0],
                    "port": self.server_address[1],
                    "pid": os.getpid(),
                    "version": __version__,
                },
            )

    @property
    def address(self) -> tuple[str, int]:
        return (self.server_address[0], self.server_address[1])

    # -- request dispatch (runs on handler threads) ---------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return protocol.ok_response(
                pong=True, version=__version__, pid=os.getpid()
            )
        if op == "submit":
            return self._op_submit(request)
        if op == "status":
            return protocol.ok_response(
                job=self.service.status(self._job_id(request))
            )
        if op == "cancel":
            return protocol.ok_response(
                job=self.service.cancel(self._job_id(request))
            )
        if op == "metrics":
            return protocol.ok_response(metrics=self.service.metrics())
        if op == "shutdown":
            self._stop.set()
            return protocol.ok_response(stopping=True)
        raise BadRequestError(
            f"unknown op {op!r} (expected one of {', '.join(protocol.OPS)})"
        )

    def dispatch_stream(self, request: dict[str, Any]):
        """Dispatch a streaming op: yields response lines — an ack, then
        one incremental result per job, then an ``end`` event."""
        op = request.get("op")
        if op == "batch-submit":
            yield from self._op_batch_submit(request)
        elif op == "stream-results":
            yield from self._op_stream_results(request)
        else:  # unreachable: the handler routes only STREAM_OPS here
            raise BadRequestError(f"op {op!r} does not stream")

    @staticmethod
    def _job_id(request: dict[str, Any]) -> int:
        job_id = request.get("id")
        if not isinstance(job_id, int):
            raise BadRequestError("missing or non-integer job 'id'")
        return job_id

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request.get("kind")
        if not isinstance(kind, str):
            raise BadRequestError("missing job 'kind'")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise BadRequestError("'params' must be a JSON object")
        timeout_s = request.get("timeout_s")
        if timeout_s is not None and not isinstance(timeout_s, (int, float)):
            raise BadRequestError("'timeout_s' must be a number")
        job = self.service.submit(
            kind,
            params,
            client=str(request.get("client", "anonymous")),
            priority=Priority.from_name(request.get("priority", "interactive")),
            timeout_s=timeout_s,
        )
        if request.get("wait", True):
            self.service.wait(job)
        return protocol.ok_response(job=job.snapshot())

    def _op_batch_submit(self, request: dict[str, Any]):
        """``batch-submit``: queue every item, ack with per-item accept/
        reject (partial failure — one bad item never aborts the batch),
        then stream each accepted job's snapshot as it finishes."""
        items = request.get("items")
        if not isinstance(items, list) or not items:
            raise BadRequestError("'items' must be a non-empty array")
        timeout_s = request.get("timeout_s")
        if timeout_s is not None and not isinstance(timeout_s, (int, float)):
            raise BadRequestError("'timeout_s' must be a number")
        entries = self.service.submit_batch(
            items,
            client=str(request.get("client", "anonymous")),
            priority=Priority.from_name(request.get("priority", "background")),
            timeout_s=timeout_s,
        )
        accepted = [
            {"index": i, "id": e.id}
            for i, e in enumerate(entries)
            if isinstance(e, Job)
        ]
        errors = [
            {"index": i, "error": e.to_dict()}
            for i, e in enumerate(entries)
            if isinstance(e, ServiceError)
        ]
        yield protocol.ok_response(
            batch={"count": len(entries), "accepted": accepted, "errors": errors}
        )
        if not request.get("stream", True):
            return
        for index, entry in enumerate(entries):
            if not isinstance(entry, Job):
                continue
            self.service.wait(entry)
            yield protocol.ok_response(
                event="result", index=index, job=entry.snapshot()
            )
        yield protocol.ok_response(event="end", count=len(accepted))

    def _op_stream_results(self, request: dict[str, Any]):
        """``stream-results``: snapshots for previously submitted job
        ids (e.g. submits with ``wait: false``), one line per id as each
        finishes; an unknown id is a typed per-item error event."""
        ids = request.get("ids")
        if (
            not isinstance(ids, list)
            or not ids
            or not all(isinstance(i, int) for i in ids)
        ):
            raise BadRequestError("'ids' must be a non-empty array of job ids")
        for index, job_id in enumerate(ids):
            try:
                job = self.service.job(job_id)
            except UnknownJobError as exc:
                yield protocol.ok_response(
                    event="error", index=index, id=job_id, error_detail=exc.to_dict()
                )
                continue
            self.service.wait(job)
            yield protocol.ok_response(event="result", index=index, job=job.snapshot())
        yield protocol.ok_response(event="end", count=len(ids))

    # -- lifecycle (runs on the serving thread) -------------------------
    def serve_until_shutdown(self) -> None:
        """Serve until the ``shutdown`` op, SIGTERM, or SIGINT.

        Blocks the calling thread; the socket loop runs on a helper so a
        handler's ``shutdown`` never deadlocks against it.
        """
        self._install_signal_handlers()
        server_thread = threading.Thread(
            target=self.serve_forever, name="repro-service-accept", daemon=True
        )
        server_thread.start()
        try:
            self._stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()
            server_thread.join(timeout=10.0)
            self.close()

    def _install_signal_handlers(self) -> None:
        def _terminate(signum: int, frame: Any) -> None:
            self._stop.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(sig, _terminate)
            except ValueError:
                # not the main thread (embedded/test use); rely on the
                # shutdown op instead
                return

    def close(self) -> None:
        """Release the socket, the service, and the state file."""
        self._stop.set()
        self.server_close()
        self.service.close()
        if self.state_file:
            try:
                os.unlink(self.state_file)
            except OSError:
                pass
