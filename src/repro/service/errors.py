"""The service error-code registry: one constant per wire code.

Error codes are wire contract — the daemon serializes them into error
responses and :mod:`repro.service.client` maps them back to typed
exceptions by exact string match — so both ends must agree on the
spelling forever.  Like :mod:`repro.obs.names` for metric names, this
module is the single place a code may be defined; exception classes
reference the constant (``code = errors.QUEUE_FULL``), never a string
literal.  ``repro-lint`` RL011 enforces that, checks this registry for
duplicates, and requires every code here to be documented in
``docs/SERVICE.md``.

Stability contract: codes are append-only.  Renaming or removing one
breaks deployed clients mid-flight; add a new code and keep the old one
until nothing on the wire can emit it.
"""

from __future__ import annotations

#: catch-all for unexpected daemon-side failures (HTTP-500 analogue)
SERVICE_ERROR = "service-error"

#: the bounded job queue is full; resubmit after draining results
QUEUE_FULL = "queue-full"

#: the referenced job id is unknown to this daemon instance
UNKNOWN_JOB = "unknown-job"

#: the request was malformed or referenced something that cannot exist
BAD_REQUEST = "bad-request"

#: the service is shutting down and no longer accepts work
SERVICE_CLOSED = "service-closed"

#: client-side only: the daemon could not be reached at all
UNREACHABLE = "unreachable"


def all_codes() -> tuple[str, ...]:
    """Every registered code, sorted — for docs and exhaustive tests."""
    return tuple(
        sorted(
            value
            for name, value in globals().items()
            if name.isupper() and isinstance(value, str)
        )
    )
