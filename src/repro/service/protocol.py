"""Wire protocol: one JSON object per line over a reusable connection.

The framing is deliberately primitive — newline-delimited UTF-8 JSON
over a localhost TCP socket — because every client (CLI, tests, editor
plugins, shell scripts via ``nc``) can speak it without a dependency.
Every message carries ``schema`` so both ends can reject a version they
do not understand instead of misparsing it.

A connection carries any number of request/response exchanges in
sequence (one-shot clients simply hang up after the first).  Most ops
answer with exactly one response line; the *streaming* ops
(:data:`STREAM_OPS`) answer with several — an acknowledgement, then one
incremental result line per job as it finishes, then an ``end`` event —
all on the same connection.

Request::

    {"schema": "repro-service-v1", "op": "submit", "kind": "scan",
     "params": {"gds": "block.gds", "layer": "M1"},
     "client": "alice", "priority": "interactive", "wait": true}

Response::

    {"schema": "repro-service-v1", "ok": true, "job": {...}}
    {"schema": "repro-service-v1", "ok": false,
     "error": {"code": "queue-full", "message": "..."}}

Operations: ``ping``, ``submit``, ``batch-submit``, ``stream-results``,
``status``, ``cancel``, ``metrics``, ``shutdown`` — see
:mod:`repro.service.daemon` for their semantics and ``docs/SERVICE.md``
for the full contract, including the batch partial-failure rules.
"""

from __future__ import annotations

import json
from typing import Any

from repro.service.jobs import BadRequestError, ServiceError

SCHEMA = "repro-service-v1"

# Protocol hygiene bounds: a request line larger than this is rejected
# rather than buffered without limit.
MAX_LINE_BYTES = 1 << 20

OPS = (
    "ping",
    "submit",
    "batch-submit",
    "stream-results",
    "status",
    "cancel",
    "metrics",
    "shutdown",
)

# Ops that answer with more than one response line (ack + incremental
# results + end) — the handler keeps the connection open and flushes
# each line as it is produced.
STREAM_OPS = ("batch-submit", "stream-results")


def encode(message: dict[str, Any]) -> bytes:
    """One wire line: compact JSON, schema-stamped, newline-terminated.

    The schema stamp goes on a copy: callers retain (and sometimes
    resend or log) the dict they pass in, and mutating it here leaked
    the stamp back into client-owned params dicts.
    """
    message = dict(message)
    message.setdefault("schema", SCHEMA)
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict[str, Any]:
    """Parse and validate one wire line; typed errors on bad input."""
    if len(line) > MAX_LINE_BYTES:
        raise BadRequestError(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise BadRequestError("request must be a JSON object")
    schema = message.get("schema")
    if schema != SCHEMA:
        raise BadRequestError(
            f"unsupported schema {schema!r} (this daemon speaks {SCHEMA!r})"
        )
    return message


def ok_response(**fields: Any) -> dict[str, Any]:
    return {"schema": SCHEMA, "ok": True, **fields}


def error_response(error: ServiceError) -> dict[str, Any]:
    return {"schema": SCHEMA, "ok": False, "error": error.to_dict()}
