"""DFM verification as a service: resident layouts, warm pools, shared
results.

The one-shot CLI re-pays layout parse, flatten, canonicalization,
worker-pool spin-up, and cache warm-up on every invocation.  This
package keeps all of that resident in a long-lived daemon: layouts stay
loaded (:mod:`~repro.service.session`), the worker pool stays warm
(:class:`~repro.parallel.TileExecutor` in persistent mode), and
per-tile results accumulate in a content-addressed store shared across
runs and clients (:mod:`~repro.service.store`) — so the steady-state
cost of "verify the cell I just edited" is the dirty tiles, not the
chip.

Entry points:

* ``repro serve`` / ``repro submit`` — the CLI daemon and client;
* :class:`VerificationService` + :class:`ServiceClient` — the same
  engine in-process, no socket (see :func:`repro.api.make_service`);
* :class:`SocketClient` — programmatic access to a running daemon.
"""

from repro.service import errors
from repro.service.client import (
    DEFAULT_STATE_FILE,
    DaemonUnreachableError,
    ServiceClient,
    SocketClient,
)
from repro.service.core import VerificationService
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import (
    BadRequestError,
    Job,
    JobState,
    Priority,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)
from repro.service.queue import PriorityJobQueue
from repro.service.session import LayoutSession, SessionKey, SessionManager
from repro.service.store import ResultStore, StoreView

__all__ = [
    "BadRequestError",
    "DEFAULT_STATE_FILE",
    "DaemonUnreachableError",
    "Job",
    "JobState",
    "LayoutSession",
    "Priority",
    "PriorityJobQueue",
    "QueueFullError",
    "ResultStore",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceDaemon",
    "ServiceError",
    "errors",
    "SessionKey",
    "SessionManager",
    "SocketClient",
    "StoreView",
    "UnknownJobError",
    "VerificationService",
]
