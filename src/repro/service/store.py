"""Content-addressed result store shared across runs and clients.

:class:`~repro.parallel.cache.TileCache` already keys per-tile results
by the content hash of everything the result depends on — engine
parameters plus clipped halo-window geometry — which makes entries
*globally* reusable: two clients scanning the same block, or one client
re-scanning after an unrelated edit, are asking for the same pure
function value.  The per-run cache throws that reuse away when the run
ends.

:class:`ResultStore` keeps it.  It is a daemon-lifetime, LRU-bounded
map whose keys prepend a **namespace** — the digest of the deck
signature and engine version — to the tile key, so results from
different rule decks or engine releases can never collide even though
the tile-level keys do not encode them.  Engines see it through
:class:`StoreView`, a :class:`TileCache` subclass bound to one
namespace: the scan/DRC code paths are unchanged, but every get/put
lands in the shared store.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Any

from repro.obs import get_registry, names
from repro.parallel.cache import TileCache, digest_parts

log = logging.getLogger("repro.service")

# On-disk format sentinel; bump when entry shape or key scheme changes.
_FORMAT_VERSION = "resultstore-v1"


class ResultStore:
    """Thread-safe LRU store of namespaced tile results."""

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        # snapshot both counters under the lock: reading them free-running
        # can pair a pre-increment hits with a post-increment misses and
        # report a rate that was never true
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    @staticmethod
    def namespace(*parts: Any) -> str:
        """Digest a deck-signature/engine-version tuple into a
        namespace prefix."""
        return digest_parts("resultstore-ns", *parts)

    def get(self, namespace: str, key: str) -> Any:
        """Look up a namespaced key, counting hit or miss; None on
        miss.  A hit refreshes LRU recency."""
        full = f"{namespace}:{key}"
        with self._lock:
            if full in self._entries:
                self._entries.move_to_end(full)
                self.hits += 1
                get_registry().inc(names.STORE_HITS)
                return self._entries[full]
            self.misses += 1
            get_registry().inc(names.STORE_MISSES)
            return None

    def put(self, namespace: str, key: str, value: Any) -> None:
        full = f"{namespace}:{key}"
        with self._lock:
            self._entries[full] = value
            self._entries.move_to_end(full)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                get_registry().inc(names.STORE_EVICTIONS)

    def view(self, namespace: str) -> "StoreView":
        """A :class:`TileCache`-shaped handle bound to ``namespace``."""
        return StoreView(self, namespace)

    # -- persistence ----------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Persist entries (not counters) atomically, like
        :meth:`TileCache.save`."""
        path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".resultstore-", suffix=".tmp"
        )
        try:
            with self._lock:
                payload = {
                    "format": _FORMAT_VERSION,
                    "entries": dict(self._entries),
                }
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(
        cls, path: str | os.PathLike, max_entries: int = 100_000
    ) -> "ResultStore":
        """Load a saved store; missing, unreadable, or version-mismatched
        files yield an empty store (cold start, never stale values)."""
        store = cls(max_entries=max_entries)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return store
        except Exception:  # repro-lint: disable=RL004
            # corruption surfaces as many pickle exception types; all of
            # them just mean the file is unusable.
            return store
        if (
            isinstance(payload, dict)
            and payload.get("format") == _FORMAT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            entries = payload["entries"]
            # honour the bound on load, keeping the most recent tail
            for key in list(entries)[-max_entries:]:
                store._entries[key] = entries[key]
        else:
            log.warning(
                "discarding result store %s: format %r does not match %r",
                path,
                payload.get("format") if isinstance(payload, dict) else None,
                _FORMAT_VERSION,
            )
            get_registry().inc(names.STORE_VERSION_MISMATCH)
        return store


class StoreView(TileCache):
    """One namespace of a :class:`ResultStore`, as a ``TileCache``.

    The scan and DRC engines accept a ``cache`` argument typed as
    :class:`TileCache`; handing them a view routes every per-tile
    get/put into the shared store while the engine-side hit/miss
    counters (used by reports and the CLI summary) keep working —
    they count this run's traffic, the store counts lifetime traffic.
    """

    def __init__(self, store: ResultStore, namespace: str) -> None:
        super().__init__()
        self._shared = store
        self._namespace = namespace

    def get(self, key: str) -> Any:
        value = self._shared.get(self._namespace, key)
        if value is not None:
            self.hits += 1
            get_registry().inc(names.TILECACHE_HITS)
            return value
        self.misses += 1
        get_registry().inc(names.TILECACHE_MISSES)
        return None

    def put(self, key: str, value: Any) -> None:
        self._shared.put(self._namespace, key, value)
