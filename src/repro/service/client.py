"""Socket client for the verification daemon.

:class:`SocketClient` is what ``repro submit`` uses: read the daemon's
state file (or take an explicit host/port), open one TCP connection per
request, speak one :mod:`repro.service.protocol` line each way.  Error
handling is typed end to end — a refused connection raises
:class:`DaemonUnreachableError`, and a daemon-side failure re-raises
the matching :class:`~repro.service.jobs.ServiceError` subclass by its
wire code, so callers branch on exception type, not string matching.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.service import protocol
from repro.service.jobs import (
    BadRequestError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)

DEFAULT_STATE_FILE = ".repro_service.json"

# Receive timeout for operations the daemon answers promptly (everything
# except a submit that waits for the job).  Generous — it only has to
# beat "blocked forever on a wedged daemon", not win benchmarks.
PROMPT_OP_TIMEOUT = 30.0


class DaemonUnreachableError(ServiceError):
    """No daemon is listening at the resolved address."""

    code = "unreachable"


_ERRORS_BY_CODE: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        QueueFullError,
        UnknownJobError,
        BadRequestError,
        ServiceClosedError,
        DaemonUnreachableError,
    )
}


def raise_for_error(error: dict[str, Any]) -> None:
    """Re-raise a wire error object as its typed exception."""
    cls = _ERRORS_BY_CODE.get(str(error.get("code")), ServiceError)
    raise cls(str(error.get("message", "unknown service error")))


class SocketClient:
    """One-request-per-connection client of a running daemon."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = None
    ) -> None:
        self.host = host
        self.port = port
        # connect() gets a bounded timeout so a dead address fails fast;
        # request() then clears it, because a submit with wait=True
        # legitimately blocks for the whole job.
        self.timeout = timeout

    @classmethod
    def from_state_file(
        cls, path: str = DEFAULT_STATE_FILE, *, timeout: float | None = None
    ) -> "SocketClient":
        """Client for the daemon whose coordinates ``path`` publishes."""
        try:
            with open(path, encoding="utf-8") as fh:
                state = json.load(fh)
        except FileNotFoundError:
            raise DaemonUnreachableError(
                f"no daemon state file at {path!r} (is `repro serve` running?)"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise DaemonUnreachableError(
                f"unreadable daemon state file {path!r}: {exc}"
            ) from exc
        if not isinstance(state, dict) or state.get("schema") != protocol.SCHEMA:
            raise DaemonUnreachableError(
                f"state file {path!r} does not describe a {protocol.SCHEMA} daemon"
            )
        return cls(str(state["host"]), int(state["port"]), timeout=timeout)

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One round trip; returns the daemon's ``ok`` response payload
        or raises the typed error it sent back."""
        message = {"op": op, **fields}
        # Every op except a waiting submit is answered promptly, so give
        # those a bounded receive timeout — a wedged daemon then fails
        # typed instead of hanging the client forever.  A submit with
        # wait=True legitimately blocks for the whole job; only an
        # explicit client timeout bounds it.
        blocking = op == "submit" and fields.get("wait", True)
        receive_timeout = self.timeout
        if receive_timeout is None and not blocking:
            receive_timeout = PROMPT_OP_TIMEOUT
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout or 10.0
            ) as conn:
                conn.settimeout(receive_timeout)
                conn.sendall(protocol.encode(message))
                with conn.makefile("rb") as rfile:
                    line = rfile.readline(protocol.MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise DaemonUnreachableError(
                f"cannot reach daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        if not line:
            raise DaemonUnreachableError(
                f"daemon at {self.host}:{self.port} closed the connection "
                "without answering"
            )
        response = protocol.decode(line)
        if not response.get("ok"):
            raise_for_error(response.get("error") or {})
        return response

    # -- convenience verbs ----------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None = None,
        *,
        client: str = "cli",
        priority: str = "interactive",
        timeout_s: float | None = None,
        wait: bool = True,
    ) -> dict[str, Any]:
        """Submit a job; with ``wait`` (the default) the response holds
        the finished job's snapshot."""
        return self.request(
            "submit",
            kind=kind,
            params=params or {},
            client=client,
            priority=priority,
            timeout_s=timeout_s,
            wait=wait,
        )["job"]

    def status(self, job_id: int) -> dict[str, Any]:
        return self.request("status", id=job_id)["job"]

    def cancel(self, job_id: int) -> dict[str, Any]:
        return self.request("cancel", id=job_id)["job"]

    def metrics(self) -> dict[str, Any]:
        return self.request("metrics")["metrics"]

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")
