"""Client surface of the verification service.

Two clients, one contract:

* :class:`SocketClient` — what ``repro submit`` uses: read the daemon's
  state file (or take an explicit host/port) and speak
  :mod:`repro.service.protocol` lines over TCP.  By default every
  request opens its own connection (the one-shot CLI shape); used as a
  context manager it holds one connection open across requests, which
  is what the streaming batch op requires and what any chatty caller
  should do.
* :class:`ServiceClient` — the same verbs against an in-process
  :class:`~repro.service.core.VerificationService`, no socket.  It
  mirrors the wire semantics — including :meth:`ServiceClient.submit_batch`
  yielding the same per-item event dicts — so callers like the
  compliance matrix are generic over which one they hold.

Error handling is typed end to end — a refused connection raises
:class:`DaemonUnreachableError`, and a daemon-side failure re-raises
the matching :class:`~repro.service.jobs.ServiceError` subclass by its
wire code, so callers branch on exception type, not string matching.

Public callables here take their options keyword-only (lint rule
``RL007`` enforces it, like ``RL006`` does for :mod:`repro.api`).
"""

from __future__ import annotations

import json
import socket
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.service import errors, protocol
from repro.service.jobs import (
    BadRequestError,
    Job,
    Priority,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
)

if TYPE_CHECKING:
    from repro.service.core import VerificationService

DEFAULT_STATE_FILE = ".repro_service.json"

# Receive timeout for operations the daemon answers promptly (everything
# except a submit that waits for the job).  Generous — it only has to
# beat "blocked forever on a wedged daemon", not win benchmarks.
PROMPT_OP_TIMEOUT = 30.0


class DaemonUnreachableError(ServiceError):
    """No daemon is listening at the resolved address."""

    code = errors.UNREACHABLE


_ERRORS_BY_CODE: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        QueueFullError,
        UnknownJobError,
        BadRequestError,
        ServiceClosedError,
        DaemonUnreachableError,
    )
}


def raise_for_error(error: dict[str, Any]) -> None:
    """Re-raise a wire error object as its typed exception."""
    cls = _ERRORS_BY_CODE.get(str(error.get("code")), ServiceError)
    raise cls(str(error.get("message", "unknown service error")))


class SocketClient:
    """Client of a running daemon; one-shot by default, persistent as a
    context manager (or after an explicit :meth:`connect`)."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = None
    ) -> None:
        self.host = host
        self.port = port
        # connect() gets a bounded timeout so a dead address fails fast;
        # request() then clears it, because a submit with wait=True
        # legitimately blocks for the whole job.
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile: Any = None

    @classmethod
    def from_state_file(
        cls, *, path: str = DEFAULT_STATE_FILE, timeout: float | None = None
    ) -> "SocketClient":
        """Client for the daemon whose coordinates ``path`` publishes."""
        try:
            with open(path, encoding="utf-8") as fh:
                state = json.load(fh)
        except FileNotFoundError:
            raise DaemonUnreachableError(
                f"no daemon state file at {path!r} (is `repro serve` running?)"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise DaemonUnreachableError(
                f"unreadable daemon state file {path!r}: {exc}"
            ) from exc
        if not isinstance(state, dict) or state.get("schema") != protocol.SCHEMA:
            raise DaemonUnreachableError(
                f"state file {path!r} does not describe a {protocol.SCHEMA} daemon"
            )
        return cls(str(state["host"]), int(state["port"]), timeout=timeout)

    # -- connection lifecycle -------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "SocketClient":
        """Open (or keep) a persistent connection; every subsequent
        request reuses it until :meth:`close`.  Idempotent."""
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout or 10.0
                )
            except OSError as exc:
                raise DaemonUnreachableError(
                    f"cannot reach daemon at {self.host}:{self.port}: {exc}"
                ) from exc
            self._rfile = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        """Drop the persistent connection (no-op when not connected)."""
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None

    def __enter__(self) -> "SocketClient":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- request plumbing -----------------------------------------------
    def _read_response(self) -> dict[str, Any]:
        """One response line off the persistent connection; typed errors
        for hangups and daemon-side failures."""
        try:
            line = self._rfile.readline(protocol.MAX_LINE_BYTES + 1)
        except OSError as exc:
            self.close()
            raise DaemonUnreachableError(
                f"daemon at {self.host}:{self.port} connection failed: {exc}"
            ) from exc
        if not line:
            self.close()
            raise DaemonUnreachableError(
                f"daemon at {self.host}:{self.port} closed the connection "
                "without answering"
            )
        response = protocol.decode(line)
        if not response.get("ok"):
            raise_for_error(response.get("error") or {})
        return response

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One round trip; returns the daemon's ``ok`` response payload
        or raises the typed error it sent back.  Reuses the persistent
        connection when one is open, else connects for this request."""
        message = {"op": op, **fields}
        # Every op except a waiting submit is answered promptly, so give
        # those a bounded receive timeout — a wedged daemon then fails
        # typed instead of hanging the client forever.  A submit with
        # wait=True legitimately blocks for the whole job; only an
        # explicit client timeout bounds it.
        blocking = op == "submit" and fields.get("wait", True)
        receive_timeout = self.timeout
        if receive_timeout is None and not blocking:
            receive_timeout = PROMPT_OP_TIMEOUT
        one_shot = self._sock is None
        if one_shot:
            self.connect()
        try:
            try:
                self._sock.settimeout(receive_timeout)
                self._sock.sendall(protocol.encode(message))
            except OSError as exc:
                self.close()
                raise DaemonUnreachableError(
                    f"cannot reach daemon at {self.host}:{self.port}: {exc}"
                ) from exc
            return self._read_response()
        finally:
            if one_shot:
                self.close()

    # -- convenience verbs ----------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None,
        *,
        client: str = "cli",
        priority: str = "interactive",
        timeout_s: float | None = None,
        wait: bool = True,
    ) -> dict[str, Any]:
        """Submit a job; with ``wait`` (the default) the response holds
        the finished job's snapshot."""
        return self.request(
            "submit",
            kind=kind,
            params=params or {},
            client=client,
            priority=priority,
            timeout_s=timeout_s,
            wait=wait,
        )["job"]

    def submit_batch(
        self,
        items: Iterable[dict[str, Any]],
        *,
        client: str = "cli",
        priority: str = "background",
        timeout_s: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Submit many jobs in one ``batch-submit`` exchange and stream
        the results back incrementally on the same connection.

        Yields one event dict per item, in item order:
        ``{"index": i, "job": <snapshot>}`` for items that ran (check the
        snapshot's ``state`` — a failed job is still an event, not an
        exception) or ``{"index": i, "error": {"code", "message"}}`` for
        items the daemon rejected at submit time.  Partial failure is
        the contract: one bad item never aborts the rest of the batch.
        """
        message = {
            "op": "batch-submit",
            "items": list(items),
            "client": client,
            "priority": priority,
            "timeout_s": timeout_s,
            "stream": True,
        }
        one_shot = self._sock is None
        if one_shot:
            self.connect()
        try:
            try:
                # results arrive at job pace: only an explicit client
                # timeout bounds the stream
                self._sock.settimeout(self.timeout)
                self._sock.sendall(protocol.encode(message))
            except OSError as exc:
                self.close()
                raise DaemonUnreachableError(
                    f"cannot reach daemon at {self.host}:{self.port}: {exc}"
                ) from exc
            ack = self._read_response()
            batch = ack.get("batch") or {}
            errors = {
                entry["index"]: entry["error"]
                for entry in batch.get("errors", ())
            }
            for index in range(int(batch.get("count", 0))):
                if index in errors:
                    yield {"index": index, "error": errors[index]}
                    continue
                event = self._read_response()
                yield {"index": int(event.get("index", index)), "job": event.get("job")}
            self._read_response()  # the end-of-stream event
        finally:
            if one_shot:
                self.close()

    def stream_results(self, ids: Iterable[int]) -> Iterator[dict[str, Any]]:
        """Stream finished-job snapshots for ``ids`` (e.g. jobs submitted
        earlier with ``wait=False``), one event per id in id order; an
        unknown id yields a typed per-item error event."""
        id_list = [int(i) for i in ids]
        one_shot = self._sock is None
        if one_shot:
            self.connect()
        try:
            try:
                self._sock.settimeout(self.timeout)
                self._sock.sendall(
                    protocol.encode({"op": "stream-results", "ids": id_list})
                )
            except OSError as exc:
                self.close()
                raise DaemonUnreachableError(
                    f"cannot reach daemon at {self.host}:{self.port}: {exc}"
                ) from exc
            for index in range(len(id_list)):
                event = self._read_response()
                out = {"index": int(event.get("index", index))}
                if event.get("event") == "error":
                    out["error"] = event.get("error_detail")
                else:
                    out["job"] = event.get("job")
                yield out
            self._read_response()  # the end-of-stream event
        finally:
            if one_shot:
                self.close()

    def status(self, job_id: int) -> dict[str, Any]:
        return self.request("status", id=job_id)["job"]

    def cancel(self, job_id: int) -> dict[str, Any]:
        return self.request("cancel", id=job_id)["job"]

    def metrics(self) -> dict[str, Any]:
        return self.request("metrics")["metrics"]

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")


class ServiceClient:
    """In-process client: the same verbs ``repro submit`` speaks over
    the socket, without a daemon.  Embedders get service semantics
    (residency, store reuse, fairness) inside their own process."""

    def __init__(
        self, service: "VerificationService", *, client: str = "local"
    ) -> None:
        self.service = service
        self.client = client

    # context-manager for symmetry with SocketClient: there is no
    # connection to manage, but callers generic over client type can
    # still use `with`
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None,
        *,
        priority: "Priority | str | int" = Priority.INTERACTIVE,
        timeout_s: float | None = None,
    ) -> Job:
        return self.service.submit(
            kind, params, client=self.client, priority=priority, timeout_s=timeout_s
        )

    def run(
        self,
        kind: str,
        params: dict[str, Any] | None,
        *,
        priority: "Priority | str | int" = Priority.INTERACTIVE,
        timeout_s: float | None = None,
    ) -> Job:
        """Submit and block until the job is terminal."""
        job = self.submit(kind, params, priority=priority, timeout_s=timeout_s)
        return self.service.wait(job)

    def submit_batch(
        self,
        items: Iterable[dict[str, Any]],
        *,
        priority: "Priority | str | int" = Priority.BACKGROUND,
        timeout_s: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """In-process mirror of :meth:`SocketClient.submit_batch`: the
        same per-item event dicts, the same partial-failure semantics."""
        entries = self.service.submit_batch(
            list(items), client=self.client, priority=priority, timeout_s=timeout_s
        )
        for index, entry in enumerate(entries):
            if isinstance(entry, ServiceError):
                yield {"index": index, "error": entry.to_dict()}
            else:
                self.service.wait(entry)
                yield {"index": index, "job": entry.snapshot()}

    def cancel(self, job_id: int) -> dict[str, Any]:
        return self.service.cancel(job_id)

    def status(self, job_id: int) -> dict[str, Any]:
        return self.service.status(job_id)

    def metrics(self) -> dict[str, Any]:
        return self.service.metrics()
