"""Layout connectivity extraction.

The electrical graph of a layout:

* each connected component of a conducting layer (metals, poly, and
  diffusion *after* subtracting the gates) is a node;
* a cut shape (contact/via) overlapping a node on its lower layer and a
  node on its upper layer unions them (contacts pick poly or diffusion by
  overlap);
* the transistor channel (poly over active) deliberately does NOT connect
  — source and drain are separate nets, which is what makes the extracted
  graph electrical rather than merely geometric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import GridIndex, Point, Rect, Region
from repro.layout import Cell, Layer
from repro.tech.technology import Technology


@dataclass(frozen=True, slots=True)
class NetNode:
    """One conducting component: (layer, index into that layer's list)."""

    layer: Layer
    index: int


class _UnionFind:
    def __init__(self):
        self.parent: dict[NetNode, NetNode] = {}

    def add(self, node: NetNode) -> None:
        self.parent.setdefault(node, node)

    def find(self, node: NetNode) -> NetNode:
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a: NetNode, b: NetNode) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class ExtractedNetlist:
    """The extracted electrical graph with spatial lookup."""

    components: dict[Layer, list[Region]] = field(default_factory=dict)
    _uf: _UnionFind = field(default_factory=_UnionFind)
    _indexes: dict[Layer, GridIndex] = field(default_factory=dict)

    def node_at(self, layer: Layer, point: Point) -> NetNode | None:
        """The conducting node covering ``point`` on ``layer``."""
        index = self._indexes.get(layer)
        if index is None:
            return None
        probe = Rect(point.x, point.y, point.x + 1, point.y + 1)
        for i in index.query(probe):
            if self.components[layer][i].contains_point(point):
                return NetNode(layer, i)
        return None

    def net_of(self, layer: Layer, point: Point) -> NetNode | None:
        """Canonical net representative for the geometry at ``point``."""
        node = self.node_at(layer, point)
        return self._uf.find(node) if node is not None else None

    def same_net(self, a: tuple[Layer, Point], b: tuple[Layer, Point]) -> bool:
        na = self.net_of(*a)
        nb = self.net_of(*b)
        return na is not None and na == nb

    def net_count(self) -> int:
        roots = {self._uf.find(n) for n in self._uf.parent}
        return len(roots)

    def nodes_of_net(self, net: NetNode) -> list[NetNode]:
        root = self._uf.find(net)
        return [n for n in self._uf.parent if self._uf.find(n) == root]

    def net_region(self, net: NetNode, layer: Layer) -> Region:
        """The net's geometry on one layer."""
        merged = Region()
        for node in self.nodes_of_net(net):
            if node.layer == layer:
                merged = merged | self.components[layer][node.index]
        return merged


def extract_nets(cell: Cell, tech: Technology) -> ExtractedNetlist:
    """Extract the electrical connectivity of a flattened cell."""
    L = tech.layers
    netlist = ExtractedNetlist()
    uf = netlist._uf

    poly = cell.region(L.poly)
    active = cell.region(L.active)
    diffusion = active - poly  # gates split source from drain

    conducting: dict[Layer, Region] = {
        L.poly: poly,
        L.active: diffusion,
        L.metal1: cell.region(L.metal1),
        L.metal2: cell.region(L.metal2),
        L.metal3: cell.region(L.metal3),
    }
    for layer, region in conducting.items():
        comps = region.components()
        netlist.components[layer] = comps
        index = GridIndex(cell_size=2048)
        for i, comp in enumerate(comps):
            uf.add(NetNode(layer, i))
            index.insert(comp.bbox, i)
        netlist._indexes[layer] = index

    # cuts join layers: contact joins M1 to poly or diffusion; vias join
    # adjacent metals
    cut_pairs = [
        (L.contact, (L.poly, L.active), L.metal1),
        (L.via1, (L.metal1,), L.metal2),
        (L.via2, (L.metal2,), L.metal3),
    ]
    for cut_layer, lowers, upper in cut_pairs:
        for cut in cell.region(cut_layer).rects():
            upper_node = _node_overlapping(netlist, upper, cut)
            lower_node = None
            for lower_layer in lowers:
                lower_node = _node_overlapping(netlist, lower_layer, cut)
                if lower_node is not None:
                    break
            if upper_node is not None and lower_node is not None:
                uf.union(upper_node, lower_node)
    return netlist


def _node_overlapping(netlist: ExtractedNetlist, layer: Layer, cut: Rect) -> NetNode | None:
    index = netlist._indexes.get(layer)
    if index is None:
        return None
    cut_region = Region(cut)
    for i in index.query(cut):
        if netlist.components[layer][i].overlaps(cut_region):
            return NetNode(layer, i)
    return None
