"""Connectivity extraction and LVS-lite comparison.

Builds electrical nets from layout geometry (metal components joined by
cut layers, diffusion split by gates), names them via probe points, and
checks them against expected connectivity — the substrate that gives
hotspots and critical-area numbers electrical meaning.
"""

from repro.extract.connectivity import (
    ExtractedNetlist,
    NetNode,
    extract_nets,
)
from repro.extract.compare import (
    ConnectivityReport,
    check_connectivity,
    electrical_hotspot_impact,
)

__all__ = [
    "ExtractedNetlist",
    "NetNode",
    "extract_nets",
    "ConnectivityReport",
    "check_connectivity",
    "electrical_hotspot_impact",
]
