"""LVS-lite: compare extracted connectivity against intent, and give
litho hotspots electrical meaning."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import BaseReport, deprecated_alias
from repro.extract.connectivity import ExtractedNetlist, NetNode
from repro.geometry import Point, Region
from repro.layout import Layer
from repro.litho.hotspots import Hotspot, HotspotKind


@dataclass
class ConnectivityReport(BaseReport):
    """Result of checking expected net groups against the extraction."""

    opens: list[str] = field(default_factory=list)    # intended nets that split
    shorts: list[tuple[str, str]] = field(default_factory=list)  # merged pairs
    missing: list[str] = field(default_factory=list)  # probe points on nothing

    # legacy spelling (pre-BaseReport), kept as a warning alias
    is_clean = deprecated_alias("is_clean", "ok")

    @property
    def findings_count(self) -> int:
        return len(self.opens) + len(self.shorts) + len(self.missing)

    def summary(self) -> str:
        return (
            f"connectivity: {len(self.opens)} opens, {len(self.shorts)} shorts, "
            f"{len(self.missing)} missing probes -> "
            f"{'CLEAN' if self.ok else 'FAIL'}"
        )


def check_connectivity(
    netlist: ExtractedNetlist,
    expected: dict[str, list[tuple[Layer, Point]]],
) -> ConnectivityReport:
    """Check that each named group of probe points is one net, and that
    different groups are different nets."""
    report = ConnectivityReport()
    representative: dict[str, NetNode] = {}
    for name, probes in expected.items():
        nets = []
        for layer, point in probes:
            net = netlist.net_of(layer, point)
            if net is None:
                report.missing.append(f"{name}@({point.x},{point.y})")
            else:
                nets.append(net)
        if not nets:
            continue
        if len(set(nets)) > 1:
            report.opens.append(name)
        representative[name] = nets[0]
    names = sorted(representative)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if representative[names[i]] == representative[names[j]]:
                report.shorts.append((names[i], names[j]))
    return report


def electrical_hotspot_impact(
    netlist: ExtractedNetlist,
    hotspots: list[Hotspot],
    layer: Layer,
) -> dict[str, int]:
    """Classify hotspots by electrical consequence on ``layer``.

    * a BRIDGE between two different nets is a *killer short*;
    * a BRIDGE within one net is *benign* (the panel's point that raw
      hotspot counts overstate risk);
    * a PINCH on a net is a potential open (severity-weighted upstream).
    """
    counts = {"killer_short": 0, "benign_bridge": 0, "potential_open": 0, "unmapped": 0}
    for hotspot in hotspots:
        if hotspot.kind is HotspotKind.BRIDGE:
            nets = _nets_touching(netlist, layer, hotspot)
            if len(nets) >= 2:
                counts["killer_short"] += 1
            elif len(nets) == 1:
                counts["benign_bridge"] += 1
            else:
                counts["unmapped"] += 1
        elif hotspot.kind is HotspotKind.PINCH:
            centre = hotspot.marker.center
            if netlist.net_of(layer, centre) is not None:
                counts["potential_open"] += 1
            else:
                counts["unmapped"] += 1
        else:
            counts["potential_open"] += 1
    return counts


def _nets_touching(netlist: ExtractedNetlist, layer: Layer, hotspot: Hotspot) -> set[NetNode]:
    """Distinct nets whose geometry intersects the hotspot marker."""
    nets: set[NetNode] = set()
    marker = Region(hotspot.marker.expanded(2))
    index = netlist._indexes.get(layer)
    if index is None:
        return nets
    for i in index.query(hotspot.marker.expanded(2)):
        if netlist.components[layer][i].overlaps(marker):
            nets.add(netlist._uf.find(NetNode(layer, i)))
    return nets
