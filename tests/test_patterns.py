"""Unit + property tests for the pattern package: snippets, topology,
catalogs, clustering, and matching."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect, Region
from repro.layout import Cell, Layer
from repro.patterns import (
    PatternCatalog,
    PatternMatcher,
    canonical_pattern,
    cluster_snippets,
    extract_snippet,
    extract_snippets,
    grid_anchors,
    kl_divergence,
    pattern_of,
    snippet_similarity,
    via_anchors,
    via_enclosure_catalog,
)

M1 = Layer(10, 0, "M1")
V1 = Layer(11, 0, "V1")


def snippet_from(rects, radius=100, anchor=Point(0, 0), layer=M1):
    regions = {layer: Region(rects)}
    return extract_snippet(regions, anchor, radius)


class TestWindow:
    def test_recentring(self):
        regions = {M1: Region(Rect(1000, 1000, 1050, 1050))}
        snippet = extract_snippet(regions, Point(1025, 1025), 100)
        assert snippet.regions[M1] == Region(Rect(-25, -25, 25, 25))

    def test_clipping(self):
        regions = {M1: Region(Rect(0, 0, 1000, 50))}
        snippet = extract_snippet(regions, Point(500, 25), 100)
        bb = snippet.regions[M1].bbox
        assert bb.x0 >= -100 and bb.x1 <= 100

    def test_blank(self):
        snippet = extract_snippet({M1: Region()}, Point(0, 0), 50)
        assert snippet.is_blank()

    def test_via_anchors(self):
        cell = Cell("C")
        cell.add_rect(V1, Rect(0, 0, 40, 40))
        cell.add_rect(V1, Rect(100, 100, 140, 140))
        anchors = via_anchors(cell, V1)
        assert Point(20, 20) in anchors and Point(120, 120) in anchors

    def test_grid_anchors(self):
        anchors = grid_anchors(Rect(0, 0, 100, 100), 50)
        assert len(anchors) == 4
        with pytest.raises(ValueError):
            grid_anchors(Rect(0, 0, 10, 10), 0)

    def test_extract_snippets_from_cell(self):
        cell = Cell("C")
        cell.add_rect(M1, Rect(0, 0, 50, 50))
        snippets = extract_snippets(cell, [M1], [Point(25, 25)], 60)
        assert len(snippets) == 1
        assert snippets[0].total_area() == 2500

    def test_snippet_equality_and_hash(self):
        a = snippet_from([Rect(-10, -10, 10, 10)])
        b = snippet_from([Rect(-10, -10, 10, 10)])
        assert a == b
        assert hash(a) == hash(b)


class TestTopology:
    def test_translation_invariance(self):
        a = snippet_from([Rect(-20, -20, 20, 20)])
        regions = {M1: Region(Rect(980, 980, 1020, 1020))}
        b = extract_snippet(regions, Point(1000, 1000), 100)
        assert pattern_of(a).category_key == pattern_of(b).category_key

    def test_dimension_abstraction(self):
        # same topology, different sizes -> same category, different dims
        a = pattern_of(snippet_from([Rect(-20, -20, 20, 20)]))
        b = pattern_of(snippet_from([Rect(-30, -30, 30, 30)]))
        assert a.category_key == b.category_key
        assert a.dimension_vector() != b.dimension_vector()

    def test_different_topology_different_category(self):
        one = pattern_of(snippet_from([Rect(-20, -20, 20, 20)]))
        two = pattern_of(snippet_from([Rect(-40, -20, -10, 20), Rect(10, -20, 40, 20)]))
        assert one.category_key != two.category_key

    def test_interlayer_alignment_matters(self):
        via = Rect(-20, -20, 20, 20)
        sym = extract_snippet(
            {V1: Region(via), M1: Region(Rect(-30, -30, 30, 30))}, Point(0, 0), 100
        )
        flush = extract_snippet(
            {V1: Region(via), M1: Region(Rect(-20, -30, 40, 30))}, Point(0, 0), 100
        )
        assert (
            canonical_pattern(pattern_of(sym)).category_key
            != canonical_pattern(pattern_of(flush)).category_key
        )

    @pytest.mark.parametrize("dx,dy", [(30, 0), (0, 30), (-30, 0), (0, -30)])
    def test_rotation_mirror_canonical(self, dx, dy):
        """A bar offset in any of the 4 directions canonicalizes to the
        same pattern."""
        base = canonical_pattern(
            pattern_of(snippet_from([Rect(-10, -10, 10, 10), Rect(-10 + 30, -10, 10 + 30, 10)]))
        )
        other = canonical_pattern(
            pattern_of(snippet_from([Rect(-10, -10, 10, 10), Rect(-10 + dx, -10 + dy, 10 + dx, 10 + dy)]))
        )
        assert base.category_key == other.category_key

    def test_canonical_idempotent(self):
        p = pattern_of(snippet_from([Rect(-40, -10, 40, 10), Rect(-10, 20, 10, 80)]))
        c1 = canonical_pattern(p)
        assert canonical_pattern(c1) == c1

    def test_complexity_and_shape(self):
        p = pattern_of(snippet_from([Rect(-20, -20, 20, 20)]))
        assert p.complexity == 1
        nx, ny = p.grid_shape
        assert nx == 3 and ny == 3

    @given(st.integers(-60, 20), st.integers(-60, 20), st.integers(10, 40), st.integers(10, 40))
    def test_property_canonical_under_mirror(self, x, y, w, h):
        rects = [Rect(x, y, x + w, y + h)]
        mirrored = [Rect(-(x + w), y, -x, y + h)]
        a = canonical_pattern(pattern_of(snippet_from(rects)))
        b = canonical_pattern(pattern_of(snippet_from(mirrored)))
        assert a.category_key == b.category_key


class TestCatalog:
    def build_cell(self):
        cell = Cell("C")
        for i in range(5):
            x = i * 300
            cell.add_rect(V1, Rect(x, 0, x + 45, 45))
            cell.add_rect(M1, Rect(x - 11, -11, x + 56, 56))
        for i in range(3):
            x = i * 300
            cell.add_rect(V1, Rect(x, 1000, x + 45, 1045))
            cell.add_rect(M1, Rect(x, 1000 - 11, x + 80, 1045 + 11))
        return cell

    def test_via_enclosure_categories(self):
        catalog = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        assert len(catalog) == 2
        assert catalog.total == 8
        freqs = catalog.frequencies()
        assert freqs == [5, 3]

    def test_coverage(self):
        catalog = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        assert catalog.coverage(1) == pytest.approx(5 / 8)
        assert catalog.coverage(2) == pytest.approx(1.0)
        assert catalog.categories_for_coverage(0.6) == 1
        assert catalog.categories_for_coverage(0.99) == 2

    def test_merge(self):
        a = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        b = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        a.merge(b)
        assert a.total == 16
        assert len(a) == 2

    def test_tags(self):
        catalog = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        entry = catalog.entries()[0]
        entry.tags.add("hotspot")
        assert len(catalog.tagged("hotspot")) == 1

    def test_kl_divergence(self):
        a = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        b = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        assert kl_divergence(a, b) == pytest.approx(0.0, abs=1e-12)
        other = Cell("D")
        other.add_rect(V1, Rect(0, 0, 45, 45))
        other.add_rect(M1, Rect(-40, -11, 56, 56))
        c = via_enclosure_catalog(other, V1, M1, radius=100)
        assert kl_divergence(a, c) > 0
        assert kl_divergence(c, a) > 0

    def test_kl_empty(self):
        assert kl_divergence(PatternCatalog(), PatternCatalog()) == 0.0

    def test_summary_renders(self):
        catalog = via_enclosure_catalog(self.build_cell(), V1, M1, radius=100)
        text = catalog.summary()
        assert "2 categories" in text


class TestClustering:
    def snippets(self):
        cell = TestCatalog().build_cell()
        return extract_snippets(cell, [V1, M1], via_anchors(cell, V1), 100)

    def test_similarity_identity(self):
        s = self.snippets()[0]
        assert snippet_similarity(s, s) == pytest.approx(1.0)

    def test_similarity_blank(self):
        blank = extract_snippet({M1: Region()}, Point(0, 0), 50)
        assert snippet_similarity(blank, blank) == 1.0

    def test_incremental(self):
        clusters = cluster_snippets(self.snippets(), threshold=0.9)
        assert sorted(len(c) for c in clusters) == [3, 5]

    def test_hierarchical(self):
        clusters = cluster_snippets(self.snippets(), threshold=0.9, method="hierarchical")
        assert sorted(len(c) for c in clusters) == [3, 5]

    def test_threshold_one_splits_everything_distinct(self):
        snippets = self.snippets()
        clusters = cluster_snippets(snippets, threshold=0.999999)
        # identical snippets may still merge; distinct styles must not
        assert len(clusters) >= 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cluster_snippets([], threshold=0.0)
        with pytest.raises(ValueError):
            cluster_snippets([], method="bogus")

    def test_cohesion(self):
        clusters = cluster_snippets(self.snippets(), threshold=0.9)
        for cluster in clusters:
            assert cluster.cohesion() >= 0.9


class TestMatcher:
    def test_scan_finds_all_instances(self):
        cell = TestCatalog().build_cell()
        snippets = extract_snippets(cell, [V1, M1], via_anchors(cell, V1), 100)
        matcher = PatternMatcher(radius=100)
        matcher.add_snippet(snippets[0], name="sym", severity="error")
        matches = matcher.scan(cell, [V1, M1], via_anchors(cell, V1))
        assert len(matches) == 5
        assert all(m.library_pattern.name == "sym" for m in matches)

    def test_no_match_on_other_category(self):
        cell = TestCatalog().build_cell()
        snippets = extract_snippets(cell, [V1, M1], via_anchors(cell, V1), 100)
        matcher = PatternMatcher(radius=100)
        eol = next(s for s in snippets if s.anchor.y > 500)  # the 3-instance style
        matcher.add_snippet(eol, name="eol")
        matches = matcher.scan(cell, [V1, M1], via_anchors(cell, V1))
        assert len(matches) == 3

    def test_dimension_tolerance(self):
        matcher = PatternMatcher(radius=100)
        base = snippet_from([Rect(-20, -20, 20, 20)])
        matcher.add_snippet(base, name="exact", dimension_tolerance=5)
        close = snippet_from([Rect(-22, -22, 22, 22)])
        far = snippet_from([Rect(-45, -45, 45, 45)])
        assert len(matcher.match_snippet(close)) == 1
        assert len(matcher.match_snippet(far)) == 0

    def test_radius_mismatch_rejected(self):
        matcher = PatternMatcher(radius=100)
        with pytest.raises(ValueError):
            matcher.add_snippet(snippet_from([Rect(0, 0, 10, 10)], radius=50))

    def test_marker(self):
        matcher = PatternMatcher(radius=100)
        snippet = snippet_from([Rect(-20, -20, 20, 20)])
        matcher.add_snippet(snippet)
        match = matcher.match_snippet(snippet)[0]
        assert match.marker == Rect(-100, -100, 100, 100)
