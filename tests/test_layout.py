"""Unit tests for the layout database: Layer, Cell, CellReference, Layout."""

import pytest

from repro.geometry import Orientation, Polygon, Rect, Region, Transform
from repro.layout import Cell, CellReference, Layer, Layout

M1 = Layer(10, 0, "M1")
M2 = Layer(12, 0, "M2")


class TestLayer:
    def test_value_semantics(self):
        assert Layer(10, 0, "A") == Layer(10, 0, "B")  # name is not identity
        assert Layer(10, 0) != Layer(10, 1)

    def test_str(self):
        assert str(M1) == "M1(10/0)"
        assert str(Layer(3, 1)) == "3/1"

    def test_bounds(self):
        with pytest.raises(ValueError):
            Layer(70000, 0)

    def test_with_datatype(self):
        fill = M1.with_datatype(20)
        assert fill.gds_layer == 10
        assert fill.gds_datatype == 20
        assert fill != M1


class TestCell:
    def test_add_shapes_and_count(self):
        c = Cell("C")
        c.add_rect(M1, Rect(0, 0, 10, 10))
        c.add_polygon(M1, Polygon.l_shape(50, 50, 20, 20))
        assert c.shape_count() == 2
        assert c.layers == {M1}

    def test_rejects_degenerate(self):
        c = Cell("C")
        with pytest.raises(ValueError):
            c.add_rect(M1, Rect(0, 0, 0, 10))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Cell("")

    def test_region_merges(self):
        c = Cell("C")
        c.add_rect(M1, Rect(0, 0, 10, 10))
        c.add_rect(M1, Rect(5, 0, 20, 10))
        assert c.region(M1).area == 200

    def test_region_window(self):
        c = Cell("C")
        c.add_rect(M1, Rect(0, 0, 100, 100))
        assert c.region(M1, window=Rect(0, 0, 10, 10)).area == 100

    def test_add_region(self):
        c = Cell("C")
        c.add_region(M1, Region([Rect(0, 0, 10, 10), Rect(20, 0, 30, 10)]))
        assert c.shape_count() == 2

    def test_bbox(self):
        c = Cell("C")
        c.add_rect(M1, Rect(0, 0, 10, 10))
        c.add_rect(M2, Rect(50, 50, 60, 70))
        assert c.bbox == Rect(0, 0, 60, 70)

    def test_bbox_empty(self):
        assert Cell("E").bbox is None

    def test_copy_independent(self):
        c = Cell("C")
        c.add_rect(M1, Rect(0, 0, 10, 10))
        dup = c.copy("D")
        dup.add_rect(M1, Rect(20, 0, 30, 10))
        assert c.shape_count() == 1
        assert dup.shape_count() == 2


class TestReferences:
    def make_parent_child(self):
        child = Cell("CHILD")
        child.add_rect(M1, Rect(0, 0, 10, 10))
        parent = Cell("PARENT")
        return parent, child

    def test_simple_ref(self):
        parent, child = self.make_parent_child()
        parent.add_ref(child, Transform(100, 0))
        assert parent.region(M1) == Region(Rect(100, 0, 110, 10))

    def test_rotated_ref(self):
        parent, child = self.make_parent_child()
        parent.add_ref(child, Transform(0, 0, Orientation.R90))
        assert parent.region(M1) == Region(Rect(-10, 0, 0, 10))

    def test_array_ref(self):
        parent, child = self.make_parent_child()
        parent.add_ref(child, Transform(0, 0), columns=3, rows=2, dx=20, dy=30)
        region = parent.region(M1)
        assert region.area == 6 * 100
        assert parent.bbox == Rect(0, 0, 50, 40)

    def test_array_requires_step(self):
        parent, child = self.make_parent_child()
        with pytest.raises(ValueError):
            parent.add_ref(child, columns=2, rows=1, dx=0)

    def test_cycle_rejected(self):
        a = Cell("A")
        b = Cell("B")
        a.add_ref(b)
        with pytest.raises(ValueError):
            b.add_ref(a)
        with pytest.raises(ValueError):
            a.add_ref(a)

    def test_nested_hierarchy(self):
        leaf = Cell("LEAF")
        leaf.add_rect(M1, Rect(0, 0, 5, 5))
        mid = Cell("MID")
        mid.add_ref(leaf, Transform(10, 0))
        top = Cell("TOP")
        top.add_ref(mid, Transform(0, 100, Orientation.R0))
        assert top.region(M1) == Region(Rect(10, 100, 15, 105))
        assert top.shape_count(recursive=True) == 1

    def test_flattened(self):
        parent, child = self.make_parent_child()
        parent.add_ref(child, Transform(0, 0), columns=2, rows=1, dx=50)
        flat = parent.flattened()
        assert flat.references == ()
        assert flat.region(M1) == parent.region(M1)

    def test_placements_count(self):
        ref = CellReference(Cell("X"), Transform(0, 0), columns=4, rows=3, dx=10, dy=10)
        assert ref.count == 12
        assert len(list(ref.placements())) == 12

    def test_polygons_transformed(self):
        child = Cell("P")
        child.add_polygon(M1, Polygon.l_shape(40, 40, 10, 10))
        parent = Cell("TOP")
        parent.add_ref(child, Transform(0, 0, Orientation.R90))
        polys = list(parent.polygons(M1))
        assert len(polys) == 1
        assert polys[0].area == 40 * 40 - 100


class TestLayout:
    def test_new_and_get(self):
        lib = Layout("LIB")
        cell = lib.new_cell("A")
        assert lib.cell("A") is cell
        assert "A" in lib
        assert len(lib) == 1

    def test_duplicate_name_rejected(self):
        lib = Layout()
        lib.new_cell("A")
        with pytest.raises(ValueError):
            lib.new_cell("A")

    def test_add_cell_pulls_children(self):
        child = Cell("CHILD")
        child.add_rect(M1, Rect(0, 0, 1, 1))
        top = Cell("TOP")
        top.add_ref(child)
        lib = Layout()
        lib.add_cell(top)
        assert "CHILD" in lib

    def test_top_cells(self):
        lib = Layout()
        child = lib.new_cell("CHILD")
        top = lib.new_cell("TOP")
        top.add_ref(child)
        assert [c.name for c in lib.top_cells()] == ["TOP"]
        assert lib.top_cell().name == "TOP"

    def test_top_cell_ambiguous(self):
        lib = Layout()
        lib.new_cell("A")
        lib.new_cell("B")
        with pytest.raises(ValueError):
            lib.top_cell()

    def test_dbu_validation(self):
        with pytest.raises(ValueError):
            Layout(dbu_nm=0)
