"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block, make_stdcell_library
from repro.litho import LithoModel
from repro.tech import make_node


@pytest.fixture(scope="session")
def tech45():
    return make_node(45)


@pytest.fixture(scope="session")
def tech65():
    return make_node(65)


@pytest.fixture(scope="session")
def litho45(tech45):
    return LithoModel(tech45.litho)


@pytest.fixture(scope="session")
def stdlib45(tech45):
    return make_stdcell_library(tech45)


@pytest.fixture(scope="session")
def small_block(tech45, stdlib45):
    """A small routed logic block shared by integration tests."""
    spec = LogicBlockSpec(rows=2, row_width_nm=5000, net_count=6, seed=11, weak_spots=4)
    return generate_logic_block(tech45, spec, stdlib45)
