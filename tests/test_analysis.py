"""Unit tests for the reporting utilities."""

import pytest

from repro.analysis import ExperimentRecord, Series, Table, format_float


class TestFormat:
    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_plain(self):
        assert format_float(1.5) == "1.5"
        assert format_float(45.0) == "45"

    def test_scientific_for_extremes(self):
        assert "e" in format_float(1e-9)
        assert "e" in format_float(1e12)


class TestTable:
    def test_render(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1.25)
        table.add_row("beta", 300)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text and "1.25" in text
        assert str(table) == text

    def test_row_length_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_table_renders(self):
        assert "T" in Table("T", ["col"]).render()


class TestSeries:
    def test_add_and_render(self):
        series = Series("yield")
        series.add(0.1, 0.95)
        series.add(0.5, 0.80)
        text = series.render("D0", "Y")
        assert "yield" in text and "0.95" in text


class TestExperimentRecord:
    def test_lifecycle(self):
        record = ExperimentRecord("F1", "CAA optimization raises yield")
        record.record("yield_base", 0.8)
        record.record("yield_opt", 0.9)
        record.conclude(True, "gap grows with D0")
        text = record.render()
        assert "HOLDS" in text
        assert "yield_base" in text
        assert "gap grows" in text

    def test_unevaluated(self):
        record = ExperimentRecord("T9", "claim")
        assert "UNEVALUATED" in record.render()

    def test_negative(self):
        record = ExperimentRecord("T9", "claim")
        record.conclude(False)
        assert "DOES NOT HOLD" in record.render()
