"""No engine path may touch the deprecated report aliases.

PR 4 kept ``is_clean`` / ``passed`` / ``*_seconds`` alive as warning
aliases for external callers; PR 8 swept the last internal call sites.
This test pins the sweep: importing the package and running every
engine must stay silent under ``-W error::DeprecationWarning``, so a
reintroduced alias use fails tier-1 instead of warning quietly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings
from pathlib import Path

from repro import api
from repro.matrix import MatrixSpec, enumerate_scenarios, run_matrix
from repro.service import ServiceClient, VerificationService

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_import_is_warning_free():
    """A subprocess import with DeprecationWarning promoted to an error:
    module-level alias use anywhere in the package would fail it."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::DeprecationWarning",
            "-c",
            "import repro, repro.api, repro.cli, repro.matrix, repro.service",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr


def test_engines_run_warning_free(tech45, small_block, tmp_path):
    """Every engine end to end with DeprecationWarning as an error."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)

        drc = api.run_drc(small_block.top, tech45.rules)
        assert drc.to_dict()["report"]

        scan = api.scan_full_chip(
            tech45, small_block.top.region(tech45.layers.metal1), tile_nm=4000
        )
        assert scan.to_dict()["report"]

        result, stitches = api.decompose(
            small_block.top.region(tech45.layers.metal1),
            2 * tech45.metal_space,
        )
        assert result.to_dict()["report"]

        matrix = run_matrix(
            MatrixSpec(nodes=(45,), cells=("INV_X1",), corners=1)
        )
        assert matrix.to_dict()["report"]

        scenario = enumerate_scenarios(
            MatrixSpec(nodes=(45,), cells=("INV_X1",), corners=1, checks=("dpt",))
        )[0]
        with VerificationService(jobs=1) as service:
            events = list(
                ServiceClient(service).submit_batch(
                    [{"kind": "matrix", "params": scenario.item()}]
                )
            )
            assert events[0]["job"]["state"] == "done"
