"""Self-tests for ``tools.repro_lint``: every rule gets a violating
fixture, a clean twin, and a pragma-suppressed variant, plus the JSON
output schema and the meta-test that the repo's own tree lints clean."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import (  # noqa: E402
    PARSE_ERROR_ID,
    RULES,
    LintConfig,
    lint_paths,
    parse_pragmas,
)


def lint_source(tmp_path: Path, source: str, *, name: str = "mod.py", config=None):
    """Write ``source`` to a scratch file and lint it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([target], config)


def rules_hit(result) -> set[str]:
    return {v.rule for v in result.violations}


# ---------------------------------------------------------------------------
# RL001 — integer-nm geometry


class TestRL001:
    def test_float_literal_into_ctor(self, tmp_path):
        result = lint_source(tmp_path, "r = Rect(0, 0, 10.5, 20)\n")
        assert rules_hit(result) == {"RL001"}

    def test_true_division_into_ctor(self, tmp_path):
        result = lint_source(tmp_path, "p = Point(w / 2, h // 2)\n")
        assert rules_hit(result) == {"RL001"}
        assert len(result.violations) == 1  # only the / argument

    def test_keyword_argument_checked(self, tmp_path):
        result = lint_source(tmp_path, "r = Rect(x0=0, y0=0, x1=w / 2, y1=h)\n")
        assert rules_hit(result) == {"RL001"}

    def test_taint_through_local(self, tmp_path):
        src = "def f(w):\n    half = w / 2\n    return Point(half, 0)\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL001"}

    def test_clean_floor_division_and_int(self, tmp_path):
        src = (
            "def f(w, h):\n"
            "    r = Rect(0, 0, w // 2, int(h / 2))\n"
            "    return Rect.from_center(Point(0, 0), w // 2, h // 2)\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_float_ok_outside_geometry(self, tmp_path):
        result = lint_source(tmp_path, "score = hits / total\nx = 0.5 * score\n")
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = "r = Rect(0, 0, 10.5, 20)  # repro-lint: disable=RL001\n"
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL002 — worker determinism (opt-in via the worker-code marker)

WORKER = "# repro-lint: worker-code\n"


class TestRL002:
    def test_wall_clock(self, tmp_path):
        result = lint_source(tmp_path, WORKER + "import time\nt = time.time()\n")
        assert rules_hit(result) == {"RL002"}

    def test_global_random(self, tmp_path):
        src = WORKER + "import random\nj = random.randint(0, 4)\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL002"}

    def test_from_import_random(self, tmp_path):
        src = WORKER + "from random import choice\nx = choice(items)\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL002"}

    def test_id_keyed_dict(self, tmp_path):
        src = WORKER + "cache = {id(obj): 1}\nv = table[id(obj)]\n"
        result = lint_source(tmp_path, src)
        assert len([v for v in result.violations if v.rule == "RL002"]) == 2

    def test_set_iteration(self, tmp_path):
        src = WORKER + "for x in {1, 2, 3}:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL002"}

    def test_clean_deterministic_worker(self, tmp_path):
        src = WORKER + (
            "import time, random\n"
            "def work(payload, item):\n"
            "    t0 = time.perf_counter()\n"
            "    rng = random.Random(1234)\n"
            "    for x in sorted({1, 2, 3}):\n"
            "        pass\n"
            "    return time.perf_counter() - t0\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_not_worker_code_not_checked(self, tmp_path):
        result = lint_source(tmp_path, "import time\nt = time.time()\n")
        assert result.ok

    def test_worker_path_opts_in(self, tmp_path):
        src = "import time\nt = time.time()\n"
        result = lint_source(tmp_path, src, name="repro/parallel/w.py")
        assert rules_hit(result) == {"RL002"}

    def test_pragma_suppresses(self, tmp_path):
        src = WORKER + "import time\nt = time.time()  # repro-lint: disable=RL002\n"
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL003 — metric names from the registry

REGISTRY = (
    'POOL_CHUNKS = "pool.chunks"\n'
    'DYNAMIC_PREFIXES = ("drc.tasks.",)\n'
    "def drc_task(tag):\n"
    '    return f"drc.tasks.{tag}"\n'
)


def lint_with_registry(tmp_path: Path, source: str):
    (tmp_path / "repro" / "obs").mkdir(parents=True)
    (tmp_path / "repro" / "obs" / "names.py").write_text(REGISTRY)
    (tmp_path / "mod.py").write_text(source)
    return lint_paths([tmp_path])


class TestRL003:
    def test_registered_literal_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, 'registry.inc("pool.chunks")\n')
        assert rules_hit(result) == {"RL003"}
        assert "single source of truth" in result.violations[0].message

    def test_unregistered_literal_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, 'registry.inc("pool.chunkz")\n')
        assert rules_hit(result) == {"RL003"}
        assert "unregistered" in result.violations[0].message

    def test_fstring_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, 'registry.inc(f"drc.tasks.{tag}")\n')
        assert rules_hit(result) == {"RL003"}

    def test_unknown_names_attribute_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, "registry.inc(names.POOL_CHUNKZ)\n")
        assert rules_hit(result) == {"RL003"}

    def test_bad_import_flagged(self, tmp_path):
        src = "from repro.obs.names import POOL_CHUNKZ\n"
        result = lint_with_registry(tmp_path, src)
        assert rules_hit(result) == {"RL003"}

    def test_clean_constant_and_helper(self, tmp_path):
        src = (
            "from repro.obs.names import POOL_CHUNKS, drc_task\n"
            "registry.inc(names.POOL_CHUNKS)\n"
            "registry.inc(drc_task(tag))\n"
        )
        result = lint_with_registry(tmp_path, src)
        assert result.ok

    def test_read_side_also_checked(self, tmp_path):
        result = lint_with_registry(tmp_path, 'n = registry.counter("pool.chunks")\n')
        assert rules_hit(result) == {"RL003"}

    def test_non_registry_receiver_ignored(self, tmp_path):
        result = lint_with_registry(tmp_path, 'counterbox.inc("whatever")\n')
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = 'registry.inc("pool.chunks")  # repro-lint: disable=RL003\n'
        result = lint_with_registry(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL004 — blanket except discipline


class TestRL004:
    def test_swallowed_exception_flagged(self, tmp_path):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL004"}

    def test_bare_except_flagged(self, tmp_path):
        src = "try:\n    work()\nexcept:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL004"}

    def test_blanket_in_tuple_flagged(self, tmp_path):
        src = "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL004"}

    def test_reraise_is_clean(self, tmp_path):
        src = "try:\n    work()\nexcept Exception:\n    log()\n    raise\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_quarantine_routing_is_clean(self, tmp_path):
        src = "try:\n    work()\nexcept Exception as exc:\n    quarantine_tile(exc)\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_narrow_except_is_clean(self, tmp_path):
        src = "try:\n    work()\nexcept (OSError, ValueError):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception:  # repro-lint: disable=RL004\n"
            "    pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL005 — the BaseReport contract


class TestRL005:
    def test_report_without_base_flagged(self, tmp_path):
        src = "class FooReport:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL005"}

    def test_deprecated_member_flagged(self, tmp_path):
        src = (
            "class FooReport(BaseReport):\n"
            "    @property\n"
            "    def is_clean(self):\n"
            "        return True\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL005"}

    def test_seconds_field_flagged(self, tmp_path):
        src = "class FooReport(BaseReport):\n    elapsed_seconds: float = 0.0\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL005"}

    def test_deprecated_read_flagged(self, tmp_path):
        result = lint_source(tmp_path, "if report.is_clean:\n    pass\n")
        assert rules_hit(result) == {"RL005"}

    def test_alias_definition_is_clean(self, tmp_path):
        src = (
            "class FooReport(BaseReport):\n"
            '    is_clean = deprecated_alias("is_clean", "ok")\n'
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_inheriting_report_is_clean(self, tmp_path):
        src = (
            "class FooReport(BaseReport):\n"
            "    elapsed_s: float = 0.0\n"
            "class RichFooReport(FooReport):\n"
            "    pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = "class FooReport:  # repro-lint: disable=RL005\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL006 — keyword-only public API (opt-in via the public-api marker)

PUBLIC = "# repro-lint: public-api\n"


class TestRL006:
    def test_positional_default_flagged(self, tmp_path):
        src = PUBLIC + "def run(cell, deck, jobs=1):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL006"}
        assert "jobs" in result.violations[0].message

    def test_keyword_only_is_clean(self, tmp_path):
        src = PUBLIC + "def run(cell, deck, *, jobs=1, cache=None):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_private_function_ignored(self, tmp_path):
        src = PUBLIC + "def _helper(x, limit=3):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_non_api_file_ignored(self, tmp_path):
        result = lint_source(tmp_path, "def run(cell, deck, jobs=1):\n    pass\n")
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = PUBLIC + (
            "def run(cell, deck, jobs=1):  # repro-lint: disable=RL006\n    pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL007 — keyword-only client surface (opt-in via the client-api marker)

CLIENT = "# repro-lint: client-api\n"


class TestRL007:
    def test_method_positional_default_flagged(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    def submit(self, kind, wait=True):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}
        assert "wait" in result.violations[0].message

    def test_init_positional_default_flagged(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    def __init__(self, host, timeout=None):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_module_function_flagged_in_client_file(self, tmp_path):
        src = CLIENT + "def connect(host, timeout=None):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_classmethod_positional_default_flagged(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    @classmethod\n"
            "    def from_state_file(cls, path='x.json'):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_keyword_only_is_clean(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    def __init__(self, host, port, *, timeout=None):\n"
            "        pass\n"
            "    def submit(self, kind, params, *, wait=True):\n"
            "        pass\n"
            "    @property\n"
            "    def connected(self):\n"
            "        return True\n"
            "    def _read(self, limit=1):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_methods_of_public_classes_in_api_files(self, tmp_path):
        # RL007 extends RL006 into class bodies of public-api files too
        src = PUBLIC + (
            "class Facade:\n"
            "    def run(self, cell, jobs=1):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_private_class_ignored(self, tmp_path):
        src = CLIENT + (
            "class _Internal:\n"
            "    def submit(self, kind, wait=True):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_non_client_file_ignored(self, tmp_path):
        src = (
            "class SocketClient:\n"
            "    def submit(self, kind, wait=True):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# engine behavior: pragmas, config, output, exit codes


class TestEngine:
    def test_file_wide_pragma(self, tmp_path):
        src = "# repro-lint: disable-file=RL001\nr = Rect(0, 0, 10.5, 20)\n"
        assert lint_source(tmp_path, src).ok

    def test_disable_all(self, tmp_path):
        src = (
            "# repro-lint: disable-file=all\n"
            "r = Rect(0, 0, 10.5, 20)\n"
            "class FooReport:\n    pass\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_pragma_parse_markers_and_rules(self):
        pragmas = parse_pragmas("# repro-lint: disable=RL001, RL004 worker-code\n")
        assert pragmas.line_disabled[1] == {"RL001", "RL004"}
        assert pragmas.markers == {"worker-code"}

    def test_pragma_inside_string_is_inert(self, tmp_path):
        src = 's = "# repro-lint: disable-file=all"\nr = Rect(0, 0, 10.5, 20)\n'
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL001"}

    def test_config_disable(self, tmp_path):
        config = LintConfig(disable=frozenset({"RL001"}))
        result = lint_source(tmp_path, "r = Rect(0, 0, 10.5, 20)\n", config=config)
        assert result.ok

    def test_config_enable_subset(self, tmp_path):
        config = LintConfig(enable=frozenset({"RL004"}))
        src = "r = Rect(0, 0, 10.5, 20)\ntry:\n    f()\nexcept Exception:\n    pass\n"
        result = lint_source(tmp_path, src, config=config)
        assert rules_hit(result) == {"RL004"}

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n")
        assert rules_hit(result) == {PARSE_ERROR_ID}

    def test_json_schema(self, tmp_path):
        result = lint_source(tmp_path, "r = Rect(0, 0, 10.5, 20)\n")
        doc = json.loads(result.to_json())
        assert doc["version"] == 1
        assert doc["ok"] is False
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"RL001": 1}
        violation = doc["violations"][0]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "RL001"
        assert violation["line"] == 1

    def test_every_rule_has_fixture_coverage(self):
        tested = {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"}
        assert set(RULES) == tested


# ---------------------------------------------------------------------------
# CLI contract and the meta-test over the repo's own tree


def run_cli(*argv: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


class TestCli:
    def test_repo_tree_is_clean(self):
        """The meta-test: the repo's own code must satisfy its invariants."""
        proc = run_cli("src", "tools", "examples", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violations_exit_1(self, tmp_path):
        (tmp_path / "bad.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "RL001" in proc.stdout

    def test_no_fail_exits_0(self, tmp_path):
        (tmp_path / "bad.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = run_cli(str(tmp_path), "--no-fail")
        assert proc.returncode == 0

    def test_usage_error_exits_2(self):
        proc = run_cli("src", "--disable", "RL999")
        assert proc.returncode == 2

    def test_missing_path_exits_2(self):
        proc = run_cli("no/such/path")
        assert proc.returncode == 2

    def test_json_output(self, tmp_path):
        (tmp_path / "bad.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = run_cli(str(tmp_path), "--format", "json")
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"RL001": 1}

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"
        ):
            assert rule_id in proc.stdout
