"""Self-tests for ``tools.repro_lint``: every rule gets a violating
fixture, a clean twin, and a pragma-suppressed variant, plus the JSON
output schema and the meta-test that the repo's own tree lints clean."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import (  # noqa: E402
    PARSE_ERROR_ID,
    PROJECT_RULES,
    RULES,
    LintConfig,
    lint_paths,
    parse_pragmas,
)


def lint_source(tmp_path: Path, source: str, *, name: str = "mod.py", config=None):
    """Write ``source`` to a scratch file and lint it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([target], config)


def rules_hit(result) -> set[str]:
    return {v.rule for v in result.violations}


# ---------------------------------------------------------------------------
# RL001 — integer-nm geometry


class TestRL001:
    def test_float_literal_into_ctor(self, tmp_path):
        result = lint_source(tmp_path, "r = Rect(0, 0, 10.5, 20)\n")
        assert rules_hit(result) == {"RL001"}

    def test_true_division_into_ctor(self, tmp_path):
        result = lint_source(tmp_path, "p = Point(w / 2, h // 2)\n")
        assert rules_hit(result) == {"RL001"}
        assert len(result.violations) == 1  # only the / argument

    def test_keyword_argument_checked(self, tmp_path):
        result = lint_source(tmp_path, "r = Rect(x0=0, y0=0, x1=w / 2, y1=h)\n")
        assert rules_hit(result) == {"RL001"}

    def test_taint_through_local(self, tmp_path):
        src = "def f(w):\n    half = w / 2\n    return Point(half, 0)\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL001"}

    def test_clean_floor_division_and_int(self, tmp_path):
        src = (
            "def f(w, h):\n"
            "    r = Rect(0, 0, w // 2, int(h / 2))\n"
            "    return Rect.from_center(Point(0, 0), w // 2, h // 2)\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_float_ok_outside_geometry(self, tmp_path):
        result = lint_source(tmp_path, "score = hits / total\nx = 0.5 * score\n")
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = "r = Rect(0, 0, 10.5, 20)  # repro-lint: disable=RL001\n"
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL002 — worker determinism (opt-in via the worker-code marker)

WORKER = "# repro-lint: worker-code\n"


class TestRL002:
    def test_wall_clock(self, tmp_path):
        result = lint_source(tmp_path, WORKER + "import time\nt = time.time()\n")
        assert rules_hit(result) == {"RL002"}

    def test_global_random(self, tmp_path):
        src = WORKER + "import random\nj = random.randint(0, 4)\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL002"}

    def test_from_import_random(self, tmp_path):
        src = WORKER + "from random import choice\nx = choice(items)\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL002"}

    def test_id_keyed_dict(self, tmp_path):
        src = WORKER + "cache = {id(obj): 1}\nv = table[id(obj)]\n"
        result = lint_source(tmp_path, src)
        assert len([v for v in result.violations if v.rule == "RL002"]) == 2

    def test_set_iteration(self, tmp_path):
        src = WORKER + "for x in {1, 2, 3}:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL002"}

    def test_clean_deterministic_worker(self, tmp_path):
        src = WORKER + (
            "import time, random\n"
            "def work(payload, item):\n"
            "    t0 = time.perf_counter()\n"
            "    rng = random.Random(1234)\n"
            "    for x in sorted({1, 2, 3}):\n"
            "        pass\n"
            "    return time.perf_counter() - t0\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_not_worker_code_not_checked(self, tmp_path):
        result = lint_source(tmp_path, "import time\nt = time.time()\n")
        assert result.ok

    def test_worker_path_opts_in(self, tmp_path):
        src = "import time\nt = time.time()\n"
        result = lint_source(tmp_path, src, name="repro/parallel/w.py")
        assert rules_hit(result) == {"RL002"}

    def test_pragma_suppresses(self, tmp_path):
        src = WORKER + "import time\nt = time.time()  # repro-lint: disable=RL002\n"
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL003 — metric names from the registry

REGISTRY = (
    'POOL_CHUNKS = "pool.chunks"\n'
    'DYNAMIC_PREFIXES = ("drc.tasks.",)\n'
    "def drc_task(tag):\n"
    '    return f"drc.tasks.{tag}"\n'
)


def lint_with_registry(tmp_path: Path, source: str):
    (tmp_path / "repro" / "obs").mkdir(parents=True)
    (tmp_path / "repro" / "obs" / "names.py").write_text(REGISTRY)
    (tmp_path / "mod.py").write_text(source)
    return lint_paths([tmp_path])


class TestRL003:
    def test_registered_literal_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, 'registry.inc("pool.chunks")\n')
        assert rules_hit(result) == {"RL003"}
        assert "single source of truth" in result.violations[0].message

    def test_unregistered_literal_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, 'registry.inc("pool.chunkz")\n')
        assert rules_hit(result) == {"RL003"}
        assert "unregistered" in result.violations[0].message

    def test_fstring_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, 'registry.inc(f"drc.tasks.{tag}")\n')
        assert rules_hit(result) == {"RL003"}

    def test_unknown_names_attribute_flagged(self, tmp_path):
        result = lint_with_registry(tmp_path, "registry.inc(names.POOL_CHUNKZ)\n")
        assert rules_hit(result) == {"RL003"}

    def test_bad_import_flagged(self, tmp_path):
        src = "from repro.obs.names import POOL_CHUNKZ\n"
        result = lint_with_registry(tmp_path, src)
        assert rules_hit(result) == {"RL003"}

    def test_clean_constant_and_helper(self, tmp_path):
        src = (
            "from repro.obs.names import POOL_CHUNKS, drc_task\n"
            "registry.inc(names.POOL_CHUNKS)\n"
            "registry.inc(drc_task(tag))\n"
        )
        result = lint_with_registry(tmp_path, src)
        assert result.ok

    def test_read_side_also_checked(self, tmp_path):
        result = lint_with_registry(tmp_path, 'n = registry.counter("pool.chunks")\n')
        assert rules_hit(result) == {"RL003"}

    def test_non_registry_receiver_ignored(self, tmp_path):
        result = lint_with_registry(tmp_path, 'counterbox.inc("whatever")\n')
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = 'registry.inc("pool.chunks")  # repro-lint: disable=RL003\n'
        result = lint_with_registry(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL004 — blanket except discipline


class TestRL004:
    def test_swallowed_exception_flagged(self, tmp_path):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL004"}

    def test_bare_except_flagged(self, tmp_path):
        src = "try:\n    work()\nexcept:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL004"}

    def test_blanket_in_tuple_flagged(self, tmp_path):
        src = "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL004"}

    def test_reraise_is_clean(self, tmp_path):
        src = "try:\n    work()\nexcept Exception:\n    log()\n    raise\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_quarantine_routing_is_clean(self, tmp_path):
        src = "try:\n    work()\nexcept Exception as exc:\n    quarantine_tile(exc)\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_narrow_except_is_clean(self, tmp_path):
        src = "try:\n    work()\nexcept (OSError, ValueError):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception:  # repro-lint: disable=RL004\n"
            "    pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL005 — the BaseReport contract


class TestRL005:
    def test_report_without_base_flagged(self, tmp_path):
        src = "class FooReport:\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL005"}

    def test_deprecated_member_flagged(self, tmp_path):
        src = (
            "class FooReport(BaseReport):\n"
            "    @property\n"
            "    def is_clean(self):\n"
            "        return True\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL005"}

    def test_seconds_field_flagged(self, tmp_path):
        src = "class FooReport(BaseReport):\n    elapsed_seconds: float = 0.0\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL005"}

    def test_deprecated_read_flagged(self, tmp_path):
        result = lint_source(tmp_path, "if report.is_clean:\n    pass\n")
        assert rules_hit(result) == {"RL005"}

    def test_alias_definition_is_clean(self, tmp_path):
        src = (
            "class FooReport(BaseReport):\n"
            '    is_clean = deprecated_alias("is_clean", "ok")\n'
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_inheriting_report_is_clean(self, tmp_path):
        src = (
            "class FooReport(BaseReport):\n"
            "    elapsed_s: float = 0.0\n"
            "class RichFooReport(FooReport):\n"
            "    pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = "class FooReport:  # repro-lint: disable=RL005\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL006 — keyword-only public API (opt-in via the public-api marker)

PUBLIC = "# repro-lint: public-api\n"


class TestRL006:
    def test_positional_default_flagged(self, tmp_path):
        src = PUBLIC + "def run(cell, deck, jobs=1):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL006"}
        assert "jobs" in result.violations[0].message

    def test_keyword_only_is_clean(self, tmp_path):
        src = PUBLIC + "def run(cell, deck, *, jobs=1, cache=None):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_private_function_ignored(self, tmp_path):
        src = PUBLIC + "def _helper(x, limit=3):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_non_api_file_ignored(self, tmp_path):
        result = lint_source(tmp_path, "def run(cell, deck, jobs=1):\n    pass\n")
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        src = PUBLIC + (
            "def run(cell, deck, jobs=1):  # repro-lint: disable=RL006\n    pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL007 — keyword-only client surface (opt-in via the client-api marker)

CLIENT = "# repro-lint: client-api\n"


class TestRL007:
    def test_method_positional_default_flagged(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    def submit(self, kind, wait=True):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}
        assert "wait" in result.violations[0].message

    def test_init_positional_default_flagged(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    def __init__(self, host, timeout=None):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_module_function_flagged_in_client_file(self, tmp_path):
        src = CLIENT + "def connect(host, timeout=None):\n    pass\n"
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_classmethod_positional_default_flagged(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    @classmethod\n"
            "    def from_state_file(cls, path='x.json'):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_keyword_only_is_clean(self, tmp_path):
        src = CLIENT + (
            "class SocketClient:\n"
            "    def __init__(self, host, port, *, timeout=None):\n"
            "        pass\n"
            "    def submit(self, kind, params, *, wait=True):\n"
            "        pass\n"
            "    @property\n"
            "    def connected(self):\n"
            "        return True\n"
            "    def _read(self, limit=1):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_methods_of_public_classes_in_api_files(self, tmp_path):
        # RL007 extends RL006 into class bodies of public-api files too
        src = PUBLIC + (
            "class Facade:\n"
            "    def run(self, cell, jobs=1):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL007"}

    def test_private_class_ignored(self, tmp_path):
        src = CLIENT + (
            "class _Internal:\n"
            "    def submit(self, kind, wait=True):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok

    def test_non_client_file_ignored(self, tmp_path):
        src = (
            "class SocketClient:\n"
            "    def submit(self, kind, wait=True):\n"
            "        pass\n"
        )
        result = lint_source(tmp_path, src)
        assert result.ok


# ---------------------------------------------------------------------------
# RL008 — lock discipline (file half) and lock order (project half)

LOCKED_STORE = (
    "import threading\n"
    "class Store:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.items = {}\n"
    "    def put(self, k, v):\n"
    "        with self._lock:\n"
    "            self.items[k] = v\n"
)


class TestRL008:
    def test_unlocked_read_flagged(self, tmp_path):
        src = LOCKED_STORE + (
            "    def peek(self, k):\n"
            "        return self.items.get(k)\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL008"}
        assert "peek" in result.violations[0].message

    def test_unlocked_write_flagged(self, tmp_path):
        src = LOCKED_STORE + (
            "    def clear(self):\n"
            "        self.items = {}\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL008"}

    def test_locked_access_is_clean(self, tmp_path):
        src = LOCKED_STORE + (
            "    def peek(self, k):\n"
            "        with self._lock:\n"
            "            return self.items.get(k)\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_helper_called_only_under_lock_is_credited(self, tmp_path):
        src = LOCKED_STORE + (
            "    def drop(self, k):\n"
            "        with self._lock:\n"
            "            self._del(k)\n"
            "    def _del(self, k):\n"
            "        self.items.pop(k, None)\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_public_method_never_credited(self, tmp_path):
        # same shape, but the helper is public: external callers can
        # invoke it without the lock, so the unlocked write stands
        src = LOCKED_STORE + (
            "    def drop(self, k):\n"
            "        with self._lock:\n"
            "            self.remove(k)\n"
            "    def remove(self, k):\n"
            "        self.items.pop(k, None)\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL008"}

    def test_closure_is_a_fresh_unlocked_context(self, tmp_path):
        src = LOCKED_STORE + (
            "    def getter(self):\n"
            "        def read(k):\n"
            "            return self.items.get(k)\n"
            "        return read\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL008"}

    def test_closure_taking_the_lock_is_clean(self, tmp_path):
        src = LOCKED_STORE + (
            "    def getter(self):\n"
            "        def read(k):\n"
            "            with self._lock:\n"
            "                return self.items.get(k)\n"
            "        return read\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_init_and_del_exempt(self, tmp_path):
        src = LOCKED_STORE + (
            "    def __del__(self):\n"
            "        self.items.clear()\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_condition_aliases_the_lock(self, tmp_path):
        # Condition(self._lock) shares the underlying lock: holding
        # either guards the attribute
        src = (
            "import threading\n"
            "class Queue:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._ready = threading.Condition(self._lock)\n"
            "        self.depth = 0\n"
            "    def push(self):\n"
            "        with self._lock:\n"
            "            self.depth += 1\n"
            "    def pop(self):\n"
            "        with self._ready:\n"
            "            self.depth -= 1\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_lockless_class_ignored(self, tmp_path):
        src = (
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.items = {}\n"
            "    def put(self, k, v):\n"
            "        self.items[k] = v\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_pragma_suppresses(self, tmp_path):
        src = LOCKED_STORE + (
            "    def peek(self, k):\n"
            "        return self.items.get(k)  # repro-lint: disable=RL008\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_lock_order_cycle_flagged(self, tmp_path):
        src = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._b = B()\n"
            "    def step(self):\n"
            "        with self._lock:\n"
            "            self._b.poke()\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._a = A()\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            self._a.step()\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL008"}
        assert len(result.violations) == 1  # one cycle, reported once
        assert "lock-order cycle" in result.violations[0].message

    def test_one_directional_nesting_is_clean(self, tmp_path):
        src = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._b = B()\n"
            "    def step(self):\n"
            "        with self._lock:\n"
            "            self._b.poke()\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_lock_order_pragma_suppresses(self, tmp_path):
        src = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._b = B()\n"
            "    def step(self):\n"
            "        with self._lock:\n"
            "            self._b.poke()  # repro-lint: disable=RL008\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._a = A()\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            self._a.step()  # repro-lint: disable=RL008\n"
        )
        assert lint_source(tmp_path, src).ok


# ---------------------------------------------------------------------------
# RL009 — resource lifecycle


class TestRL009:
    def test_exception_path_leak_flagged(self, tmp_path):
        # the ShmArena.pack bug class: created, then a later statement
        # in the same try fails and the handler forgets the segment
        src = (
            "def pack(data):\n"
            "    try:\n"
            "        seg = SharedMemory(create=True, size=len(data))\n"
            "        seg.buf[: len(data)] = data\n"
            "    except OSError:\n"
            "        return None\n"
            "    return seg\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL009"}
        assert "exception path" in result.violations[0].message

    def test_handler_cleanup_is_clean(self, tmp_path):
        src = (
            "def pack(data):\n"
            "    seg = None\n"
            "    try:\n"
            "        seg = SharedMemory(create=True, size=len(data))\n"
            "        seg.buf[: len(data)] = data\n"
            "    except OSError:\n"
            "        if seg is not None:\n"
            "            seg.close()\n"
            "            seg.unlink()\n"
            "        return None\n"
            "    return seg\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_never_released_flagged(self, tmp_path):
        src = (
            "import socket\n"
            "def probe(host):\n"
            "    sock = socket.socket()\n"
            "    sock.connect((host, 9000))\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL009"}
        assert "never reaches a release" in result.violations[0].message

    def test_success_path_only_release_flagged(self, tmp_path):
        src = (
            "import socket\n"
            "def probe(host):\n"
            "    sock = socket.create_connection((host, 9000))\n"
            "    sock.sendall(b'ping')\n"
            "    sock.close()\n"
        )
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL009"}
        assert "success path" in result.violations[0].message

    def test_finally_release_is_clean(self, tmp_path):
        src = (
            "import socket\n"
            "def probe(host):\n"
            "    sock = socket.create_connection((host, 9000))\n"
            "    try:\n"
            "        sock.sendall(b'ping')\n"
            "    finally:\n"
            "        sock.close()\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_with_managed_is_clean(self, tmp_path):
        src = (
            "from contextlib import closing\n"
            "import socket\n"
            "def probe(host):\n"
            "    sock = socket.create_connection((host, 9000))\n"
            "    with closing(sock):\n"
            "        sock.sendall(b'ping')\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_ownership_transfer_is_clean(self, tmp_path):
        # returning (or storing) the handle makes the receiver the owner
        src = (
            "def attach(name):\n"
            "    seg = SharedMemory(name=name)\n"
            "    return Wrapper(seg)\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_pragma_suppresses(self, tmp_path):
        src = (
            "import socket\n"
            "def probe(host):\n"
            "    sock = socket.socket()  # repro-lint: disable=RL009\n"
            "    sock.connect((host, 9000))\n"
        )
        assert lint_source(tmp_path, src).ok


# ---------------------------------------------------------------------------
# RL010 — interprocedural worker determinism


def lint_worker_tree(tmp_path: Path, helper_src: str, worker_src: str):
    (tmp_path / "repro" / "parallel").mkdir(parents=True)
    (tmp_path / "repro" / "util.py").write_text(helper_src)
    (tmp_path / "repro" / "parallel" / "work.py").write_text(worker_src)
    return lint_paths([tmp_path])


class TestRL010:
    WORKER_CALLS_HELPER = (
        "from repro.util import stamp\n"
        "def run(tile):\n"
        "    return stamp(tile)\n"
    )

    def test_taint_in_reachable_helper_flagged(self, tmp_path):
        helper = (
            "import time\n"
            "def stamp(tile):\n"
            "    return (tile, time.time())\n"
        )
        result = lint_worker_tree(tmp_path, helper, self.WORKER_CALLS_HELPER)
        assert rules_hit(result) == {"RL010"}
        violation = result.violations[0]
        assert violation.path.endswith("repro/util.py")
        assert "reachable from worker code" in violation.message
        assert "run -> stamp" in violation.message

    def test_taint_propagates_through_intermediate_helper(self, tmp_path):
        helper = (
            "import time\n"
            "def stamp(tile):\n"
            "    return _now(tile)\n"
            "def _now(tile):\n"
            "    return (tile, time.time())\n"
        )
        result = lint_worker_tree(tmp_path, helper, self.WORKER_CALLS_HELPER)
        assert rules_hit(result) == {"RL010"}
        assert "stamp -> _now" in result.violations[0].message

    def test_method_taint_via_typed_local_flagged(self, tmp_path):
        helper = (
            "import random\n"
            "class Jitter:\n"
            "    def draw(self):\n"
            "        return random.random()\n"
        )
        worker = (
            "from repro.util import Jitter\n"
            "def run(tile):\n"
            "    j = Jitter()\n"
            "    return j.draw()\n"
        )
        result = lint_worker_tree(tmp_path, helper, worker)
        assert rules_hit(result) == {"RL010"}

    def test_deterministic_helper_is_clean(self, tmp_path):
        helper = (
            "def stamp(tile):\n"
            "    return (tile, hash(tile))\n"
        )
        result = lint_worker_tree(tmp_path, helper, self.WORKER_CALLS_HELPER)
        assert result.ok

    def test_unreachable_taint_not_flagged(self, tmp_path):
        # the helper module has a taint, but worker code never calls it
        helper = (
            "import time\n"
            "def unrelated():\n"
            "    return time.time()\n"
        )
        worker = "def run(tile):\n    return tile\n"
        result = lint_worker_tree(tmp_path, helper, worker)
        assert result.ok

    def test_taint_in_worker_file_left_to_rl002(self, tmp_path):
        # inside a worker file RL002 reports it; RL010 must not duplicate
        helper = "def stamp(tile):\n    return tile\n"
        worker = (
            "import time\n"
            "def run(tile):\n"
            "    return time.time()\n"
        )
        result = lint_worker_tree(tmp_path, helper, worker)
        assert rules_hit(result) == {"RL002"}

    def test_pragma_suppresses_at_the_hazard(self, tmp_path):
        helper = (
            "import time\n"
            "def stamp(tile):\n"
            "    return (tile, time.time())  # repro-lint: disable=RL010\n"
        )
        result = lint_worker_tree(tmp_path, helper, self.WORKER_CALLS_HELPER)
        assert result.ok


# ---------------------------------------------------------------------------
# RL011 — wire-protocol consistency


SERVICE_PROTOCOL = 'OPS = ("ping", "status")\nSTREAM_OPS = ()\n'
SERVICE_DAEMON = (
    "def dispatch(request):\n"
    "    op = request.get('op')\n"
    "    if op == 'ping':\n"
    "        return {}\n"
    "    if op == 'status':\n"
    "        return {}\n"
)
SERVICE_CLIENT = (
    "class SocketClient:\n"
    "    def ping(self):\n"
    "        return self.request('ping')\n"
)
SERVICE_ERRORS = 'QUEUE_FULL = "queue-full"\n'
SERVICE_DOC = "ops: `ping`, `status`; codes: `queue-full`\n"


def lint_service_tree(tmp_path: Path, **overrides: str):
    sources = {
        "protocol.py": SERVICE_PROTOCOL,
        "daemon.py": SERVICE_DAEMON,
        "client.py": SERVICE_CLIENT,
        "errors.py": SERVICE_ERRORS,
    }
    sources.update(overrides)
    service = tmp_path / "repro" / "service"
    service.mkdir(parents=True)
    for name, src in sources.items():
        if src is not None:
            (service / name).write_text(src)
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "SERVICE.md").write_text(
        overrides.get("doc", SERVICE_DOC)
    )
    return lint_paths([tmp_path])


class TestRL011:
    def test_consistent_tree_is_clean(self, tmp_path):
        assert lint_service_tree(tmp_path).ok

    def test_undeclared_op_flagged(self, tmp_path):
        client = SERVICE_CLIENT + (
            "    def boom(self):\n"
            "        return self.request('frobnicate')\n"
        )
        result = lint_service_tree(tmp_path, **{"client.py": client})
        assert rules_hit(result) == {"RL011"}
        violation = result.violations[0]
        assert violation.path.endswith("client.py")
        assert "frobnicate" in violation.message
        assert "protocol.OPS" in violation.message

    def test_unhandled_op_flagged(self, tmp_path):
        # declared and documented, but the daemon never dispatches it
        client = SERVICE_CLIENT + (
            "    def status(self):\n"
            "        return self.request('status')\n"
        )
        daemon = (
            "def dispatch(request):\n"
            "    op = request.get('op')\n"
            "    if op == 'ping':\n"
            "        return {}\n"
        )
        result = lint_service_tree(
            tmp_path, **{"client.py": client, "daemon.py": daemon}
        )
        assert rules_hit(result) == {"RL011"}
        assert "never dispatched" in result.violations[0].message

    def test_dict_literal_op_also_counts_as_sent(self, tmp_path):
        client = SERVICE_CLIENT + (
            "    def stream(self):\n"
            "        return self.send({'op': 'batch-run'})\n"
        )
        result = lint_service_tree(tmp_path, **{"client.py": client})
        assert rules_hit(result) == {"RL011"}
        assert "batch-run" in result.violations[0].message

    def test_undocumented_op_flagged(self, tmp_path):
        result = lint_service_tree(tmp_path, doc="ops: `ping`; codes: `queue-full`\n")
        assert rules_hit(result) == {"RL011"}
        violation = result.violations[0]
        assert violation.path.endswith("protocol.py")
        assert "status" in violation.message

    def test_error_code_literal_flagged(self, tmp_path):
        jobs = (
            "class QueueFullError(Exception):\n"
            "    code = 'queue-full'\n"
        )
        result = lint_service_tree(tmp_path, **{"jobs.py": jobs})
        assert rules_hit(result) == {"RL011"}
        assert "repro.service.errors" in result.violations[0].message

    def test_unknown_code_constant_flagged(self, tmp_path):
        jobs = (
            "from repro.service import errors\n"
            "class QueueFullError(Exception):\n"
            "    code = errors.QUEUE_FULLZ\n"
        )
        result = lint_service_tree(tmp_path, **{"jobs.py": jobs})
        assert rules_hit(result) == {"RL011"}
        assert "QUEUE_FULLZ" in result.violations[0].message

    def test_registry_constant_reference_is_clean(self, tmp_path):
        jobs = (
            "from repro.service import errors\n"
            "class QueueFullError(Exception):\n"
            "    code = errors.QUEUE_FULL\n"
        )
        assert lint_service_tree(tmp_path, **{"jobs.py": jobs}).ok

    def test_duplicate_registry_code_flagged(self, tmp_path):
        errors_src = 'QUEUE_FULL = "queue-full"\nSHED = "queue-full"\n'
        result = lint_service_tree(tmp_path, **{"errors.py": errors_src})
        assert rules_hit(result) == {"RL011"}
        assert "registered twice" in result.violations[0].message

    def test_undocumented_registry_code_flagged(self, tmp_path):
        errors_src = SERVICE_ERRORS + 'SHED = "load-shed"\n'
        result = lint_service_tree(tmp_path, **{"errors.py": errors_src})
        assert rules_hit(result) == {"RL011"}
        assert "load-shed" in result.violations[0].message

    def test_no_service_layer_is_silent(self, tmp_path):
        result = lint_source(tmp_path, "x = 1\n")
        assert result.ok

    def test_pragma_suppresses(self, tmp_path):
        client = SERVICE_CLIENT + (
            "    def boom(self):\n"
            "        return self.request('frobnicate')  # repro-lint: disable=RL011\n"
        )
        assert lint_service_tree(tmp_path, **{"client.py": client}).ok


# ---------------------------------------------------------------------------
# the content-hash cache and --changed-only


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        (tmp_path / "a.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], cache_path=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = lint_paths([tmp_path], cache_path=cache)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [v.to_dict() for v in warm.violations] == [
            v.to_dict() for v in cold.violations
        ]

    def test_edited_file_misses_others_hit(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path], cache_path=cache)
        (tmp_path / "a.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        result = lint_paths([tmp_path], cache_path=cache)
        assert (result.cache_hits, result.cache_misses) == (1, 1)
        assert rules_hit(result) == {"RL001"}

    def test_config_change_invalidates(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path], cache_path=cache)
        result = lint_paths(
            [tmp_path],
            LintConfig(disable=frozenset({"RL001"})),
            cache_path=cache,
        )
        assert (result.cache_hits, result.cache_misses) == (0, 1)

    def test_project_rules_run_from_cached_facts(self, tmp_path):
        # a warm run re-parses nothing, yet cross-file rules still fire
        client = SERVICE_CLIENT + (
            "    def boom(self):\n"
            "        return self.request('frobnicate')\n"
        )
        service = tmp_path / "repro" / "service"
        service.mkdir(parents=True)
        (service / "protocol.py").write_text(SERVICE_PROTOCOL)
        (service / "daemon.py").write_text(SERVICE_DAEMON)
        (service / "client.py").write_text(client)
        cache = tmp_path / "cache.json"
        cold = lint_paths([service], cache_path=cache)
        warm = lint_paths([service], cache_path=cache)
        assert warm.cache_misses == 0 and warm.cache_hits == 3
        assert rules_hit(cold) == rules_hit(warm) == {"RL011"}

    def test_corrupt_cache_is_cold(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json")
        result = lint_paths([tmp_path], cache_path=cache)
        assert (result.cache_hits, result.cache_misses) == (0, 1)

    def test_warm_run_is_faster(self, tmp_path):
        import time as _time

        body = "".join(
            f"def f{i}(x):\n    return Rect(0, 0, x + {i}, x)\n"
            for i in range(40)
        )
        for i in range(25):
            (tmp_path / f"m{i}.py").write_text(body)
        cache = tmp_path / "cache.json"
        t0 = _time.perf_counter()
        cold = lint_paths([tmp_path], cache_path=cache)
        t_cold = _time.perf_counter() - t0
        t0 = _time.perf_counter()
        warm = lint_paths([tmp_path], cache_path=cache)
        t_warm = _time.perf_counter() - t0
        assert cold.cache_misses == 25 and warm.cache_hits == 25
        assert warm.violations == cold.violations == []
        assert t_warm < t_cold


class TestChangedOnly:
    @staticmethod
    def git(tmp_path: Path, *argv: str) -> None:
        subprocess.run(
            [
                "git",
                "-c", "user.email=lint@test",
                "-c", "user.name=lint",
                *argv,
            ],
            cwd=tmp_path,
            check=True,
            capture_output=True,
        )

    def run_lint(self, tmp_path: Path, *argv: str) -> subprocess.CompletedProcess:
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT))
        return subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", *argv],
            cwd=tmp_path,
            capture_output=True,
            text=True,
            env=env,
        )

    def test_only_changed_files_reported(self, tmp_path):
        (tmp_path / "old.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        self.git(tmp_path, "init", "-q")
        self.git(tmp_path, "add", ".")
        self.git(tmp_path, "commit", "-q", "-m", "seed")
        (tmp_path / "new.py").write_text("p = Point(1.5, 2)\n")
        proc = self.run_lint(tmp_path, ".", "--changed-only")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "new.py" in proc.stdout
        assert "old.py" not in proc.stdout

    def test_modified_tracked_file_reported(self, tmp_path):
        (tmp_path / "old.py").write_text("x = 1\n")
        self.git(tmp_path, "init", "-q")
        self.git(tmp_path, "add", ".")
        self.git(tmp_path, "commit", "-q", "-m", "seed")
        (tmp_path / "old.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = self.run_lint(tmp_path, ".", "--changed-only")
        assert proc.returncode == 1
        assert "old.py" in proc.stdout

    def test_outside_git_exits_2(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT), GIT_CEILING_DIRECTORIES=str(tmp_path.parent))
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", ".", "--changed-only"],
            cwd=tmp_path,
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2


# ---------------------------------------------------------------------------
# engine behavior: pragmas, config, output, exit codes


class TestEngine:
    def test_file_wide_pragma(self, tmp_path):
        src = "# repro-lint: disable-file=RL001\nr = Rect(0, 0, 10.5, 20)\n"
        assert lint_source(tmp_path, src).ok

    def test_disable_all(self, tmp_path):
        src = (
            "# repro-lint: disable-file=all\n"
            "r = Rect(0, 0, 10.5, 20)\n"
            "class FooReport:\n    pass\n"
        )
        assert lint_source(tmp_path, src).ok

    def test_pragma_parse_markers_and_rules(self):
        pragmas = parse_pragmas("# repro-lint: disable=RL001, RL004 worker-code\n")
        assert pragmas.line_disabled[1] == {"RL001", "RL004"}
        assert pragmas.markers == {"worker-code"}

    def test_pragma_inside_string_is_inert(self, tmp_path):
        src = 's = "# repro-lint: disable-file=all"\nr = Rect(0, 0, 10.5, 20)\n'
        result = lint_source(tmp_path, src)
        assert rules_hit(result) == {"RL001"}

    def test_config_disable(self, tmp_path):
        config = LintConfig(disable=frozenset({"RL001"}))
        result = lint_source(tmp_path, "r = Rect(0, 0, 10.5, 20)\n", config=config)
        assert result.ok

    def test_config_enable_subset(self, tmp_path):
        config = LintConfig(enable=frozenset({"RL004"}))
        src = "r = Rect(0, 0, 10.5, 20)\ntry:\n    f()\nexcept Exception:\n    pass\n"
        result = lint_source(tmp_path, src, config=config)
        assert rules_hit(result) == {"RL004"}

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n")
        assert rules_hit(result) == {PARSE_ERROR_ID}

    def test_json_schema(self, tmp_path):
        result = lint_source(tmp_path, "r = Rect(0, 0, 10.5, 20)\n")
        doc = json.loads(result.to_json())
        assert doc["version"] == 2
        assert doc["ok"] is False
        assert doc["files_checked"] == 1
        assert doc["cache"] == {"hits": 0, "misses": 1}
        assert doc["counts"] == {"RL001": 1}
        violation = doc["violations"][0]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "RL001"
        assert violation["line"] == 1

    def test_every_rule_has_fixture_coverage(self):
        tested = {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL008", "RL009",
        }
        assert set(RULES) == tested
        assert set(PROJECT_RULES) == {"RL008", "RL010", "RL011"}


# ---------------------------------------------------------------------------
# CLI contract and the meta-test over the repo's own tree


def run_cli(*argv: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


class TestCli:
    def test_repo_tree_is_clean(self):
        """The meta-test: the repo's own code must satisfy its invariants."""
        proc = run_cli("src", "tools", "examples", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violations_exit_1(self, tmp_path):
        (tmp_path / "bad.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "RL001" in proc.stdout

    def test_no_fail_exits_0(self, tmp_path):
        (tmp_path / "bad.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = run_cli(str(tmp_path), "--no-fail")
        assert proc.returncode == 0

    def test_usage_error_exits_2(self):
        proc = run_cli("src", "--disable", "RL999")
        assert proc.returncode == 2

    def test_missing_path_exits_2(self):
        proc = run_cli("no/such/path")
        assert proc.returncode == 2

    def test_json_output(self, tmp_path):
        (tmp_path / "bad.py").write_text("r = Rect(0, 0, 10.5, 20)\n")
        proc = run_cli(str(tmp_path), "--format", "json")
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"RL001": 1}

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL008", "RL009", "RL010", "RL011",
        ):
            assert rule_id in proc.stdout
