"""Unit tests for technology nodes and rule decks."""

import pytest

from repro.tech import (
    AreaRule,
    DensityRule,
    EnclosureRule,
    RuleDeck,
    RuleKind,
    RuleSeverity,
    SpacingRule,
    WidthRule,
    make_node,
    NODE_32,
    NODE_45,
    NODE_65,
)
from repro.layout import Layer

M = Layer(10, 0, "M1")
V = Layer(11, 0, "V1")


class TestRuleDeck:
    def deck(self):
        return RuleDeck(
            "d",
            [
                WidthRule("W1", M, 45),
                SpacingRule("S1", M, 45),
                WidthRule("W2", M, 56, severity=RuleSeverity.RECOMMENDED),
                EnclosureRule("E1", V, M, 11),
            ],
        )

    def test_lookup(self):
        deck = self.deck()
        assert deck.rule("W1").min_width == 45
        with pytest.raises(KeyError):
            deck.rule("NOPE")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RuleDeck("d", [WidthRule("X", M, 1), WidthRule("X", M, 2)])
        deck = self.deck()
        with pytest.raises(ValueError):
            deck.add(WidthRule("W1", M, 50))

    def test_severity_views(self):
        deck = self.deck()
        assert len(deck.minimum()) == 3
        assert len(deck.recommended()) == 1

    def test_layer_view(self):
        deck = self.deck()
        names = {r.name for r in deck.for_layer(V)}
        assert names == {"E1"}
        assert {r.name for r in deck.for_layer(M)} == {"W1", "S1", "W2", "E1"}

    def test_kind_view(self):
        deck = self.deck()
        assert {r.name for r in deck.of_kind(RuleKind.WIDTH)} == {"W1", "W2"}

    def test_rule_kinds(self):
        assert WidthRule("w", M, 1).kind is RuleKind.WIDTH
        assert SpacingRule("s", M, 1).kind is RuleKind.SPACING
        assert EnclosureRule("e", V, M, 1).kind is RuleKind.ENCLOSURE
        assert AreaRule("a", M, 1).kind is RuleKind.AREA
        assert DensityRule("d", M, 100, 0.1, 0.9).kind is RuleKind.DENSITY


class TestNodes:
    def test_predefined(self):
        assert NODE_65.node_nm == 65
        assert NODE_45.node_nm == 45
        assert NODE_32.node_nm == 32

    def test_scaling(self):
        assert NODE_45.metal_pitch < NODE_65.metal_pitch
        assert NODE_32.via_size < NODE_45.via_size
        assert NODE_32.cell_height < NODE_65.cell_height

    def test_range_validation(self):
        with pytest.raises(ValueError):
            make_node(10)
        with pytest.raises(ValueError):
            make_node(500)

    def test_na_transition(self):
        assert NODE_65.litho.na == pytest.approx(0.93)
        assert NODE_45.litho.na == pytest.approx(1.35)

    def test_rule_consistency(self, tech45):
        deck = tech45.rules
        w = deck.rule("M1.W.1")
        w_rec = deck.rule("M1.W.R")
        assert w_rec.min_width > w.min_width
        s = deck.rule("M1.S.1")
        s_rec = deck.rule("M1.S.R")
        assert s_rec.min_space > s.min_space

    def test_layer_stack_navigation(self, tech45):
        L = tech45.layers
        assert L.via_between(L.metal1, L.metal2) == L.via1
        assert L.routing_layers_for(L.via1) == (L.metal1, L.metal2)
        with pytest.raises(KeyError):
            L.via_between(L.metal1, L.metal3)
        with pytest.raises(KeyError):
            L.routing_layers_for(L.metal1)

    def test_litho_settings(self, tech45):
        litho = tech45.litho
        assert litho.psf_sigma_nm == pytest.approx(0.16 * 193 / 1.35, rel=1e-6)
        assert litho.defocus_sigma_nm(-100) == litho.defocus_sigma_nm(100)
        assert litho.resist_threshold == pytest.approx(0.5)

    def test_name_override(self):
        assert make_node(45, name="foundry45lp").name == "foundry45lp"
