"""Unit tests for the design generators."""

import pytest

from repro.designgen import (
    LogicBlockSpec,
    comb_structure,
    dpt_torture,
    generate_logic_block,
    generate_sram_array,
    isolated_line,
    line_end_pairs,
    line_grating,
    make_sram_bitcell,
    serpentine,
    via_chain,
)
from repro.drc import run_drc
from repro.geometry import Rect, Region
from repro.tech import RuleDeck, WidthRule


class TestStdCells:
    def test_library_contents(self, stdlib45):
        assert set(stdlib45.names()) >= {
            "INV_X1", "INV_X2", "BUF_X1", "NAND2_X1", "NOR2_X1", "AOI21_X1", "DFF_X1"
        }

    def test_cell_has_pins(self, stdlib45):
        inv = stdlib45["INV_X1"]
        assert "Z" in inv.pins
        assert "A0" in inv.pins
        assert inv.width_nm > 0

    def test_cell_height_uniform(self, stdlib45, tech45):
        for name in stdlib45.names():
            assert stdlib45[name].cell.bbox.height == tech45.cell_height

    def test_width_scales_with_gates(self, stdlib45):
        assert stdlib45["DFF_X1"].width_nm > stdlib45["INV_X1"].width_nm

    def test_layers_present(self, stdlib45, tech45):
        L = tech45.layers
        inv = stdlib45["INV_X1"].cell
        for layer in (L.active, L.poly, L.contact, L.metal1, L.nwell):
            assert not inv.region(layer).is_empty

    def test_poly_gates_cross_active(self, stdlib45, tech45):
        L = tech45.layers
        nand = stdlib45["NAND2_X1"].cell
        gates = nand.region(L.poly) & nand.region(L.active)
        assert len(gates.components()) == 4  # 2 gates x 2 diffusions

    def test_metal1_width_legal(self, stdlib45, tech45):
        L = tech45.layers
        deck = RuleDeck("m1w", [WidthRule("W", L.metal1, tech45.metal_width)])
        for name in stdlib45.names():
            report = run_drc(stdlib45[name].cell, deck)
            assert report.ok, f"{name}: {report.summary()}"


class TestLogicBlock:
    def test_deterministic(self, tech45, stdlib45):
        spec = LogicBlockSpec(rows=2, row_width_nm=4000, net_count=5, seed=3)
        a = generate_logic_block(tech45, spec, stdlib45)
        b = generate_logic_block(tech45, spec, stdlib45)
        L = tech45.layers
        for layer in (L.metal1, L.metal2, L.metal3, L.via1, L.via2):
            assert a.top.region(layer) == b.top.region(layer)

    def test_seed_changes_layout(self, tech45, stdlib45):
        a = generate_logic_block(tech45, LogicBlockSpec(rows=2, row_width_nm=4000, seed=1), stdlib45)
        b = generate_logic_block(tech45, LogicBlockSpec(rows=2, row_width_nm=4000, seed=2), stdlib45)
        assert a.top.region(tech45.layers.metal1) != b.top.region(tech45.layers.metal1)

    def test_cells_placed_in_rows(self, small_block, tech45):
        assert small_block.cell_count > 0
        bb = small_block.top.bbox
        assert bb.height >= 2 * tech45.cell_height

    def test_nets_routed_with_vias(self, small_block, tech45):
        L = tech45.layers
        n_nets = small_block.net_count
        assert n_nets > 0
        vias1 = len(list(small_block.top.region(L.via1).rects()))
        vias2 = len(list(small_block.top.region(L.via2).rects()))
        assert vias1 == 2 * n_nets
        assert vias2 == 2 * n_nets

    def test_via_enclosed_by_metal(self, small_block, tech45):
        L = tech45.layers
        enc = tech45.via_enclosure
        m2 = small_block.top.region(L.metal2)
        # two-sided enclosure: every routing via1 is fully covered by M2
        # and enclosed by ``enc`` along at least one axis
        for via in small_block.top.region(L.via1).rects():
            assert m2.covers(Region(via)), via
            x_ok = m2.covers(Region(via.expanded(enc, 0)))
            y_ok = m2.covers(Region(via.expanded(0, enc)))
            assert x_ok or y_ok, via

    def test_block_is_drc_clean(self, small_block, tech45):
        """The generator's headline property: minimum-rule clean by
        construction (weak spots are *at* the rules, not beyond them)."""
        report = run_drc(small_block.top, tech45.rules.minimum())
        assert report.ok, report.summary()

    def test_weak_spots_present(self, small_block, tech45):
        # weak spots are tip pairs above the rows
        L = tech45.layers
        strip = Rect(0, 2 * tech45.cell_height, 10**6, 10**7)
        weak = small_block.top.region(L.metal1) & Region(strip)
        assert not weak.is_empty

    def test_library_closed(self, small_block):
        names = set(small_block.layout.cells)
        for cell in small_block.layout:
            for ref in cell.references:
                assert ref.cell.name in names


class TestArrays:
    def test_bitcell(self, tech45):
        bit = make_sram_bitcell(tech45)
        L = tech45.layers
        assert not bit.region(L.poly).is_empty
        assert bit.bbox.width == 10 * tech45.node_nm

    def test_array_replication(self, tech45):
        sram = generate_sram_array(tech45, rows=4, cols=6)
        top = sram.top_cell()
        bit = sram.cell("SRAM_BIT")
        per_cell = bit.shape_count()
        assert top.shape_count(recursive=True) == 4 * 6 * per_cell + 6  # + bitlines

    def test_array_region_tiles(self, tech45):
        sram = generate_sram_array(tech45, rows=2, cols=2)
        top = sram.top_cell()
        bit = sram.cell("SRAM_BIT")
        L = tech45.layers
        assert top.region(L.poly).area == 4 * bit.region(L.poly).area


class TestStructures:
    def test_grating(self):
        g = line_grating(45, 90, 10, 1000)
        assert g.area == 10 * 45 * 1000
        assert len(g.components()) == 10
        with pytest.raises(ValueError):
            line_grating(90, 45, 2, 100)

    def test_isolated(self):
        assert isolated_line(45, 1000).area == 45000

    def test_comb_two_nets(self):
        comb = comb_structure(45, 45, 8, 900)
        assert len(comb.components()) == 2

    def test_comb_interdigitated(self):
        comb = comb_structure(50, 50, 6, 500)
        parts = comb.components()
        # both combs span the overlap zone: their bboxes overlap vertically
        assert parts[0].bbox.overlaps(parts[1].bbox)

    def test_serpentine_single_net(self):
        serp = serpentine(45, 45, 9, 900)
        assert len(serp.components()) == 1

    def test_via_chain(self, tech45):
        chain = via_chain(tech45, 12)
        L = tech45.layers
        assert len(list(chain.region(L.via1).rects())) == 12
        # alternating layers both populated
        assert not chain.region(L.metal1).is_empty
        assert not chain.region(L.metal2).is_empty

    def test_dpt_torture(self):
        region = dpt_torture(90, 45, 6)
        assert len(region.components()) > 10

    def test_line_end_pairs(self):
        region = line_end_pairs(45, 60, 4, 400, 200)
        assert len(region.components()) == 8
