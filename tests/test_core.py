"""Unit tests for the hit-or-hype core: context, metrics, techniques,
scorecard, harness."""

import pytest

from repro.core import (
    DesignContext,
    DummyFillTechnique,
    ModelOpcTechnique,
    PatternCheckTechnique,
    RecommendedRulesTechnique,
    RedundantViaTechnique,
    RuleOpcTechnique,
    Verdict,
    WireSpreadTechnique,
    default_techniques,
    evaluate_techniques,
    measure_design,
)
from repro.core.metrics import count_via_sites
from repro.core.scorecard import Scorecard, ScorecardRow
from repro.core.techniques import _extend_line_ends
from repro.geometry import Rect, Region
from repro.layout import Cell


@pytest.fixture(scope="module")
def block_ctx(small_block, tech45):
    return DesignContext.from_cell(small_block.top, tech45)


class TestContext:
    def test_from_cell_flattens(self, block_ctx):
        assert block_ctx.cell.references == ()

    def test_copy_independent(self, block_ctx, tech45):
        dup = block_ctx.copy()
        dup.cell.add_rect(tech45.layers.metal3, Rect(0, 0, 100, 100))
        dup.invalidate()
        assert dup.cell.shape_count() == block_ctx.cell.shape_count() + 1

    def test_region_cached(self, block_ctx, tech45):
        a = block_ctx.region(tech45.layers.metal1)
        b = block_ctx.region(tech45.layers.metal1)
        assert a is b

    def test_replace_layer(self, tech45):
        cell = Cell("X")
        cell.add_rect(tech45.layers.metal1, Rect(0, 0, 100, 45))
        ctx = DesignContext.from_cell(cell, tech45)
        new = Region(Rect(0, 0, 200, 45))
        ctx.replace_layer(tech45.layers.metal1, new)
        assert ctx.region(tech45.layers.metal1) == new

    def test_mask_override(self, tech45):
        cell = Cell("X")
        cell.add_rect(tech45.layers.metal1, Rect(0, 0, 100, 45))
        ctx = DesignContext.from_cell(cell, tech45)
        layer = tech45.layers.metal1
        assert ctx.mask_for(layer) == ctx.region(layer)
        mask = ctx.region(layer).grown(5)
        ctx.set_mask(layer, mask)
        assert ctx.mask_for(layer) == mask
        # drawn region untouched
        assert ctx.region(layer).area == 100 * 45
        # copies carry the mask
        assert ctx.copy().mask_for(layer) == mask


class TestMetrics:
    def test_count_via_sites(self):
        # two isolated cuts + one redundant pair
        vias = Region([
            Rect(0, 0, 45, 45),
            Rect(1000, 0, 1045, 45),
            Rect(2000, 0, 2045, 45),
            Rect(2099, 0, 2144, 45),  # 54 away: same site at pitch 99
        ])
        sites, redundant = count_via_sites(vias, pitch=99)
        assert sites == 3
        assert redundant == 1

    def test_measure_block(self, block_ctx):
        metrics = measure_design(block_ctx, d0_per_cm2=1.0)
        assert metrics.area_nm2 > 0
        assert metrics.lambda_defects > 0
        assert metrics.via_sites > 0
        assert 0 <= metrics.yield_proxy <= 1
        assert metrics.total_lambda == pytest.approx(
            metrics.lambda_defects + metrics.lambda_vias
            + metrics.lambda_hotspots + metrics.lambda_cmp
        )

    def test_die_extrapolation_monotone(self, block_ctx):
        small = measure_design(block_ctx, d0_per_cm2=1.0, die_area_cm2=0.1)
        large = measure_design(block_ctx, d0_per_cm2=1.0, die_area_cm2=0.5)
        assert large.total_lambda > small.total_lambda
        assert large.yield_proxy < small.yield_proxy

    def test_raw_lambdas(self, block_ctx):
        raw = measure_design(block_ctx, d0_per_cm2=1.0, die_area_cm2=None)
        scaled = measure_design(block_ctx, d0_per_cm2=1.0, die_area_cm2=0.25)
        assert raw.lambda_defects < scaled.lambda_defects

    def test_summary(self, block_ctx):
        assert "yield proxy" in measure_design(block_ctx).summary()


class TestTipExtension:
    def test_extends_clear_tip(self):
        line = Region(Rect(0, 0, 45, 500))
        mask, fixed = _extend_line_ends(line, 70, ext=8, safe=27)
        assert fixed == 2
        assert mask.bbox == Rect(0, -8, 45, 508)

    def test_skips_blocked_tip(self):
        pair = Region([Rect(0, 0, 45, 500), Rect(0, 520, 45, 1000)])  # gap 20
        mask, fixed = _extend_line_ends(pair, 70, ext=8, safe=27)
        # inner tips blocked (20 < 8+27), outer tips extended
        assert fixed == 2
        inner = Region(Rect(0, 500, 45, 520))
        assert (mask & inner).is_empty

    def test_long_edges_ignored(self):
        plate = Region(Rect(0, 0, 500, 500))
        mask, fixed = _extend_line_ends(plate, 70, ext=8, safe=27)
        assert fixed == 0
        assert mask == plate


class TestTechniques:
    def test_apply_preserves_baseline(self, block_ctx, tech45):
        before = block_ctx.cell.shape_count()
        outcome = RedundantViaTechnique().apply(block_ctx)
        assert block_ctx.cell.shape_count() == before  # original untouched
        assert outcome.ctx is not block_ctx
        assert outcome.runtime_s >= 0

    def test_redundant_via_coverage(self, block_ctx):
        outcome = RedundantViaTechnique().apply(block_ctx)
        assert outcome.notes["coverage"] > 0.5
        after = measure_design(outcome.ctx, d0_per_cm2=1.0)
        base = measure_design(block_ctx, d0_per_cm2=1.0)
        assert after.redundant_via_sites > base.redundant_via_sites
        assert after.lambda_vias < base.lambda_vias

    def test_pattern_check_sets_mask(self, block_ctx, tech45):
        outcome = PatternCheckTechnique().apply(block_ctx)
        layer = tech45.layers.metal1
        assert layer in outcome.ctx.mask_overrides
        assert outcome.notes["tips_retargeted"] > 0
        # drawn layer untouched
        assert outcome.ctx.region(layer) == block_ctx.region(layer)

    def test_opc_reduces_hotspots(self, block_ctx):
        base = measure_design(block_ctx, d0_per_cm2=1.0)
        outcome = RuleOpcTechnique().apply(block_ctx)
        after = measure_design(outcome.ctx, d0_per_cm2=1.0)
        assert after.hotspot_count < base.hotspot_count
        assert outcome.mask_vertex_factor > 1.0

    def test_model_opc_runs(self, block_ctx):
        outcome = ModelOpcTechnique().apply(block_ctx)
        assert "final_rms_epe" in outcome.notes
        assert outcome.notes["final_rms_epe"] < 60

    def test_recommended_rules_cost_area(self, block_ctx):
        outcome = RecommendedRulesTechnique().apply(block_ctx)
        assert outcome.area_delta_nm2 >= 0

    def test_dummy_fill_reduces_range(self, block_ctx):
        outcome = DummyFillTechnique().apply(block_ctx)
        assert outcome.shapes_added > 0
        assert outcome.notes["density_range_after"] < outcome.notes["density_range_before"]

    def test_wire_spread_runs(self, block_ctx):
        outcome = WireSpreadTechnique().apply(block_ctx)
        assert any(k.startswith("moved:") for k in outcome.notes)

    def test_default_set(self):
        names = [t.name for t in default_techniques()]
        assert len(names) == len(set(names)) == 7


class TestScorecard:
    def make_row(self, **overrides):
        values = dict(
            technique="x",
            category="y",
            yield_before=0.5,
            yield_after=0.6,
            hotspots_before=10,
            hotspots_after=4,
            area_percent=0.1,
            mask_vertex_factor=1.0,
            runtime_s=1.0,
        )
        values.update(overrides)
        return ScorecardRow(**values)

    def test_benefit_and_cost(self):
        row = self.make_row()
        assert row.yield_delta_points == pytest.approx(10.0)
        assert row.hotspot_delta == 6
        assert row.benefit > 10
        assert row.cost > 0

    def test_verdict_hit(self):
        assert self.make_row().verdict is Verdict.HIT

    def test_verdict_hype_no_benefit(self):
        row = self.make_row(yield_after=0.5, hotspots_after=10)
        assert row.verdict is Verdict.HYPE

    def test_verdict_hype_costly(self):
        row = self.make_row(yield_after=0.502, hotspots_after=10, area_percent=5.0)
        assert row.verdict is Verdict.HYPE

    def test_verdict_mixed(self):
        row = self.make_row(
            yield_after=0.52, hotspots_after=10, area_percent=0.6, runtime_s=5.0
        )
        assert row.verdict is Verdict.MIXED

    def test_negative_yield_clamped(self):
        row = self.make_row(yield_after=0.4, hotspots_after=10)
        assert row.benefit == 0.0

    def test_render(self, block_ctx):
        base = measure_design(block_ctx)
        card = Scorecard("D", "node", base)
        card.add(self.make_row())
        text = card.render()
        assert "verdict" in text and "HIT" in text
        assert card.row("x").technique == "x"
        with pytest.raises(KeyError):
            card.row("missing")


class TestHarness:
    def test_full_evaluation(self, small_block, tech45):
        card = evaluate_techniques(
            small_block.top,
            tech45,
            techniques=[RedundantViaTechnique(), RuleOpcTechnique()],
            d0_per_cm2=1.0,
        )
        assert len(card.rows) == 2
        verdicts = {row.technique: row.verdict for row in card.rows}
        assert verdicts["rule-opc"] is Verdict.HIT
        assert card.baseline.yield_proxy < 1.0
