"""Unit tests for OPC: fragmentation, rule-based, model-based, SRAF, ORC."""

import pytest

from repro.geometry import Point, Rect, Region
from repro.litho import Cutline
from repro.litho.cd import line_end_pullback
from repro.opc import (
    ModelOpcSettings,
    RuleOpcSettings,
    SrafSettings,
    apply_model_opc,
    apply_rule_opc,
    edge_placement_errors,
    fragment_region,
    insert_srafs,
    reconstruct_mask,
    verify_opc,
)


class TestFragments:
    def test_zero_offsets_identity(self):
        region = Region([Rect(0, 0, 45, 600), Rect(200, 0, 400, 45)])
        frags = fragment_region(region)
        assert reconstruct_mask(region, frags) == region

    def test_fragment_lengths_bounded(self):
        region = Region(Rect(0, 0, 1000, 45))
        frags = fragment_region(region, max_len=100, corner_len=30)
        assert all(f.length <= 100 for f in frags)

    def test_corner_fragments_present(self):
        region = Region(Rect(0, 0, 1000, 45))
        frags = fragment_region(region, max_len=100, corner_len=30)
        lengths = sorted({f.length for f in frags})
        assert 30 in lengths

    def test_fragments_cover_perimeter(self):
        region = Region([Rect(0, 0, 300, 45), Rect(100, 45, 145, 300)])
        frags = fragment_region(region)
        assert sum(f.length for f in frags) == region.perimeter()

    def test_outward_extrusion_adds(self):
        region = Region(Rect(0, 0, 100, 100))
        frags = fragment_region(region, max_len=200)
        moved = [f.moved(5) for f in frags]
        mask = reconstruct_mask(region, moved)
        assert mask.covers(region)
        assert mask.area > region.area

    def test_inward_extrusion_removes(self):
        region = Region(Rect(0, 0, 100, 100))
        frags = fragment_region(region, max_len=200)
        moved = [f.moved(-5) for f in frags]
        mask = reconstruct_mask(region, moved)
        assert region.covers(mask)
        assert mask.area < region.area

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            fragment_region(Region(), max_len=0)


class TestRuleOpc:
    def test_hammerheads_on_line_ends(self):
        line = Region(Rect(0, 0, 45, 800))
        mask = apply_rule_opc(line)
        bb = mask.bbox
        assert bb.y0 < 0 and bb.y1 > 800  # extended beyond both ends

    def test_negative_iso_bias_shaves(self):
        line = Region(Rect(0, 0, 45, 2000))
        mask = apply_rule_opc(line, RuleOpcSettings(iso_bias=-3, hammer_ext=0, hammer_overhang=0, line_end_max_width=10))
        # long edges shaved by 3 on each side
        cut = Region(Rect(-10, 1000, 60, 1001))
        assert (mask & cut).bbox.width == 45 - 6

    def test_dense_edges_untouched(self):
        dense = Region([Rect(x, 0, x + 45, 2000) for x in range(0, 450, 90)])
        mask = apply_rule_opc(dense, RuleOpcSettings(dense_bias=0, iso_distance=200))
        mid = Region(Rect(90, 900, 225, 1100))
        assert (mask & mid) == (dense & mid)

    def test_improves_cd(self, litho45):
        line = Region(Rect(0, 0, 45, 2000))
        cut = Cutline(Point(22, 1000))
        cd_raw = litho45.measure_cd(line, cut)
        cd_opc = litho45.measure_cd(apply_rule_opc(line), cut)
        assert abs(cd_opc - 45) < abs(cd_raw - 45)


class TestModelOpc:
    def test_convergence(self, litho45):
        line = Region(Rect(0, 0, 45, 800))
        window = Rect(-150, -150, 195, 950)
        result = apply_model_opc(line, litho45, window)
        assert result.epe_history[-1] < result.epe_history[0]
        assert result.final_rms_epe < 2.0

    def test_fixes_pullback(self, litho45):
        line = Region(Rect(0, 0, 45, 800))
        window = Rect(-150, -150, 195, 950)
        result = apply_model_opc(line, litho45, window)
        cut = Cutline(Point(22, 400), horizontal=False)
        pb_raw = line_end_pullback(litho45.print_contour(line, window), line, cut)
        pb_opc = line_end_pullback(litho45.print_contour(result.mask, window), line, cut)
        assert pb_opc < pb_raw

    def test_pw_aware_at_corners(self, litho45):
        line = Region(Rect(0, 0, 45, 800))
        window = Rect(-150, -150, 195, 950)
        result = apply_model_opc(
            line, litho45, window, ModelOpcSettings(pw_aware=True, iterations=8)
        )
        report = verify_opc(litho45, result.mask, line, window)
        assert report.hotspots == []

    def test_active_window_freezes_border(self, litho45):
        region = Region(Rect(0, 0, 45, 2000))
        window = Rect(-200, 500, 245, 1500)
        active = Rect(-100, 800, 145, 1200)
        result = apply_model_opc(
            region, litho45, window, ModelOpcSettings(iterations=3), active_window=active
        )
        # geometry far outside the active window is unchanged
        far = Region(Rect(-50, 0, 100, 300))
        assert (result.mask & far) == (region & far)

    def test_empty_region(self, litho45):
        result = apply_model_opc(Region(), litho45)
        assert result.mask.is_empty
        assert result.fragments == []

    def test_edge_placement_errors_signs(self, litho45):
        # a fat mask prints outside the drawn target: positive EPE
        drawn = Region(Rect(0, 0, 100, 2000))
        fat = drawn.grown(10)
        window = Rect(-200, 800, 300, 1200)
        frags = [f for f in fragment_region(drawn) if window.contains_point(f.midpoint)]
        epes = edge_placement_errors(litho45, fat, drawn, window, frags)
        assert sum(epes) / len(epes) > 3


class TestSraf:
    def test_bars_on_isolated_line(self):
        line = Region(Rect(0, 0, 45, 2000))
        bars = insert_srafs(line)
        assert len(bars.components()) == 2  # one each side

    def test_no_bars_when_crowded(self):
        dense = Region([Rect(x, 0, x + 45, 2000) for x in range(0, 270, 90)])
        settings = SrafSettings()
        bars = insert_srafs(dense, settings)
        # interior edges have neighbours within the required space
        for bar in bars.components():
            assert bar.bbox.x0 < 0 or bar.bbox.x1 > 225

    def test_short_edges_skipped(self):
        square = Region(Rect(0, 0, 50, 50))
        assert insert_srafs(square, SrafSettings(min_edge_length=100)).is_empty

    def test_bars_do_not_print(self, litho45):
        line = Region(Rect(0, 0, 45, 2000))
        bars = insert_srafs(line)
        window = Rect(-300, 800, 350, 1200)
        printed = litho45.print_contour(line | bars, window, dose=1.05)
        stray = printed - line.grown(10)
        assert stray.is_empty


class TestOrc:
    def test_pass_and_fail(self, litho45):
        line = Region(Rect(0, 0, 45, 800))
        window = Rect(-150, -150, 195, 950)
        raw = verify_opc(litho45, line, line, window)
        assert not raw.ok  # un-OPC'd line fails at the ends
        result = apply_model_opc(line, litho45, window, ModelOpcSettings(pw_aware=True, iterations=8))
        good = verify_opc(litho45, result.mask, line, window)
        assert good.ok
        assert good.rms_epe_nm < raw.rms_epe_nm

    def test_sraf_printing_detected(self, litho45):
        line = Region(Rect(0, 0, 45, 800))
        window = Rect(-300, -150, 345, 950)
        fat_bar = Region(Rect(120, 100, 180, 700))  # 60 nm "SRAF" prints
        report = verify_opc(litho45, line, line, window, srafs=fat_bar)
        assert report.printing_srafs == 1

    def test_summary_text(self, litho45):
        line = Region(Rect(0, 0, 45, 800))
        window = Rect(-150, -150, 195, 950)
        report = verify_opc(litho45, line, line, window)
        assert "ORC" in report.summary()
