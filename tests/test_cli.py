"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def block_gds(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "block.gds"
    rc = main([
        "generate", "--node", "45", "--rows", "2", "--width", "4000",
        "--nets", "4", "--seed", "3", "--out", str(path),
    ])
    assert rc == 0
    return path


class TestGenerateInfo:
    def test_generate_creates_file(self, block_gds):
        assert block_gds.exists()
        assert block_gds.stat().st_size > 1000

    def test_info(self, block_gds, capsys):
        rc = main(["info", str(block_gds)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "LOGIC" in out
        assert "top cells" in out


class TestDrc:
    def test_clean_block_exits_zero(self, block_gds, capsys):
        rc = main(["drc", str(block_gds), "--node", "45"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 violations" in out

    def test_violating_layout_exits_nonzero(self, tmp_path, capsys):
        from repro.gdsii import write_gds
        from repro.geometry import Rect
        from repro.layout import Layer, Layout

        lib = Layout("BAD")
        cell = lib.new_cell("TOP")
        cell.add_rect(Layer(10, 0, "M1"), Rect(0, 0, 1000, 20))  # too narrow
        path = tmp_path / "bad.gds"
        write_gds(lib, path)
        rc = main(["drc", str(path), "--node", "45"])
        assert rc == 1
        assert "M1.W.1" in capsys.readouterr().out


class TestDpt:
    def test_decompose_and_write_masks(self, block_gds, tmp_path, capsys):
        out_path = tmp_path / "masks.gds"
        rc = main([
            "dpt", str(block_gds), "--node", "45", "--layer", "M3",
            "--space", "100", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "DPT" in out
        assert out_path.exists()

    def test_unknown_layer(self, block_gds):
        with pytest.raises(SystemExit):
            main(["dpt", str(block_gds), "--layer", "NOPE", "--space", "100"])


class TestScan:
    def test_scan_reports(self, block_gds, capsys):
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "6000"])
        out = capsys.readouterr().out
        assert "full-chip scan" in out
        assert rc in (0, 1)

    def test_scan_parallel_matches_serial(self, block_gds, capsys):
        rc1 = main(["scan", str(block_gds), "--node", "45", "--tile", "3000"])
        serial = capsys.readouterr().out
        rc2 = main(["scan", str(block_gds), "--node", "45", "--tile", "3000",
                    "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert rc1 == rc2
        assert serial.splitlines()[0] == parallel.splitlines()[0]

    def test_scan_incremental_second_run_all_cached(self, block_gds, tmp_path, capsys):
        cache = tmp_path / "scan.pkl"
        args = ["scan", str(block_gds), "--node", "45", "--tile", "3000",
                "--incremental", "--cache-file", str(cache)]
        main(args)
        first = capsys.readouterr().out
        assert cache.exists()
        main(args)
        second = capsys.readouterr().out
        assert "100% hit rate" in second
        assert (
            first.splitlines()[0].split("[")[0].strip()
            == second.splitlines()[0].split("[")[0].strip()
        )


class TestDrcParallel:
    def test_drc_parallel_clean(self, block_gds, capsys):
        rc = main(["drc", str(block_gds), "--node", "45", "--jobs", "2",
                   "--tile", "3000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 violations" in out
        assert "tiles:" in out

    def test_drc_incremental_second_run_all_cached(self, block_gds, tmp_path, capsys):
        cache = tmp_path / "drc.pkl"
        args = ["drc", str(block_gds), "--node", "45", "--tile", "3000",
                "--incremental", "--cache-file", str(cache)]
        rc = main(args)
        capsys.readouterr()
        assert rc == 0
        rc = main(args)
        out = capsys.readouterr().out
        assert "100% hit rate" in out


class TestScanLimit:
    def test_limit_zero_suppresses_listing_and_tail(self, block_gds, capsys):
        main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
              "--limit", "0"])
        out = capsys.readouterr().out
        assert "full-chip scan" in out
        assert "more" not in out
        # nothing but the summary/diagnostic lines: no indented hotspot rows
        assert not any(line.startswith("  ") for line in out.splitlines())

    def test_positive_limit_still_prints_tail(self, block_gds, capsys):
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
                   "--limit", "1"])
        out = capsys.readouterr().out
        if rc == 1:  # hotspots found on this block
            assert "... and" in out or out.count("\n  ") <= 1


class TestExitCodeContract:
    @pytest.fixture(scope="class")
    def bad_gds(self, tmp_path_factory):
        from repro.gdsii import write_gds
        from repro.geometry import Rect
        from repro.layout import Layer, Layout

        lib = Layout("BAD")
        cell = lib.new_cell("TOP")
        cell.add_rect(Layer(10, 0, "M1"), Rect(0, 0, 1000, 20))
        path = tmp_path_factory.mktemp("cli-rc") / "bad.gds"
        write_gds(lib, path)
        return path

    def test_drc_findings_fail_by_default(self, bad_gds, capsys):
        assert main(["drc", str(bad_gds), "--node", "45"]) == 1
        capsys.readouterr()

    def test_drc_no_fail_opts_out(self, bad_gds, capsys):
        assert main(["drc", str(bad_gds), "--node", "45", "--no-fail"]) == 0
        out = capsys.readouterr().out
        assert "M1.W.1" in out  # findings still reported, just not fatal

    def test_scan_no_fail_opts_out(self, block_gds, capsys):
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
                   "--limit", "0", "--no-fail"])
        capsys.readouterr()
        assert rc == 0


class TestFaultTolerance:
    def test_quarantine_exits_one_even_with_no_fail(self, block_gds, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:0:fail")
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "2000",
                   "--limit", "0", "--no-fail"])
        captured = capsys.readouterr()
        assert rc == 1  # quarantine = incomplete run, --no-fail does not excuse it
        assert "QUARANTINED" in captured.out
        assert "QUARANTINED tile 0" in captured.err

    def test_transient_fault_recovers_to_clean_exit(self, block_gds, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:0:fail:1")
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
                   "--limit", "0", "--no-fail"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "QUARANTINED" not in captured.out

    def test_abort_exits_three_and_resume_completes(
        self, block_gds, tmp_path, capsys, monkeypatch
    ):
        ckpt = tmp_path / "scan.ckpt"
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:1:abort")
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "2000",
                   "--limit", "0", "--checkpoint-file", str(ckpt)])
        captured = capsys.readouterr()
        assert rc == 3
        assert "rerun with --resume" in captured.err
        assert ckpt.exists()

        monkeypatch.delenv("REPRO_FAULT_SPEC")
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "2000",
                   "--limit", "0", "--no-fail", "--checkpoint-file", str(ckpt),
                   "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed" in out
        assert not ckpt.exists()  # completed run clears its checkpoint

    def test_resume_uses_default_checkpoint_path(self, block_gds, capsys,
                                                 monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        rc = main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
                   "--limit", "0", "--no-fail", "--resume"])
        capsys.readouterr()
        assert rc == 0  # nothing to resume: behaves as a fresh run

    def test_drc_quarantine_exits_one(self, block_gds, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:0:fail")
        rc = main(["drc", str(block_gds), "--node", "45", "--jobs", "2",
                   "--max-retries", "1", "--no-fail"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "QUARANTINED" in captured.out

    def test_manifest_records_quarantine_counters(self, block_gds, tmp_path,
                                                  capsys, monkeypatch):
        from repro.obs import RunManifest

        target = tmp_path / "m.json"
        monkeypatch.setenv("REPRO_FAULT_SPEC", "tile:0:fail,tile:1:fail:1")
        main(["scan", str(block_gds), "--node", "45", "--tile", "2000",
              "--limit", "0", "--metrics-out", str(target)])
        capsys.readouterr()
        manifest = RunManifest.load(target)
        assert manifest.counters["scan.tiles_quarantined"] == 1
        assert manifest.counters["pool.retries"] >= 1
        assert manifest.counters["pool.quarantined"] == 1


class TestObservabilityFlags:
    def test_metrics_out_writes_manifest(self, block_gds, tmp_path, capsys):
        from repro.obs import RunManifest

        target = tmp_path / "deep" / "m.json"
        main(["scan", str(block_gds), "--node", "45", "--tile", "3000",
              "--limit", "0", "--no-fail", "--metrics-out", str(target)])
        capsys.readouterr()
        manifest = RunManifest.load(target)
        assert manifest.command == "scan"
        assert manifest.counters["scan.tiles"] >= 1
        assert "scan.compute" in manifest.stages

    def test_scorecard_manifest_has_five_plus_stages(self, tmp_path, capsys):
        from repro.obs import RunManifest

        target = tmp_path / "card.json"
        rc = main(["scorecard", "--node", "45", "--rows", "2", "--width", "4000",
                   "--nets", "4", "--seed", "3", "--weak-spots", "4",
                   "--metrics-out", str(target)])
        capsys.readouterr()
        assert rc == 0
        manifest = RunManifest.load(target)
        assert len(manifest.stages) >= 5
        assert manifest.seed == 3
        for stage in ("scorecard", "scorecard.baseline", "measure.hotspots"):
            assert stage in manifest.stages

    def test_metrics_counters_match_across_jobs(self, block_gds, tmp_path, capsys):
        from repro.obs import RunManifest

        manifests = []
        for jobs in (1, 4):
            target = tmp_path / f"scan-j{jobs}.json"
            main(["scan", str(block_gds), "--node", "45", "--tile", "2000",
                  "--limit", "0", "--no-fail", "--jobs", str(jobs),
                  "--metrics-out", str(target)])
            capsys.readouterr()
            manifests.append(RunManifest.load(target))
        assert manifests[0].counters == manifests[1].counters
        assert manifests[1].workers == 4

    def test_trace_prints_tree(self, block_gds, capsys):
        main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
              "--limit", "0", "--no-fail", "--trace"])
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "scan.compute" in out

    def test_obs_state_restored_after_run(self, block_gds, tmp_path, capsys):
        from repro.obs import get_registry, get_tracer

        main(["scan", str(block_gds), "--node", "45", "--tile", "6000",
              "--limit", "0", "--no-fail",
              "--metrics-out", str(tmp_path / "m.json"), "--trace"])
        capsys.readouterr()
        assert get_registry().enabled is False
        assert get_tracer().enabled is False


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("generate", "info", "drc", "scan", "dpt", "scorecard"):
            assert command in out
