"""Out-of-core layout store: streaming ingest, mmapped windows, parity.

The tentpole contract: a scan or DRC fed rects from the mmapped
``layoutstore-v1`` file produces bit-identical reports and
interchangeable tile-cache entries vs. the in-RAM flatten, at
``jobs=1`` and ``jobs=4``; worker payloads shrink to ``(path, offset,
count)`` handles; and service sessions backed by a store directory
survive restarts without re-parsing the GDSII.
"""

from __future__ import annotations

import hashlib
import os
import pickle

import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.gdsii import write_gds
from repro.geometry import Rect, Region
from repro.layout.store import (
    LayoutStoreError,
    LayoutStoreVersionError,
    StoreRects,
    ensure_store,
    ingest,
    open_store,
)
from repro.litho import LithoModel, scan_full_chip
from repro.obs import MetricsRegistry, names, sample_peak_rss, set_registry
from repro.parallel import TileCache
from repro.parallel import shm as shm_mod


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture(scope="module")
def store_setup(tmp_path_factory, tech45, stdlib45):
    """A routed block on disk as GDSII plus its ingested store."""
    spec = LogicBlockSpec(rows=1, row_width_nm=5000, net_count=5, seed=11, weak_spots=4)
    block = generate_logic_block(tech45, spec, stdlib45)
    d = tmp_path_factory.mktemp("store")
    gds = str(d / "block.gds")
    write_gds(block.layout, gds)
    view = ensure_store(gds, str(d / "block.lstore"))
    return block, gds, view


class TestStoreRoundTrip:
    def test_layers_match_in_ram_flatten(self, store_setup, tech45):
        block, _, view = store_setup
        for layer in (tech45.layers.metal1, tech45.layers.poly):
            ram = block.top.region(layer)
            stored = view.layer_for(layer)
            assert stored.rects() == list(ram.rects())
            assert stored.region() == ram
            assert stored.digest() == ram.digest()
            assert stored.bbox == ram.bbox

    def test_extent_is_top_cell_bbox(self, store_setup):
        block, _, view = store_setup
        assert view.extent == block.top.bbox

    def test_absent_layer_digest_matches_empty_region(self, store_setup):
        _, _, view = store_setup
        missing = view.layer(240, 0)
        assert missing.is_empty
        assert missing.digest() == Region().digest()
        assert missing.region() == Region()

    def test_window_matches_brute_force(self, store_setup, tech45):
        block, _, view = store_setup
        layer = tech45.layers.metal1
        rects = list(block.top.region(layer).rects())
        stored = view.layer_for(layer)
        bbox = view.extent
        windows = [
            Rect(bbox.x0, bbox.y0, (bbox.x0 + bbox.x1) // 2, (bbox.y0 + bbox.y1) // 2),
            Rect(bbox.x1 // 3, bbox.y0, bbox.x1 // 2, bbox.y1),
            Rect(bbox.x1 + 10, bbox.y1 + 10, bbox.x1 + 500, bbox.y1 + 500),
            bbox,
        ]
        for window in windows:
            expect = [r for r in rects if r.touches(window)]
            assert stored.window(window) == expect

    def test_handle_pickles_as_three_scalars(self, store_setup, tech45):
        _, _, view = store_setup
        handle = view.layer_for(tech45.layers.metal1).handle()
        wire = pickle.dumps(handle)
        assert len(wire) < 200  # path + two ints, not geometry
        clone = pickle.loads(wire)
        assert isinstance(clone, StoreRects)
        assert clone.rects() == handle.rects()
        assert clone.digest() == handle.digest()


class TestStoreFile:
    def test_reuse_without_reingest(self, store_setup, registry, tmp_path):
        _, gds, _ = store_setup
        path = str(tmp_path / "reuse.lstore")
        ingest(gds, path)
        registry.reset()
        ensure_store(gds, path)
        assert registry.counter(names.LAYOUTSTORE_REUSED) == 1

    def test_stale_source_triggers_reingest(self, store_setup, registry, tmp_path):
        _, gds, _ = store_setup
        src = str(tmp_path / "copy.gds")
        with open(gds, "rb") as f:
            data = f.read()
        with open(src, "wb") as f:
            f.write(data)
        path = str(tmp_path / "stale.lstore")
        ensure_store(src, path)
        os.utime(src, ns=(1, 1))  # same bytes, different stat signature
        registry.reset()
        ensure_store(src, path)
        assert registry.counter(names.LAYOUTSTORE_INGESTS) == 1

    def test_version_sentinel_round_trip(self, store_setup, registry, tmp_path):
        """A future-versioned store is a typed version error, and
        ensure_store counts the mismatch and rebuilds in place."""
        _, gds, _ = store_setup
        path = str(tmp_path / "ver.lstore")
        before = ingest(gds, path)
        digests = {k: before.layer(*k).digest() for k in before.layer_keys}
        with open(path, "r+b") as f:
            f.write(b"layoutstore-v9\n\x00")
        with pytest.raises(LayoutStoreVersionError):
            open_store(path, refresh=True)
        registry.reset()
        after = ensure_store(gds, path)
        assert registry.counter(names.LAYOUTSTORE_VERSION_MISMATCH) == 1
        assert {k: after.layer(*k).digest() for k in after.layer_keys} == digests

    def test_not_a_store_is_an_error(self, tmp_path):
        path = str(tmp_path / "noise.lstore")
        with open(path, "wb") as f:
            f.write(b"\x00" * 256)
        with pytest.raises(LayoutStoreError):
            open_store(path, refresh=True)

    def test_truncated_store_is_an_error(self, store_setup, tmp_path):
        _, gds, _ = store_setup
        path = str(tmp_path / "trunc.lstore")
        ingest(gds, path)
        with open(path, "rb") as f:
            data = f.read()
        with open(path, "wb") as f:
            f.write(data[: len(data) - 64])
        with pytest.raises(LayoutStoreError):
            open_store(path, refresh=True)


class TestScanEquivalence:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_store_matches_in_ram(self, store_setup, tech45, jobs):
        block, _, view = store_setup
        model = LithoModel(tech45.litho)
        layer = tech45.layers.metal1
        limit = tech45.metal_width // 2
        kwargs = dict(tile_nm=1500, pinch_limit=limit, jobs=jobs)
        ram = scan_full_chip(model, block.top.region(layer), **kwargs)
        stored = scan_full_chip(model, view.layer_for(layer), **kwargs)
        assert stored.hotspots == ram.hotspots
        assert stored.tiles == ram.tiles

    @pytest.mark.parametrize("writer_store", [True, False])
    def test_tile_caches_are_interchangeable(self, store_setup, tech45, writer_store):
        block, _, view = store_setup
        model = LithoModel(tech45.litho)
        layer = tech45.layers.metal1
        limit = tech45.metal_width // 2
        kwargs = dict(tile_nm=1500, pinch_limit=limit, jobs=2)
        sources = [view.layer_for(layer), block.top.region(layer)]
        if not writer_store:
            sources.reverse()
        cache = TileCache()
        first = scan_full_chip(model, sources[0], cache=cache, **kwargs)
        second = scan_full_chip(model, sources[1], cache=cache, **kwargs)
        assert first.tiles_computed == first.tiles
        assert second.tiles_computed == 0
        assert second.cache_hit_rate == 1.0
        assert second.hotspots == first.hotspots

    def test_store_payload_is_tiny(self, store_setup, tech45, registry, monkeypatch):
        block, _, view = store_setup
        model = LithoModel(tech45.litho)
        layer = tech45.layers.metal1
        limit = tech45.metal_width // 2
        kwargs = dict(tile_nm=1500, pinch_limit=limit, jobs=2)
        scan_full_chip(model, view.layer_for(layer), **kwargs)
        store_bytes = registry.gauge_value(names.POOL_PAYLOAD_BYTES)
        registry.reset()
        monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        scan_full_chip(model, block.top.region(layer), **kwargs)
        pickled_bytes = registry.gauge_value(names.POOL_PAYLOAD_BYTES)
        assert store_bytes is not None and pickled_bytes is not None
        # the whole wire payload is a handle and scan params, not rects
        assert store_bytes < 2048
        assert store_bytes < pickled_bytes


class TestDrcEquivalence:
    @pytest.fixture(scope="class")
    def drc_setup(self, tmp_path_factory, small_block, tech45):
        d = tmp_path_factory.mktemp("drcstore")
        gds = str(d / "block.gds")
        write_gds(small_block.layout, gds)
        view = ensure_store(gds, str(d / "block.lstore"))
        return small_block, tech45.rules.minimum(), view

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_store_matches_in_ram(self, drc_setup, jobs):
        from repro.drc import run_drc

        block, deck, view = drc_setup
        ram = run_drc(block.top, deck, jobs=jobs, tile_nm=2500)
        stored = run_drc(None, deck, jobs=jobs, tile_nm=2500, store=view)
        assert stored.violations == ram.violations
        assert stored.tiles == ram.tiles
        assert stored.cell_name == ram.cell_name

    def test_single_pass_matches_in_ram(self, drc_setup):
        from repro.drc import run_drc

        block, deck, view = drc_setup
        ram = run_drc(block.top, deck)
        stored = run_drc(None, deck, store=view)
        assert stored.violations == ram.violations

    def test_windowed_matches_in_ram(self, drc_setup):
        from repro.drc import run_drc

        block, deck, view = drc_setup
        bbox = block.top.bbox
        window = Rect(bbox.x0, bbox.y0, (bbox.x0 + bbox.x1) // 2, bbox.y1)
        ram = run_drc(block.top, deck, window)
        stored = run_drc(None, deck, window, store=view)
        assert stored.violations == ram.violations

    def test_tile_caches_are_interchangeable(self, drc_setup):
        from repro.drc import run_drc

        block, deck, view = drc_setup
        cache = TileCache()
        first = run_drc(block.top, deck, jobs=2, tile_nm=2500, cache=cache)
        second = run_drc(None, deck, jobs=2, tile_nm=2500, cache=cache, store=view)
        assert first.tiles_computed == first.tiles
        assert second.tiles_computed == 0
        assert second.violations == first.violations

    def test_cell_and_store_both_missing_is_an_error(self, drc_setup):
        from repro.drc import run_drc

        _, deck, _ = drc_setup
        with pytest.raises(ValueError):
            run_drc(None, deck)


class TestServiceSessions:
    def _run(self, service, kind, gds):
        from repro.service.jobs import JobState

        params = {"gds": gds}
        if kind == "scan":
            params["layer"] = "M1"
        job = service.wait(service.submit(kind, params), timeout=120)
        assert job.state is JobState.DONE
        return job.result

    @pytest.mark.parametrize("kind", ["scan", "drc"])
    def test_store_backed_session_matches_in_ram(
        self, store_setup, tmp_path, kind
    ):
        from repro.service import VerificationService

        _, gds, _ = store_setup
        with VerificationService(jobs=1) as plain:
            expect = self._run(plain, kind, gds)
        with VerificationService(
            jobs=1, session_store_dir=str(tmp_path / "stores")
        ) as backed:
            assert self._run(backed, kind, gds) == expect

    def test_sessions_survive_restart(self, store_setup, registry, tmp_path):
        from repro.service import VerificationService

        _, gds, _ = store_setup
        store_dir = str(tmp_path / "stores")
        with VerificationService(jobs=1, session_store_dir=store_dir) as first:
            before = self._run(first, "drc", gds)
        registry.reset()
        # a fresh service (daemon restart) maps the same store file:
        # no GDSII parse, no re-ingest
        with VerificationService(jobs=1, session_store_dir=store_dir) as second:
            assert self._run(second, "drc", gds) == before
        assert registry.counter(names.LAYOUTSTORE_REUSED) == 1
        assert registry.counter(names.LAYOUTSTORE_INGESTS) == 0

    def test_unusable_store_falls_back_in_ram(self, store_setup, registry, tmp_path):
        from repro.service import VerificationService

        _, gds, _ = store_setup
        store_dir = tmp_path / "stores"
        store_dir.mkdir()
        name = hashlib.sha256(
            os.path.abspath(gds).encode("utf-8")
        ).hexdigest()[:16]
        # a directory where the store file should go: ingest cannot win
        (store_dir / f"{name}.lstore").mkdir()
        with VerificationService(jobs=1) as plain:
            expect = self._run(plain, "drc", gds)
        with VerificationService(jobs=1, session_store_dir=str(store_dir)) as svc:
            assert self._run(svc, "drc", gds) == expect
        assert registry.counter(names.LAYOUTSTORE_FALLBACK) == 1


class TestPeakRss:
    def test_sample_gauges_a_plausible_value(self, registry):
        peak = sample_peak_rss(registry)
        assert peak is not None and peak > 1 << 20  # a real process > 1 MiB
        assert registry.gauge_value(names.RUN_PEAK_RSS_BYTES) == peak
