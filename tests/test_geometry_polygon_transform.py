"""Unit + property tests for Polygon and Transform."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Orientation, Point, Polygon, Rect, Transform


class TestPolygon:
    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 10, 20))
        assert p.is_rect
        assert p.area == 200
        assert p.num_vertices == 4

    def test_l_shape(self):
        p = Polygon.l_shape(100, 100, 40, 40)
        assert p.area == 10000 - 1600
        assert p.num_vertices == 6
        assert p.perimeter() == 400  # rectilinear L keeps the bbox perimeter

    def test_l_shape_validation(self):
        with pytest.raises(ValueError):
            Polygon.l_shape(100, 100, 100, 40)

    def test_rejects_non_rectilinear(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (10, 10), (0, 10), (5, 5)])

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (10, 0), (10, 10)])

    def test_collinear_collapsed(self):
        p = Polygon([(0, 0), (5, 0), (10, 0), (10, 10), (0, 10)])
        assert p.num_vertices == 4

    def test_orientation_normalized(self):
        ccw = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        cw = Polygon([(0, 0), (0, 10), (10, 10), (10, 0)])
        assert ccw == cw
        assert ccw.area > 0

    def test_to_region_matches_area(self):
        p = Polygon.l_shape(100, 80, 30, 20)
        region = p.to_region()
        assert region.area == p.area

    def test_to_region_u_shape(self):
        # U-shape: two towers on a base
        p = Polygon(
            [(0, 0), (30, 0), (30, 30), (20, 30), (20, 10), (10, 10), (10, 30), (0, 30)]
        )
        region = p.to_region()
        assert region.area == 30 * 30 - 10 * 20
        assert len(region.components()) == 1

    def test_contains_point(self):
        p = Polygon.l_shape(100, 100, 40, 40)
        assert p.contains_point(Point(10, 10))
        assert not p.contains_point(Point(90, 90))  # in the notch
        assert p.contains_point(Point(0, 0))  # boundary
        assert p.contains_point(Point(0, 50))  # on an edge

    def test_translate(self):
        p = Polygon.from_rect(Rect(0, 0, 10, 10)).translated(5, 5)
        assert p.bbox == Rect(5, 5, 15, 15)

    def test_hashable_and_canonical(self):
        a = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        b = Polygon([(10, 0), (10, 10), (0, 10), (0, 0)])  # rotated start
        assert a == b
        assert len({a, b}) == 1


class TestTransform:
    def test_identity(self):
        assert Transform.IDENTITY.is_identity
        assert Transform.IDENTITY.apply_point(Point(3, 4)) == Point(3, 4)

    def test_rotations(self):
        p = Point(1, 0)
        assert Transform(0, 0, Orientation.R90).apply_point(p) == Point(0, 1)
        assert Transform(0, 0, Orientation.R180).apply_point(p) == Point(-1, 0)
        assert Transform(0, 0, Orientation.R270).apply_point(p) == Point(0, -1)

    def test_mirror(self):
        p = Point(2, 3)
        assert Transform(0, 0, Orientation.MX).apply_point(p) == Point(2, -3)

    def test_apply_rect_normalizes(self):
        r = Transform(0, 0, Orientation.R90).apply_rect(Rect(0, 0, 10, 20))
        assert r == Rect(-20, 0, 0, 10)

    def test_orientation_properties(self):
        assert Orientation.MX90.mirrored
        assert not Orientation.R90.mirrored
        assert Orientation.MX90.rotation == 90
        assert Orientation.R0.rotation == 0

    @given(st.sampled_from(list(Orientation)), st.integers(-50, 50), st.integers(-50, 50))
    def test_inverse_roundtrip(self, orient, dx, dy):
        t = Transform(dx, dy, orient)
        p = Point(17, -23)
        assert t.inverse().apply_point(t.apply_point(p)) == p

    @given(
        st.sampled_from(list(Orientation)),
        st.sampled_from(list(Orientation)),
        st.integers(-20, 20),
        st.integers(-20, 20),
    )
    def test_composition(self, o1, o2, dx, dy):
        t1 = Transform(dx, dy, o1)
        t2 = Transform(-dy, dx, o2)
        p = Point(5, 9)
        assert t1.then(t2).apply_point(p) == t2.apply_point(t1.apply_point(p))

    def test_area_preserved(self):
        r = Rect(0, 0, 7, 13)
        for orient in Orientation:
            assert Transform(3, -4, orient).apply_rect(r).area == r.area
