"""Zero-copy shared-memory payload transport.

The tentpole contract: a pooled scan/DRC run that ships its geometry
through ``multiprocessing.shared_memory`` produces bit-identical
results and interchangeable tile-cache entries vs. the pickled-payload
engine, its wire payload stays small, and hosts without shared memory
degrade to the pickled path (``pool.shm_fallback``) with identical
results.
"""

from __future__ import annotations

import pickle

import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.geometry import Rect, Region
from repro.litho import LithoModel, scan_full_chip
from repro.obs import MetricsRegistry, names, set_registry
from repro.parallel import SharedPayload, ShmArena, ShmRects, TileCache
from repro.parallel import shm as shm_mod


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture(scope="module")
def scan_setup(tech45, stdlib45):
    spec = LogicBlockSpec(rows=1, row_width_nm=5000, net_count=5, seed=11, weak_spots=4)
    block = generate_logic_block(tech45, spec, stdlib45)
    model = LithoModel(tech45.litho)
    m1 = block.top.region(tech45.layers.metal1)
    return tech45, model, m1


RECTS_A = [Rect(0, 0, 100, 50), Rect(0, 50, 40, 90), Rect(200, 0, 260, 30)]
RECTS_B = [Rect(-70, -20, -10, 5)]


class TestArenaAndHandles:
    def test_pack_preserves_lists_and_order(self):
        arena = ShmArena.pack([RECTS_A, [], RECTS_B])
        assert arena is not None
        try:
            assert [h.rects() for h in arena.handles] == [RECTS_A, [], RECTS_B]
        finally:
            arena.close()

    def test_unpickled_handle_reattaches_with_plain_ints(self):
        arena = ShmArena.pack([RECTS_A])
        assert arena is not None
        try:
            handle = arena.handles[0]
            wire = pickle.dumps(handle)
            # the wire form is the (name, offset, count) handle only —
            # far smaller than the pickled rect list itself
            assert len(wire) < len(pickle.dumps(RECTS_A))
            clone = pickle.loads(wire)
            assert clone._rects is None  # lazily materialized
            rebuilt = clone.rects()
            assert rebuilt == RECTS_A
            for r in rebuilt:
                assert type(r.x0) is int and type(r.y1) is int
        finally:
            arena.close()

    def test_shared_payload_pickles_as_inner(self):
        arena = ShmArena.pack([RECTS_A])
        assert arena is not None
        try:
            inner = {"geometry": arena.handles[0], "limit": 25}
            wrapped = pickle.loads(pickle.dumps(SharedPayload(inner, arena)))
            assert not isinstance(wrapped, SharedPayload)
            assert wrapped["limit"] == 25
            assert isinstance(wrapped["geometry"], ShmRects)
        finally:
            arena.close()

    def test_close_is_idempotent(self):
        arena = ShmArena.pack([RECTS_A])
        assert arena is not None
        arena.close()
        arena.close()  # second unlink of a gone segment must not raise

    def test_region_from_canonical_rects_roundtrip(self):
        region = Region([Rect(0, 0, 300, 100), Rect(0, 50, 100, 400), Rect(250, 80, 420, 130)])
        rebuilt = Region.from_canonical_rects(list(region.rects()))
        assert rebuilt == region
        assert rebuilt.digest() == region.digest()


class TestFallbacks:
    def test_int32_overflow_falls_back(self, registry):
        arena = ShmArena.pack([[Rect(0, 0, 2**40, 10)]])
        assert arena is None
        assert registry.gauge_value(names.POOL_SHM_FALLBACK) == 1

    def test_env_kill_switch_falls_back(self, registry, monkeypatch):
        monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        assert not shm_mod.available()
        assert ShmArena.pack([RECTS_A]) is None
        assert registry.gauge_value(names.POOL_SHM_FALLBACK) == 1

    def test_missing_shared_memory_module_falls_back(self, registry, monkeypatch):
        monkeypatch.setattr(shm_mod, "_shared_memory", None)
        assert not shm_mod.available()
        assert ShmArena.pack([RECTS_A]) is None
        assert registry.gauge_value(names.POOL_SHM_FALLBACK) == 1

    def test_scan_without_shared_memory_matches_serial(
        self, scan_setup, registry, monkeypatch
    ):
        # a pooled scan on a host without shared memory must ship the
        # payload pickled (gauging the fallback) and stay bit-identical
        tech, model, m1 = scan_setup
        limit = tech.metal_width // 2
        serial = scan_full_chip(model, m1, tile_nm=1500, pinch_limit=limit, jobs=1)
        monkeypatch.setattr(shm_mod, "_shared_memory", None)
        pooled = scan_full_chip(model, m1, tile_nm=1500, pinch_limit=limit, jobs=2)
        assert pooled.hotspots == serial.hotspots
        assert pooled.tiles == serial.tiles
        assert registry.gauge_value(names.POOL_SHM_FALLBACK) == 1


class TestScanEquivalence:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_shm_matches_pickled_payload(self, scan_setup, jobs, monkeypatch):
        tech, model, m1 = scan_setup
        limit = tech.metal_width // 2
        kwargs = dict(tile_nm=1500, pinch_limit=limit, jobs=jobs)
        with_shm = scan_full_chip(model, m1, **kwargs)
        monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        pickled = scan_full_chip(model, m1, **kwargs)
        assert with_shm.hotspots == pickled.hotspots
        assert with_shm.tiles == pickled.tiles

    @pytest.mark.parametrize("writer_shm", [True, False])
    def test_tile_caches_are_interchangeable(
        self, scan_setup, writer_shm, monkeypatch
    ):
        # keys are computed parent-side from the same geometry either
        # way: a cache written by the shm engine replays warm under the
        # pickled engine and vice versa
        tech, model, m1 = scan_setup
        limit = tech.metal_width // 2
        kwargs = dict(tile_nm=1500, pinch_limit=limit, jobs=2)
        cache = TileCache()
        if not writer_shm:
            monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        first = scan_full_chip(model, m1, cache=cache, **kwargs)
        if writer_shm:
            monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        else:
            monkeypatch.delenv(shm_mod.ENV_DISABLE)
        second = scan_full_chip(model, m1, cache=cache, **kwargs)
        assert first.tiles_computed == first.tiles
        assert second.tiles_computed == 0
        assert second.cache_hit_rate == 1.0
        assert second.hotspots == first.hotspots

    def test_wire_payload_is_smaller_with_shm(self, scan_setup, registry):
        tech, model, m1 = scan_setup
        limit = tech.metal_width // 2
        scan_full_chip(model, m1, tile_nm=1500, pinch_limit=limit, jobs=2)
        shm_bytes = registry.gauge_value(names.POOL_PAYLOAD_BYTES)
        registry.reset()
        import os

        os.environ[shm_mod.ENV_DISABLE] = "1"
        try:
            scan_full_chip(model, m1, tile_nm=1500, pinch_limit=limit, jobs=2)
        finally:
            del os.environ[shm_mod.ENV_DISABLE]
        pickled_bytes = registry.gauge_value(names.POOL_PAYLOAD_BYTES)
        assert shm_bytes is not None and pickled_bytes is not None
        assert shm_bytes < pickled_bytes


class TestDrcEquivalence:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_shm_matches_pickled_payload(self, small_block, tech45, jobs, monkeypatch):
        from repro.drc import run_drc

        deck = tech45.rules.minimum()
        with_shm = run_drc(small_block.top, deck, jobs=jobs, tile_nm=2500)
        monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        pickled = run_drc(small_block.top, deck, jobs=jobs, tile_nm=2500)
        assert with_shm.violations == pickled.violations
        assert with_shm.tiles == pickled.tiles

    def test_tile_caches_are_interchangeable(self, small_block, tech45, monkeypatch):
        from repro.drc import run_drc

        deck = tech45.rules.minimum()
        cache = TileCache()
        first = run_drc(small_block.top, deck, jobs=2, tile_nm=2500, cache=cache)
        monkeypatch.setenv(shm_mod.ENV_DISABLE, "1")
        second = run_drc(small_block.top, deck, jobs=2, tile_nm=2500, cache=cache)
        assert first.tiles_computed == first.tiles
        assert second.tiles_computed == 0
        assert second.violations == first.violations
