"""Unit tests for the DRC engine: each check primitive, the deck runner,
violation reporting, and at-the-limit semantics."""


from repro.drc import (
    check_area,
    check_density,
    check_enclosure,
    check_extension,
    check_layer_spacing,
    check_spacing,
    check_width,
    run_drc,
    run_drc_regions,
)
from repro.drc.violations import DrcReport, Violation
from repro.geometry import Rect, Region
from repro.layout import Cell, Layer
from repro.tech import (
    AreaRule,
    DensityRule,
    EnclosureRule,
    ExtensionRule,
    RuleDeck,
    RuleSeverity,
    SpacingRule,
    WidthRule,
)

M = Layer(10, 0, "M1")
V = Layer(11, 0, "V1")
P = Layer(3, 0, "POLY")
A = Layer(2, 0, "ACT")


class TestWidthCheck:
    rule = WidthRule("W", M, 45)

    def test_at_limit_passes(self):
        assert check_width(Region(Rect(0, 0, 1000, 45)), self.rule) == []

    def test_below_limit_fails(self):
        violations = check_width(Region(Rect(0, 0, 1000, 44)), self.rule)
        assert len(violations) == 1

    def test_local_neck_found(self):
        # wide wire with a narrow neck in the middle
        wire = Region([Rect(0, 0, 100, 100), Rect(100, 30, 200, 60), Rect(200, 0, 300, 100)])
        violations = check_width(wire, WidthRule("W", M, 45))
        assert len(violations) == 1
        marker = violations[0].marker
        assert 100 <= marker.x0 and marker.x1 <= 200

    def test_odd_rule_value(self):
        # odd minimum width: 45 wide passes a 45 rule, 44 fails; a 7-wide
        # feature against a 7 rule must also pass (no parity issues)
        assert check_width(Region(Rect(0, 0, 100, 7)), WidthRule("W", M, 7)) == []
        assert len(check_width(Region(Rect(0, 0, 100, 6)), WidthRule("W", M, 7))) == 1

    def test_empty_region(self):
        assert check_width(Region(), self.rule) == []


class TestSpacingCheck:
    rule = SpacingRule("S", M, 45)

    def test_at_limit_passes(self):
        region = Region([Rect(0, 0, 100, 45), Rect(0, 90, 100, 135)])
        assert check_spacing(region, self.rule) == []

    def test_below_limit_fails(self):
        region = Region([Rect(0, 0, 100, 45), Rect(0, 80, 100, 125)])
        violations = check_spacing(region, self.rule)
        assert len(violations) == 1
        assert violations[0].measured == 35

    def test_touching_exempt(self):
        region = Region([Rect(0, 0, 100, 45), Rect(100, 0, 200, 45)])
        assert check_spacing(region, self.rule) == []

    def test_diagonal_corners_not_flagged(self):
        # projection metric: corner-to-corner diagonal separations are
        # not spacing violations (no facing edges with overlapping spans)
        region = Region([Rect(0, 0, 50, 50), Rect(80, 80, 130, 130)])
        assert check_spacing(region, self.rule) == []

    def test_concave_corner_not_flagged(self):
        # an L-junction's perpendicular edges meet at a corner: legal
        l_shape = Region([Rect(0, 0, 45, 1000), Rect(0, 0, 1000, 45)])
        assert check_spacing(l_shape, self.rule) == []

    def test_t_junction_not_flagged(self):
        t_shape = Region([Rect(0, 0, 1000, 45), Rect(400, 45, 445, 800)])
        assert check_spacing(t_shape, self.rule) == []

    def test_shielded_pair_not_flagged(self):
        # A and C are 70 apart but B fills the corridor: only A-B and B-C
        # gaps are measured (both legal at 45... here 12/13: violations)
        region = Region([
            Rect(0, 0, 1000, 45),
            Rect(0, 57, 1000, 102),   # 12 above A
            Rect(0, 115, 1000, 160),  # 13 above B
        ])
        violations = check_spacing(region, self.rule)
        gaps = sorted(v.measured for v in violations)
        assert gaps == [12, 13]  # no direct A-to-C measurement

    def test_notch_same_feature(self):
        # U-shape: arms 30 apart
        region = Region([Rect(0, 0, 45, 200), Rect(75, 0, 120, 200), Rect(0, 0, 120, 45)])
        violations = check_spacing(region, self.rule)
        assert len(violations) == 1

    def test_gap_box_marker(self):
        region = Region([Rect(0, 0, 100, 45), Rect(0, 80, 100, 125)])
        marker = check_spacing(region, self.rule)[0].marker
        assert marker.y0 == 45 and marker.y1 == 80


class TestLayerSpacing:
    def test_cross_layer(self):
        rule = SpacingRule("X", M, 30, other=V)
        m = Region(Rect(0, 0, 100, 100))
        v_ok = Region(Rect(150, 0, 200, 50))
        v_bad = Region(Rect(120, 0, 170, 50))
        assert check_layer_spacing(m, v_ok, rule) == []
        assert len(check_layer_spacing(m, v_bad, rule)) == 1


class TestEnclosure:
    rule = EnclosureRule("E", V, M, 11)

    def test_exact_enclosure_passes(self):
        via = Region(Rect(11, 11, 56, 56))
        metal = Region(Rect(0, 0, 67, 67))
        assert check_enclosure(via, metal, self.rule) == []

    def test_insufficient(self):
        via = Region(Rect(5, 11, 50, 56))
        metal = Region(Rect(0, 0, 67, 67))
        assert len(check_enclosure(via, metal, self.rule)) == 1

    def test_uncovered_via(self):
        via = Region(Rect(0, 0, 45, 45))
        assert len(check_enclosure(via, Region(), self.rule)) == 1

    def test_conditional_skips_non_overlapping(self):
        rule = EnclosureRule("E", V, M, 11, conditional=True)
        metal = Region(Rect(0, 0, 67, 67))
        poly_contact = Region(Rect(11, 11, 56, 56))     # on metal: checked
        diff_contact = Region(Rect(500, 0, 545, 45))    # off metal: exempt
        assert check_enclosure(poly_contact | diff_contact, metal, rule) == []
        bad = Region(Rect(5, 11, 50, 56))               # on metal, too close
        assert len(check_enclosure(bad | diff_contact, metal, rule)) == 1

    def test_conditional_many_components(self):
        # the kept-component union is rebuilt in one pass; results must
        # match the per-component semantics for a large population
        rule = EnclosureRule("E", V, M, 10)
        vias = []
        metals = []
        for k in range(60):
            x = k * 200
            vias.append(Rect(x + 10, 10, x + 50, 50))
            metals.append(Rect(x, 0, x + 60, 60))
        cond = EnclosureRule("E", V, M, 10, conditional=True)
        assert check_enclosure(Region(vias), Region(metals), cond) == []
        shifted = Region(vias).translated(-6, 0)  # every via too close on the left
        violations = check_enclosure(shifted, Region(metals), cond)
        assert len(violations) == 60


class TestAreaAndDensity:
    def test_area(self):
        rule = AreaRule("A", M, 10000)
        ok = Region(Rect(0, 0, 100, 100))
        small = Region(Rect(0, 0, 50, 50))
        assert check_area(ok, rule) == []
        violations = check_area(ok | small.translated(500, 0), rule)
        assert len(violations) == 1
        assert violations[0].measured == 2500

    def test_density(self):
        rule = DensityRule("D", M, window=100, min_density=0.2, max_density=0.8)
        extent = Rect(0, 0, 100, 100)
        # uniform 50% stripes: every half-window tile sees the same density
        ok = Region([Rect(0, y, 100, y + 25) for y in (0, 50)])
        empty_ish = Region(Rect(0, 0, 10, 10))  # ~1%
        assert check_density(ok, rule, extent) == []
        assert len(check_density(empty_ish, rule, extent)) >= 1

    def test_density_no_sliver_tiles_at_high_edge(self):
        # regression: an extent that is not a multiple of the half-window
        # step used to spawn clipped sliver tiles at the high edges whose
        # noisy fill fractions raised spurious violations
        rule = DensityRule("D", M, window=100, min_density=0.2, max_density=0.8)
        extent = Rect(0, 0, 130, 100)
        region = Region(Rect(0, 0, 65, 100))  # any full window sees 35-65%
        # old stepping evaluated the 30 nm sliver x in [100, 130] (0% fill)
        assert check_density(region, rule, extent) == []
        # evaluated windows are full-size: the clamped last window still
        # catches a genuinely sparse high edge
        sparse = Region(Rect(0, 0, 20, 100))  # clamped window [30, 130] sees 0%
        violations = check_density(sparse, rule, extent)
        assert violations
        assert all(v.marker.width == rule.window for v in violations)

    def test_density_extent_smaller_than_window(self):
        rule = DensityRule("D", M, window=100, min_density=0.2, max_density=0.8)
        extent = Rect(0, 0, 60, 60)
        half = Region(Rect(0, 0, 30, 60))
        assert check_density(half, rule, extent) == []
        assert len(check_density(Region(), rule, extent)) == 1


class TestExtension:
    rule = ExtensionRule("X", P, A, 58)

    def test_endcap_ok(self):
        poly = Region(Rect(0, -60, 31, 160))
        active = Region(Rect(-100, 0, 100, 100))
        assert check_extension(poly, active, self.rule) == []

    def test_endcap_short(self):
        poly = Region(Rect(0, -20, 31, 120))
        active = Region(Rect(-100, 0, 100, 100))
        assert len(check_extension(poly, active, self.rule)) == 2


class TestEngine:
    def test_run_drc_counts_and_summary(self, tech45):
        L = tech45.layers
        cell = Cell("T")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 30))  # too narrow
        report = run_drc(cell, tech45.rules.minimum().for_layer(L.metal1))
        assert not report.ok
        assert report.count() >= 1
        assert "M1.W.1" in report.by_rule()
        assert "M1.W.1" in report.summary()

    def test_clean_design(self, tech45):
        L = tech45.layers
        cell = Cell("OK")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 45))
        report = run_drc(cell, tech45.rules.minimum().for_layer(L.metal1))
        assert report.ok

    def test_severity_filtering(self, tech45):
        L = tech45.layers
        cell = Cell("T")
        cell.add_rect(L.metal1, Rect(0, 0, 1000, 50))  # meets min 45, below rec 56
        report = run_drc(cell, tech45.rules.for_layer(L.metal1))
        assert report.minimum_only().count() < report.count()
        assert report.count(RuleSeverity.RECOMMENDED) >= 1

    def test_run_regions_direct(self):
        deck = RuleDeck("d", [WidthRule("W", M, 45)])
        report = run_drc_regions({M: Region(Rect(0, 0, 100, 30))}, deck, Rect(0, 0, 100, 100))
        assert report.count() == 1

    def test_window_restricts(self, tech45):
        L = tech45.layers
        cell = Cell("T")
        cell.add_rect(L.metal1, Rect(0, 0, 100, 30))       # violation at origin
        cell.add_rect(L.metal1, Rect(5000, 0, 5100, 45))   # clean far away
        deck = RuleDeck("w", [WidthRule("M1.W.1", L.metal1, 45)])
        full = run_drc(cell, deck)
        clipped = run_drc(cell, deck, window=Rect(4000, 0, 6000, 100))
        assert full.count() == 1
        assert clipped.count() == 0


class TestViolationObjects:
    def test_str(self):
        v = Violation(WidthRule("W", M, 45), Rect(0, 0, 10, 10), measured=30)
        assert "W" in str(v) and "30" in str(v)

    def test_report_merge(self):
        report = DrcReport("X")
        report.add(Violation(WidthRule("W", M, 45), Rect(0, 0, 1, 1)))
        report.extend([Violation(SpacingRule("S", M, 45), Rect(0, 0, 1, 1))])
        assert len(report) == 2
        assert set(report.by_rule()) == {"W", "S"}
