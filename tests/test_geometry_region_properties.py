"""Property-based tests: Region boolean algebra laws, morphology
invariants, canonical-form uniqueness."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, Region

rect_strategy = st.tuples(
    st.integers(-50, 50), st.integers(-50, 50), st.integers(1, 30), st.integers(1, 30)
).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))

region_strategy = st.lists(rect_strategy, max_size=6).map(Region)


@given(region_strategy, region_strategy)
def test_union_commutative(a, b):
    assert (a | b) == (b | a)


@given(region_strategy, region_strategy)
def test_intersection_commutative(a, b):
    assert (a & b) == (b & a)


@given(region_strategy, region_strategy, region_strategy)
@settings(max_examples=50)
def test_union_associative(a, b, c):
    assert ((a | b) | c) == (a | (b | c))


@given(region_strategy, region_strategy, region_strategy)
@settings(max_examples=50)
def test_intersection_distributes_over_union(a, b, c):
    assert (a & (b | c)) == ((a & b) | (a & c))


@given(region_strategy)
def test_self_laws(a):
    assert (a | a) == a
    assert (a & a) == a
    assert (a - a).is_empty
    assert (a ^ a).is_empty


@given(region_strategy, region_strategy)
def test_difference_disjoint_from_subtrahend(a, b):
    assert ((a - b) & b).is_empty


@given(region_strategy, region_strategy)
def test_inclusion_exclusion_area(a, b):
    assert (a | b).area == a.area + b.area - (a & b).area


@given(region_strategy, region_strategy)
def test_xor_is_union_minus_intersection(a, b):
    assert (a ^ b) == ((a | b) - (a & b))


@given(region_strategy, region_strategy)
def test_subtract_then_add_back(a, b):
    assert ((a - b) | (a & b)) == a


@given(region_strategy)
def test_canonical_reconstruction(a):
    """Rebuilding a region from its own canonical rects is the identity."""
    assert Region(list(a.rects())) == a


@given(region_strategy)
def test_canonical_rects_disjoint(a):
    rects = list(a.rects())
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            assert not rects[i].overlaps(rects[j])


@given(region_strategy, st.integers(1, 10))
def test_grow_shrink_roundtrip_contains(a, d):
    """Opening is anti-extensive: open(a) is a subset of a."""
    opened = a.grown(-d).grown(d)
    assert a.covers(opened)


@given(region_strategy, st.integers(1, 10))
def test_close_extensive(a, d):
    """Closing is extensive: a is a subset of close(a)."""
    assert a.closed(d).covers(a)


@given(region_strategy, st.integers(1, 8))
def test_grow_monotone_area(a, d):
    assert a.grown(d).area >= a.area


@given(region_strategy, st.integers(-20, 20), st.integers(-20, 20))
def test_translation_preserves_area_and_count(a, dx, dy):
    moved = a.translated(dx, dy)
    assert moved.area == a.area
    assert len(moved) == len(a)
    assert moved.translated(-dx, -dy) == a


@given(region_strategy, st.integers(2, 5))
def test_scaling_area(a, k):
    assert a.scaled(k).area == a.area * k * k


@given(region_strategy)
def test_components_partition(a):
    comps = a.components()
    assert sum(c.area for c in comps) == a.area
    merged = Region()
    for c in comps:
        merged = merged | c
    assert merged == a


@given(region_strategy)
def test_bbox_contains_region(a):
    if a.bbox is not None:
        assert Region(a.bbox).covers(a)
