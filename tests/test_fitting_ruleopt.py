"""Tests for defect-model fitting and design-rule exploration."""

import numpy as np
import pytest

from repro.designgen import comb_structure, serpentine
from repro.ruleopt import rule_area_sensitivity, sweep_rule_values
from repro.yieldmodels import (
    MonitorObservation,
    fit_d0,
    fit_defect_model,
    predict_fail_fraction,
)
from repro.yieldmodels.dsd import DefectSizeDistribution

REPLICAS = 200_000
TRUE_D0 = 2.5
TRUE_X0 = 45.0


def synth_observations(seed=5, dies=20000):
    """Synthetic fab data from a known defect model."""
    rng = np.random.default_rng(seed)
    dsd = DefectSizeDistribution(TRUE_X0, 1800)
    monitors = {
        "comb_25": comb_structure(25, 25, 40, 6000),
        "comb_45": comb_structure(45, 45, 30, 6000),
        "comb_90": comb_structure(90, 90, 20, 6000),
        "serp": serpentine(45, 90, 30, 6000),
    }
    observations = []
    for name, region in monitors.items():
        p = predict_fail_fraction(region, dsd, TRUE_D0, replicas=REPLICAS)
        fails = int(rng.binomial(dies, p))
        observations.append(MonitorObservation(name, region, dies, fails, replicas=REPLICAS))
    return observations, dsd


class TestFitting:
    def test_d0_recovery(self):
        observations, dsd = synth_observations()
        d0_hat = fit_d0(observations, dsd)
        assert d0_hat == pytest.approx(TRUE_D0, rel=0.15)

    def test_d0_scales_with_fails(self):
        observations, dsd = synth_observations()
        doubled = [
            MonitorObservation(o.name, o.region, o.dies, min(2 * o.fails, o.dies), o.replicas)
            for o in observations
        ]
        assert fit_d0(doubled, dsd) > fit_d0(observations, dsd)

    def test_joint_fit_near_truth(self):
        """The (D0, x0) likelihood has a shallow ridge; a sub-peak monitor
        makes x0 identifiable to within one grid step."""
        observations, _ = synth_observations()
        grid = [30.0, 38.0, 45.0, 55.0, 70.0]
        model = fit_defect_model(observations, x0_grid_nm=grid, x_max_nm=1800)
        idx_true = grid.index(45.0)
        idx_hat = grid.index(model.x0_nm)
        assert abs(idx_hat - idx_true) <= 1
        assert 0.5 * TRUE_D0 < model.d0_per_cm2 < 3 * TRUE_D0

    def test_zero_fails_fits_zero(self):
        observations, dsd = synth_observations()
        clean = [
            MonitorObservation(o.name, o.region, o.dies, 0, o.replicas) for o in observations
        ]
        assert fit_d0(clean, dsd) == pytest.approx(0.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorObservation("x", comb_structure(45, 45, 4, 400), dies=10, fails=20)
        with pytest.raises(ValueError):
            MonitorObservation("x", comb_structure(45, 45, 4, 400), 10, 1, replicas=0)
        with pytest.raises(ValueError):
            fit_d0([], DefectSizeDistribution(45, 1800))

    def test_prediction_consistency(self):
        """The fitted model predicts the observed fail fractions."""
        observations, dsd = synth_observations()
        d0_hat = fit_d0(observations, dsd)
        for obs in observations:
            predicted = predict_fail_fraction(obs.region, dsd, d0_hat, obs.replicas)
            observed = obs.fails / obs.dies
            assert predicted == pytest.approx(observed, abs=0.01)


class TestRuleOpt:
    def test_sweep_area_monotone(self, tech45):
        points = sweep_rule_values(tech45, "poly_pitch", [180, 200, 220])
        areas = [p.cell_area_um2 for p in points]
        assert areas == sorted(areas)
        assert all(p.drc_clean for p in points)

    def test_too_tight_pitch_fails_drc(self, tech45):
        points = sweep_rule_values(tech45, "poly_pitch", [160, 180])
        assert not points[0].drc_clean  # below nominal: columns collide
        assert points[1].drc_clean

    def test_unknown_knob_rejected(self, tech45):
        with pytest.raises(ValueError):
            sweep_rule_values(tech45, "bogus_rule", [1])

    def test_area_sensitivity_ranking(self, tech45):
        sensitivity = rule_area_sensitivity(tech45)
        # pitch and height drive cell area; via size/enclosure do not
        assert sensitivity["poly_pitch"] > 5.0
        assert sensitivity["cell_height"] > 3.0
        assert abs(sensitivity["via_size"]) < 0.5
        assert abs(sensitivity["via_enclosure"]) < 0.5

    def test_litho_check_runs(self, tech45):
        points = sweep_rule_values(
            tech45, "poly_pitch", [180], cells=("INV_X1",), litho_check=True
        )
        assert points[0].hotspots >= 0
