"""Cross-module integration tests: full flows over generated designs."""


from repro.core import DesignContext, evaluate_techniques, measure_design
from repro.core.techniques import RedundantViaTechnique
from repro.dpt import decompose_with_stitches, score_decomposition
from repro.drc import run_drc, score_recommended_rules
from repro.gdsii import read_gds, write_gds
from repro.geometry import Rect, Region
from repro.litho import LithoModel, find_hotspots
from repro.opc import apply_rule_opc
from repro.patterns import cluster_snippets, extract_snippets, PatternMatcher
from repro.tech import make_node
from repro.designgen import generate_logic_block, generate_sram_array, LogicBlockSpec
from repro.yieldmodels import insert_redundant_vias
from repro.yieldmodels.yield_model import layer_defect_lambda


class TestGdsRoundtripOfGeneratedDesign:
    def test_block_roundtrip(self, small_block, tech45, tmp_path):
        path = tmp_path / "block.gds"
        write_gds(small_block.layout, path)
        lib = read_gds(path)
        L = tech45.layers
        for layer in (L.metal1, L.metal2, L.via1, L.poly):
            assert lib.cell("LOGIC").region(layer) == small_block.top.region(layer)

    def test_sram_roundtrip(self, tech45, tmp_path):
        sram = generate_sram_array(tech45, 4, 4)
        path = tmp_path / "sram.gds"
        write_gds(sram, path)
        lib = read_gds(path)
        L = tech45.layers
        assert lib.top_cell().region(L.poly) == sram.top_cell().region(L.poly)


class TestDrcOnGeneratedDesigns:
    def test_block_minimum_drc_mostly_clean(self, small_block, tech45):
        """The generator produces legal geometry: no width violations, and
        only boundary-related spacing artifacts at worst."""
        L = tech45.layers
        deck = tech45.rules.minimum().for_layer(L.metal2)
        report = run_drc(small_block.top, deck)
        width_violations = [v for v in report if v.rule.kind.value == "width"]
        assert width_violations == []

    def test_recommended_scoring_below_one(self, small_block, tech45):
        score = score_recommended_rules(small_block.top, tech45.rules)
        assert 0.0 <= score.composite < 1.0  # min-rule design is not DFM-perfect
        assert score.worst(3)


class TestLithoFlow:
    def test_hotspots_then_opc_fix(self, small_block, tech45):
        L = tech45.layers
        model = LithoModel(tech45.litho)
        m1 = small_block.top.region(L.metal1)
        bb = small_block.top.bbox
        window = Rect(bb.x0 + 500, bb.y0, bb.x0 + 2500, bb.y1)
        base = find_hotspots(model, m1, window, pinch_limit=tech45.metal_width // 2)
        assert base  # generated blocks have line-end hotspots
        clip = m1 & Region(window.expanded(400))
        mask = (m1 - clip) | apply_rule_opc(clip)
        fixed = find_hotspots(
            model, m1, window, mask=mask, pinch_limit=tech45.metal_width // 2
        )
        assert len(fixed) < len(base)

    def test_hotspot_cluster_to_matcher_flow(self, small_block, tech45):
        """The DRC-Plus construction loop: find hotspots, cluster their
        snippets, and check a pattern library trained on HALF the sites
        generalizes to the other half."""
        L = tech45.layers
        model = LithoModel(tech45.litho)
        m1 = small_block.top.region(L.metal1)
        bb = small_block.top.bbox
        window = Rect(bb.x0, bb.y0, bb.x1, bb.y1)
        hotspots = find_hotspots(model, m1, window, pinch_limit=tech45.metal_width // 2)
        anchors = [h.marker.center for h in hotspots]
        snippets = extract_snippets(small_block.top, [L.metal1], anchors, radius=120)
        clusters = cluster_snippets(snippets, threshold=0.6)
        assert 1 <= len(clusters) < len(snippets)
        matcher = PatternMatcher(radius=120)
        for snippet in snippets[::2]:  # train on even-index sites only
            matcher.add_snippet(snippet)
        matches = matcher.scan(small_block.top, [L.metal1], anchors)
        recall = len({m.anchor for m in matches}) / len(anchors)
        assert recall > 0.8  # the library generalizes to unseen sites


class TestYieldFlow:
    def test_redundant_via_improves_yield(self, small_block, tech45):
        """Opportunistic insertion (no metal patching) strictly helps:
        via lambda halves where covered and nothing else changes.  (With
        metal patching the M1 changes can add litho marginality — a real
        trade-off the scorecard weighs.)"""
        ctx = DesignContext.from_cell(small_block.top, tech45)
        base = measure_design(ctx, d0_per_cm2=1.0)
        work = ctx.copy()
        insert_redundant_vias(work.cell, tech45, extend_metal=False)
        work.invalidate()
        after = measure_design(work, d0_per_cm2=1.0)
        assert after.lambda_vias <= base.lambda_vias
        assert after.yield_proxy >= base.yield_proxy
        # the patched flow still reduces the via lambda itself
        outcome = RedundantViaTechnique().apply(ctx)
        patched = measure_design(outcome.ctx, d0_per_cm2=1.0)
        assert patched.lambda_vias < base.lambda_vias

    def test_lambda_scales_with_design_size(self, tech45, stdlib45):
        small = generate_logic_block(
            tech45, LogicBlockSpec(rows=1, row_width_nm=3000, net_count=2, seed=5), stdlib45
        )
        big = generate_logic_block(
            tech45, LogicBlockSpec(rows=2, row_width_nm=6000, net_count=4, seed=5), stdlib45
        )
        L = tech45.layers
        lam_small = layer_defect_lambda(small.top.region(L.metal1), tech45.defects)
        lam_big = layer_defect_lambda(big.top.region(L.metal1), tech45.defects)
        assert lam_big > lam_small


class TestDptFlow:
    def test_sram_m2_decomposes_at_32(self):
        tech32 = make_node(32)
        sram = generate_sram_array(tech32, 4, 4)
        L = tech32.layers
        m2 = sram.top_cell().region(L.metal2)
        result, stitches = decompose_with_stitches(m2, int(1.5 * tech32.metal_space))
        score = score_decomposition(result, stitches)
        assert 0.0 <= score.composite <= 1.0

    def test_grating_decomposes_clean(self, tech45):
        from repro.designgen import line_grating

        lines = line_grating(tech45.metal_width, tech45.metal_pitch, 8, 2000)
        result, stitches = decompose_with_stitches(lines, int(1.3 * tech45.metal_space))
        assert result.ok
        assert stitches == []


class TestEndToEndScorecard:
    def test_scorecard_smoke(self, small_block, tech45):
        from repro.core.techniques import PatternCheckTechnique

        card = evaluate_techniques(
            small_block.top,
            tech45,
            techniques=[PatternCheckTechnique()],
            d0_per_cm2=1.0,
        )
        row = card.row("pattern-check")
        assert row.hotspot_delta >= 0
        assert "pattern-check" in card.render()
