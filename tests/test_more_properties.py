"""Additional property-based coverage: DRC invariants, pattern
translation invariance, raster conservation, region boundary laws."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.drc.checks import check_spacing, check_width
from repro.geometry import Rect, Region
from repro.layout import Layer
from repro.litho.raster import rasterize
from repro.patterns import canonical_pattern, extract_snippet, pattern_of
from repro.tech import SpacingRule, WidthRule

M1 = Layer(10, 0, "M1")

rect_strategy = st.tuples(
    st.integers(-500, 500), st.integers(-500, 500), st.integers(20, 200), st.integers(20, 200)
).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))

region_strategy = st.lists(rect_strategy, min_size=1, max_size=5).map(Region)


class TestDrcInvariants:
    @given(region_strategy, st.integers(2, 60))
    @settings(max_examples=40, deadline=None)
    def test_opened_region_passes_width(self, region, w):
        """Any region morphologically opened at w/2 passes the width-w
        check — opening is exactly the width filter."""
        doubled = region.scaled(2)
        cleaned = Region([r for r in (doubled - (doubled - doubled.opened(w - 1))).rects()])
        # scale back: cleaned lives in the doubled lattice; width check on
        # the doubled lattice uses doubled rule value semantics, so check
        # directly in the doubled lattice with rule 2w (even, exact)
        rule = WidthRule("W", M1, 2 * w)
        assert check_width(cleaned, rule) == []

    @given(region_strategy, st.integers(5, 80))
    @settings(max_examples=40, deadline=None)
    def test_rects_spaced_apart_pass_spacing(self, region, s):
        """Plain rectangles placed >= s apart never violate spacing s.

        (Whole *components* would not satisfy this — a multi-rect
        component can carry an internal notch narrower than s, which the
        checker correctly flags; hypothesis found exactly that.)
        """
        shifted_rects = []
        offset = 0
        for rect in region.rects():
            shifted_rects.append(rect.translated(offset - rect.x0, -rect.y0))
            offset += rect.width + s
        rule = SpacingRule("S", M1, s)
        assert check_spacing(Region(shifted_rects), rule) == []

    @given(region_strategy, st.integers(5, 60))
    @settings(max_examples=40, deadline=None)
    def test_single_rects_never_self_violate(self, region, s):
        """A single rectangle has no facing internal edges."""
        for rect in region.rects():
            assert check_spacing(Region(rect), SpacingRule("S", M1, s)) == []


class TestPatternInvariance:
    @given(region_strategy, st.integers(-5000, 5000), st.integers(-5000, 5000))
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, region, dx, dy):
        bb = region.bbox
        anchor = bb.center
        radius = max(bb.width, bb.height)
        snippet_a = extract_snippet({M1: region}, anchor, radius)
        moved = region.translated(dx, dy)
        snippet_b = extract_snippet({M1: moved}, anchor.translated(dx, dy), radius)
        assert pattern_of(snippet_a).category_key == pattern_of(snippet_b).category_key

    @given(region_strategy)
    @settings(max_examples=30, deadline=None)
    def test_canonical_fixed_point(self, region):
        bb = region.bbox
        snippet = extract_snippet({M1: region}, bb.center, max(bb.width, bb.height))
        canon = canonical_pattern(pattern_of(snippet))
        assert canonical_pattern(canon) == canon


class TestRasterConservation:
    @given(region_strategy, st.integers(3, 40))
    @settings(max_examples=30, deadline=None)
    def test_area_conserved(self, region, grid):
        bb = region.bbox
        window = bb.expanded(grid)
        image = rasterize(region, window, grid)
        assert image.sum() * grid * grid == np.float64(region.area).item() or abs(
            image.sum() * grid * grid - region.area
        ) < 0.01 * max(region.area, 1)

    @given(region_strategy, st.integers(3, 40))
    @settings(max_examples=30, deadline=None)
    def test_coverage_bounds(self, region, grid):
        bb = region.bbox
        image = rasterize(region, bb.expanded(grid), grid)
        assert image.min() >= 0.0
        assert image.max() <= 1.0 + 1e-9


class TestRegionBoundary:
    @given(region_strategy)
    @settings(max_examples=40, deadline=None)
    def test_edges_close_up(self, region):
        """Boundary edges traverse each boundary point count-balanced:
        total signed horizontal and vertical displacement is zero."""
        dx = sum(b.x - a.x for a, b in region.edges())
        dy = sum(b.y - a.y for a, b in region.edges())
        assert dx == 0 and dy == 0

    @given(region_strategy)
    @settings(max_examples=40, deadline=None)
    def test_perimeter_at_least_bbox(self, region):
        bb = region.bbox
        if len(region.components()) == 1:
            assert region.perimeter() >= 2 * (bb.width + bb.height)

    @given(region_strategy, st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_snap_covers_original(self, region, grid):
        assert region.snapped(grid).covers(region)
