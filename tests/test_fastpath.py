"""Equivalence and regression tests for the aerial-image fast path.

The whole fast path — SimCache condition reuse, indexed geometry
windowing, vectorized rasterization — is sold on one promise: results
are *bit-identical* to the straightforward per-condition, whole-chip
engine.  These tests pin that promise at every layer, plus the two bug
fixes that rode along (tile-key stability on cache hits, and
``_min_feature_width`` deflation under slab slicing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.geometry import Rect, Region
from repro.litho import ProcessWindow, find_hotspots, pv_bands, scan_full_chip
from repro.litho.fullchip import _ScanGeometry, _ScanPayload, _scan_params, _tile_key
from repro.litho.hotspots import _min_feature_width
from repro.parallel import TileCache, tile_grid


@pytest.fixture(scope="module")
def fastpath_setup(tech45, stdlib45):
    spec = LogicBlockSpec(rows=1, row_width_nm=4000, net_count=5, seed=9, weak_spots=4)
    block = generate_logic_block(tech45, spec, stdlib45)
    from repro.litho import LithoModel

    model = LithoModel(tech45.litho)
    m1 = block.top.region(tech45.layers.metal1)
    return tech45, model, m1


class TestSimCacheEquivalence:
    """SimCache results must be byte-identical to the uncached model."""

    @pytest.mark.parametrize("defocus", [0.0, 40.0, 80.0])
    def test_aerial_image_identical(self, fastpath_setup, defocus):
        _, model, m1 = fastpath_setup
        window = Rect(500, 0, 2500, 1200)
        sim = model.sim_cache(m1, window, defocus_hint=[0.0, 40.0, 80.0])
        direct = model.aerial_image(m1, window, defocus)
        cached = sim.aerial_image(defocus)
        assert cached.shape == direct.shape
        assert np.array_equal(cached, direct)  # bitwise, not approx

    def test_sliced_raster_serves_smaller_halo_exactly(self, fastpath_setup):
        # the raster is kept at the 80 nm-defocus halo; the 0-defocus
        # image is computed from a centred slice of it and must match
        # the independently-rasterized image bit for bit
        _, model, m1 = fastpath_setup
        window = Rect(0, 0, 2000, 1000)
        sim = model.sim_cache(m1, window, defocus_hint=[80.0])
        assert np.array_equal(sim.aerial_image(0.0), model.aerial_image(m1, window, 0.0))

    def test_unhinted_cache_regrows_raster(self, fastpath_setup):
        # ask for the narrow halo first, then the wide one: the cache
        # must re-rasterize bigger and still match both conditions
        _, model, m1 = fastpath_setup
        window = Rect(0, 0, 1500, 900)
        sim = model.sim_cache(m1, window)
        assert np.array_equal(sim.aerial_image(0.0), model.aerial_image(m1, window, 0.0))
        assert np.array_equal(
            sim.aerial_image(80.0), model.aerial_image(m1, window, 80.0)
        )

    @pytest.mark.parametrize("grid", [4, 8])
    def test_print_contour_identical_across_grids(self, fastpath_setup, grid):
        _, model, m1 = fastpath_setup
        window = Rect(250, 0, 2250, 1100)
        corners = ProcessWindow().corners()
        sim = model.sim_cache(
            m1, window, grid, defocus_hint=[c.defocus_nm for c in corners]
        )
        for c in corners:
            assert sim.print_contour(c.dose, c.defocus_nm) == model.print_contour(
                m1, window, c.dose, c.defocus_nm, grid
            )

    def test_plus_minus_defocus_share_one_blur(self, fastpath_setup):
        # sigma combines defocus in quadrature, so ±d collapse to one
        # cached image — and both match their direct simulations
        _, model, m1 = fastpath_setup
        window = Rect(0, 0, 1000, 800)
        sim = model.sim_cache(m1, window, defocus_hint=[60.0, -60.0])
        a = sim.aerial_image(60.0)
        b = sim.aerial_image(-60.0)
        assert a is b
        assert np.array_equal(a, model.aerial_image(m1, window, -60.0))


class TestSweepEquivalence:
    """find_hotspots / pv_bands with the cache on vs off."""

    @pytest.mark.parametrize("jobs_grid", [None, 8])
    def test_find_hotspots_cache_on_off(self, fastpath_setup, jobs_grid):
        tech, model, m1 = fastpath_setup
        window = Rect(0, 0, 3000, 1400)
        limit = tech.metal_width // 2
        fast = find_hotspots(
            model, m1, window, pinch_limit=limit, grid=jobs_grid, use_cache=True
        )
        slow = find_hotspots(
            model, m1, window, pinch_limit=limit, grid=jobs_grid, use_cache=False
        )
        assert fast == slow

    def test_pv_bands_cache_on_off(self, fastpath_setup):
        _, model, m1 = fastpath_setup
        window = Rect(0, 0, 2500, 1200)
        assert pv_bands(model, m1, window, use_cache=True) == pv_bands(
            model, m1, window, use_cache=False
        )

    def test_pv_bands_over_process_grid_conditions(self, fastpath_setup):
        _, model, m1 = fastpath_setup
        window = Rect(0, 0, 2000, 1000)
        conditions = list(ProcessWindow().grid(n_dose=3, n_defocus=3))
        fast = pv_bands(model, m1, window, conditions=conditions, use_cache=True)
        slow = pv_bands(model, m1, window, conditions=conditions, use_cache=False)
        assert fast == slow


class TestScanFastPath:
    """scan_full_chip fast_path on vs off, serial, parallel, cached."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_fast_equals_legacy(self, fastpath_setup, jobs):
        tech, model, m1 = fastpath_setup
        limit = tech.metal_width // 2
        fast = scan_full_chip(
            model, m1, tile_nm=1200, pinch_limit=limit, jobs=jobs, fast_path=True
        )
        legacy = scan_full_chip(
            model, m1, tile_nm=1200, pinch_limit=limit, jobs=jobs, fast_path=False
        )
        assert fast.hotspots == legacy.hotspots
        assert fast.tiles == legacy.tiles

    @pytest.mark.parametrize("writer_fast", [True, False])
    def test_tile_caches_are_interchangeable(self, fastpath_setup, writer_fast):
        # satellite 1 regression: keys digest the *indexed local clip*,
        # which must equal the full-sweep clip's digest — so a cache
        # written by either engine replays warm under the other
        tech, model, m1 = fastpath_setup
        limit = tech.metal_width // 2
        cache = TileCache()
        first = scan_full_chip(
            model, m1, tile_nm=1200, pinch_limit=limit, cache=cache,
            fast_path=writer_fast,
        )
        second = scan_full_chip(
            model, m1, tile_nm=1200, pinch_limit=limit, cache=cache,
            fast_path=not writer_fast,
        )
        assert first.tiles_computed == first.tiles
        assert second.tiles_computed == 0
        assert second.cache_hit_rate == 1.0
        assert second.hotspots == first.hotspots

    def test_tile_key_stability(self, fastpath_setup):
        # the digest from the indexed local clip must equal the digest
        # from clipping the whole-chip region, tile by tile
        tech, model, m1 = fastpath_setup
        process = ProcessWindow()
        g = model.settings.grid_nm
        halo = max(model.halo_nm(c.defocus_nm) for c in process.corners())
        halo = -(-halo // g) * g
        limit = tech.metal_width // 2
        fast = _ScanPayload(
            model, _ScanGeometry(m1), None, process, limit, None, halo, True
        )
        legacy = _ScanPayload(model, m1, None, process, limit, None, halo, False)
        params = _scan_params(fast, limit, None)
        tiles = tile_grid(m1.bbox, 1200, 200)
        assert len(tiles) > 1
        for tile in tiles:
            assert _tile_key(fast, tile, params, halo) == _tile_key(
                legacy, tile, params, halo
            )

    def test_scan_geometry_survives_pickle(self, fastpath_setup):
        import pickle

        _, _, m1 = fastpath_setup
        geo = _ScanGeometry(m1)
        window = Rect(0, 0, 2000, 2000)
        before = sorted(r.as_tuple() for r in geo.near(window))
        clone = pickle.loads(pickle.dumps(geo))
        assert sorted(r.as_tuple() for r in clone.near(window)) == before
        assert clone.clipped(window) == geo.clipped(window)


class TestMinFeatureWidth:
    """Satellite 2: slab slicing must not deflate the estimate."""

    def test_l_shape_reports_arm_thickness(self):
        region = Region([Rect(0, 0, 300, 100), Rect(0, 0, 100, 400)])
        assert _min_feature_width(region) == 100

    def test_neighbour_edges_do_not_deflate_a_bar(self):
        # the canonical slab cuts of B (x=480) and C (x=500) slice the
        # 1000-wide bar into a 20-wide fragment; the raw-rect minimum
        # reported 20 where no feature is narrower than 100
        bar = Rect(0, 0, 1000, 100)
        b = Rect(480, 300, 580, 400)
        c = Rect(500, 500, 600, 600)
        region = Region([bar, b, c])
        # the slicing really happens (guard against Region changes
        # silently making this test vacuous)
        assert any(r.x1 - r.x0 < 100 for r in region.rects())
        assert _min_feature_width(region) == 100

    def test_genuinely_narrow_feature_still_detected(self):
        region = Region([Rect(0, 0, 1000, 100), Rect(480, 300, 500, 400)])
        assert _min_feature_width(region) == 20

    def test_single_rect(self):
        assert _min_feature_width(Region([Rect(0, 0, 50, 200)])) == 50
