"""Unit tests for the grid spatial index."""

import pytest

from repro.geometry import GridIndex, Rect


class TestGridIndex:
    def test_insert_and_query(self):
        index = GridIndex(cell_size=100)
        index.insert(Rect(0, 0, 10, 10), "a")
        index.insert(Rect(500, 500, 510, 510), "b")
        assert index.query(Rect(0, 0, 50, 50)) == ["a"]
        assert index.query(Rect(490, 490, 600, 600)) == ["b"]
        assert len(index) == 2

    def test_query_touching_counts(self):
        index = GridIndex(cell_size=100)
        index.insert(Rect(0, 0, 10, 10), "a")
        assert index.query(Rect(10, 10, 20, 20)) == ["a"]  # closed touch

    def test_query_dedup_across_buckets(self):
        index = GridIndex(cell_size=10)
        index.insert(Rect(0, 0, 100, 100), "big")  # spans many buckets
        assert index.query(Rect(0, 0, 100, 100)) == ["big"]

    def test_query_empty(self):
        index = GridIndex()
        assert index.query(Rect(0, 0, 1, 1)) == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0)

    def test_extend_and_items(self):
        index = GridIndex(cell_size=50)
        index.extend([(Rect(0, 0, 1, 1), 1), (Rect(5, 5, 6, 6), 2)])
        assert [item for _, item in index.items()] == [1, 2]

    def test_query_pairs_within_separation(self):
        index = GridIndex(cell_size=100)
        index.insert(Rect(0, 0, 10, 10), "a")
        index.insert(Rect(20, 0, 30, 10), "b")  # 10 apart
        index.insert(Rect(200, 0, 210, 10), "c")  # far away
        pairs = set(frozenset(p) for p in index.query_pairs(15))
        assert frozenset(("a", "b")) in pairs
        assert not any("c" in p for p in pairs)

    def test_query_pairs_each_once(self):
        index = GridIndex(cell_size=10)
        # large overlapping rects share many buckets
        index.insert(Rect(0, 0, 50, 50), "a")
        index.insert(Rect(10, 10, 60, 60), "b")
        pairs = list(index.query_pairs(5))
        assert pairs == [("a", "b")]

    def test_query_pairs_across_distant_buckets(self):
        index = GridIndex(cell_size=10)
        index.insert(Rect(0, 0, 5, 5), "a")
        index.insert(Rect(95, 0, 100, 5), "b")  # 90 apart, far beyond a bucket
        assert list(index.query_pairs(100)) == [("a", "b")]
        assert list(index.query_pairs(50)) == []

    def test_negative_coordinates(self):
        index = GridIndex(cell_size=64)
        index.insert(Rect(-200, -200, -190, -190), "neg")
        assert index.query(Rect(-205, -205, -180, -180)) == ["neg"]

    def test_query_straddling_origin(self):
        # bucket math must floor (not truncate toward zero) so windows
        # spanning negative and positive space see every bucket once
        index = GridIndex(cell_size=100)
        index.insert(Rect(-150, -150, -140, -140), "nw")
        index.insert(Rect(-10, -10, 10, 10), "origin")
        index.insert(Rect(140, 140, 150, 150), "se")
        hits = index.query(Rect(-160, -160, 160, 160))
        assert hits == ["nw", "origin", "se"]
        assert index.query(Rect(-50, -50, -20, -20)) == []
        assert index.query(Rect(-11, -11, -10, -10)) == ["origin"]

    def test_query_pairs_negative_coordinates(self):
        index = GridIndex(cell_size=32)
        index.insert(Rect(-100, -100, -90, -90), "a")
        index.insert(Rect(-80, -100, -70, -90), "b")  # 10 apart
        assert list(index.query_pairs(15)) == [("a", "b")]


class TestQueryInto:
    def test_matches_query(self):
        index = GridIndex(cell_size=64)
        for i in range(40):
            index.insert(Rect(i * 30, (i * 7) % 90, i * 30 + 25, (i * 7) % 90 + 25), i)
        buf: list[int] = []
        for window in (Rect(0, 0, 200, 200), Rect(100, 10, 700, 80), Rect(900, 0, 950, 50)):
            assert index.query_into(window, buf) == index.query(window)

    def test_reuses_buffer_in_place(self):
        index = GridIndex(cell_size=100)
        index.insert(Rect(0, 0, 10, 10), "a")
        index.insert(Rect(500, 500, 510, 510), "b")
        buf = ["stale"]
        out = index.query_into(Rect(0, 0, 50, 50), buf)
        assert out is buf
        assert buf == ["a"]
        assert index.query_into(Rect(490, 490, 600, 600), buf) == ["b"]

    def test_dedup_across_buckets(self):
        index = GridIndex(cell_size=10)
        index.insert(Rect(0, 0, 100, 100), "big")  # spans many buckets
        buf: list[str] = []
        assert index.query_into(Rect(0, 0, 100, 100), buf) == ["big"]

    def test_duplicate_items_counted_separately(self):
        # dedup is per insertion, not per value: the same payload
        # inserted twice must come back twice
        index = GridIndex(cell_size=50)
        index.insert(Rect(0, 0, 10, 10), "x")
        index.insert(Rect(20, 0, 30, 10), "x")
        buf: list[str] = []
        assert index.query_into(Rect(0, 0, 40, 40), buf) == ["x", "x"]

    def test_empty_and_negative(self):
        index = GridIndex(cell_size=64)
        buf = ["stale"]
        assert index.query_into(Rect(0, 0, 1, 1), buf) == []
        index.insert(Rect(-200, -200, -190, -190), "neg")
        assert index.query_into(Rect(-205, -205, -180, -180), buf) == ["neg"]
