"""Fault-tolerant tile execution: injection, retry, quarantine,
timeouts, and checkpoint/resume.

The matrix the tentpole promises: a transient failure is retried and
recovered, a permanent failure is quarantined (bisected down to the
poison tile) without killing the run, a hung chunk is killed by the
timeout, and an interrupted run resumes from its checkpoint with
byte-identical results — each at ``jobs=1`` and ``jobs=4``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.designgen import LogicBlockSpec, generate_logic_block
from repro.geometry import Rect, Region
from repro.litho import LithoModel, scan_full_chip
from repro.parallel import (
    AbortRun,
    Checkpoint,
    FaultPlan,
    FaultRule,
    InjectedFault,
    TileExecutor,
)
from repro.parallel.faults import ENV_VAR


def _ident(payload, item):
    return item * 10


def _boom(payload, item):
    raise ValueError(f"boom on {item}")


def _boom_on_3(payload, item):
    if item == 3:
        raise ValueError("boom on 3")
    return item * 10


class TestFaultPlanGrammar:
    def test_parse_fail_with_count(self):
        plan = FaultPlan.parse("tile:17:fail:2")
        assert plan.rules == (FaultRule("tile", 17, "fail", 2.0),)

    def test_parse_multiple_entries(self):
        plan = FaultPlan.parse("tile:5:fail:1, chunk:3:hang:0.5 ,tile:40:fail")
        assert len(plan.rules) == 3
        assert plan.rules[1] == FaultRule("chunk", 3, "hang", 0.5)
        assert plan.rules[2].arg == float("inf")  # omitted count = forever

    def test_parse_forever_keyword(self):
        plan = FaultPlan.parse("tile:1:fail:forever")
        assert plan.rules[0].arg == float("inf")

    def test_parse_abort(self):
        plan = FaultPlan.parse("tile:9:abort")
        assert plan.rules[0].action == "abort"

    @pytest.mark.parametrize(
        "bad", ["tile:x:fail", "nope:1:fail", "tile:1:explode", "tile:1", "tile:1:fail:x"]
    )
    def test_parse_rejects_bad_entries(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({ENV_VAR: "  "}) is None
        plan = FaultPlan.from_env({ENV_VAR: "tile:2:fail:1"})
        assert plan == FaultPlan.parse("tile:2:fail:1")

    def test_fail_n_fires_then_clears(self):
        plan = FaultPlan.parse("tile:17:fail:2")
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                plan.fire("tile", 17, attempt)
        plan.fire("tile", 17, 2)  # raises twice then succeeds
        plan.fire("tile", 16, 0)  # other tiles untouched

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.parse("tile:1:fail:1,chunk:2:hang:9")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        ckpt = Checkpoint.open(path, "sig-a")
        ckpt.record(3, "three")
        ckpt.record(7, "seven")
        ckpt.flush()
        again = Checkpoint.open(path, "sig-a")
        assert len(again) == 2
        assert again.get(3) == "three"
        assert 7 in again and 4 not in again

    def test_signature_mismatch_discards(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        ckpt = Checkpoint.open(path, "sig-a")
        ckpt.record(1, "one")
        ckpt.flush()
        stale = Checkpoint.open(path, "sig-B")
        assert len(stale) == 0

    def test_resume_false_starts_fresh(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        ckpt = Checkpoint.open(path, "sig-a")
        ckpt.record(1, "one")
        ckpt.flush()
        fresh = Checkpoint.open(path, "sig-a", resume=False)
        assert len(fresh) == 0

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        path.write_bytes(b"not a pickle")
        assert len(Checkpoint.open(path, "sig-a")) == 0

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        ckpt = Checkpoint.open(path, "sig-a")
        ckpt.record(1, "one")
        ckpt.flush()
        assert path.exists()
        ckpt.clear()
        assert not path.exists()
        assert len(ckpt) == 0


class TestExecutorFaultMatrix:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_retry_then_succeed(self, jobs):
        plan = FaultPlan.parse("tile:2:fail:1")
        out = TileExecutor(jobs).run(_ident, None, list(range(8)), fault_plan=plan)
        assert out.results == [i * 10 for i in range(8)]
        assert out.quarantined == []
        assert out.retries >= 1

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_quarantine_after_exhaustion(self, jobs):
        plan = FaultPlan.parse("tile:5:fail")
        out = TileExecutor(jobs).run(
            _ident, None, list(range(8)), fault_plan=plan, max_retries=2
        )
        assert out.results[5] is None
        assert [r for i, r in enumerate(out.results) if i != 5] == [
            i * 10 for i in range(8) if i != 5
        ]
        assert len(out.quarantined) == 1
        q = out.quarantined[0]
        assert q.index == 5 and q.attempts == 3
        assert "InjectedFault" in q.error

    def test_bisection_isolates_poison_tile(self):
        # one chunk of 8; the chunk fails until bisection corners item 3
        out = TileExecutor(4, chunk_size=8).run(
            _boom_on_3, None, list(range(8)), max_retries=1
        )
        assert out.results[3] is None
        assert [r for i, r in enumerate(out.results) if i != 3] == [
            i * 10 for i in range(8) if i != 3
        ]
        assert [q.index for q in out.quarantined] == [3]
        assert out.bisections >= 1

    def test_non_injected_exception_quarantines_too(self):
        out = TileExecutor(1).run(_boom, None, [0], max_retries=1)
        assert out.results == [None]
        assert "ValueError" in out.quarantined[0].error

    def test_timeout_kills_hung_chunk(self):
        plan = FaultPlan.parse("chunk:0:hang:30")
        out = TileExecutor(2, chunk_size=1).run(
            _ident,
            None,
            list(range(4)),
            fault_plan=plan,
            timeout=0.4,
            max_retries=1,
        )
        # chunk 0 hangs on every execution: timed out, retried, timed
        # out again, quarantined; the innocent tiles all complete
        assert out.results[0] is None
        assert out.results[1:] == [10, 20, 30]
        assert out.timeouts >= 2
        assert [q.index for q in out.quarantined] == [0]
        assert "timeout" in out.quarantined[0].error

    def test_timeout_applies_serial_runs_via_pool(self):
        # jobs=1 + timeout still gets a (single-worker) pool, so a hung
        # tile cannot wedge the run
        plan = FaultPlan.parse("chunk:0:hang:30")
        out = TileExecutor(1, chunk_size=1).run(
            _ident, None, [7], fault_plan=plan, timeout=0.4, max_retries=0
        )
        assert out.results == [None]
        assert out.timeouts == 1

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_abort_flushes_checkpoint_then_resume_completes(self, tmp_path, jobs):
        path = tmp_path / "ckpt.pkl"
        plan = FaultPlan.parse("tile:6:abort")
        ckpt = Checkpoint.open(path, "sig")
        with pytest.raises(AbortRun):
            TileExecutor(jobs).run(
                _ident, None, list(range(8)), fault_plan=plan, checkpoint=ckpt
            )
        flushed = Checkpoint.open(path, "sig")
        done_before = frozenset(flushed)
        assert 0 < len(done_before) < 8  # partial progress survived the abort

        resumed = TileExecutor(jobs).run(
            _ident, None, list(range(8)), checkpoint=flushed
        )
        assert resumed.results == [i * 10 for i in range(8)]
        assert resumed.resumed_keys == done_before
        assert resumed.computed == 8 - len(done_before)

    def test_env_var_drives_injection(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tile:1:fail")
        out = TileExecutor(1).run(_ident, None, [0, 1, 2], max_retries=0)
        assert [q.index for q in out.quarantined] == [1]

    def test_explicit_plan_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tile:1:fail")
        out = TileExecutor(1).run(
            _ident, None, [0, 1, 2], fault_plan=FaultPlan(), max_retries=0
        )
        assert out.quarantined == []


class RecordingPlan(FaultPlan):
    """A FaultPlan that logs every fire() consultation to a file.

    Module-level so it pickles by reference into pool workers; the
    log file is append-mode (atomic for short lines), so records from
    every worker process land in one place.  The recorded
    ``scope:index:attempt`` stream *is* the deterministic-injection
    contract: it must not depend on jobs, timeouts, or requeues.
    """

    def __init__(self, rules=(), path: str = "") -> None:
        super().__init__(rules)
        self.path = path

    def fire(self, scope, index, attempt) -> None:
        with open(self.path, "a") as fh:
            fh.write(f"{scope}:{index}:{attempt}\n")
        super().fire(scope, index, attempt)


def _fires_for(path, scope, index):
    if not os.path.exists(path):
        return []
    out = []
    for line in open(path).read().splitlines():
        s, i, attempt = line.split(":")
        if s == scope and int(i) == index:
            out.append(int(attempt))
    return out


class TestTimeoutPathRegressions:
    """PR-6 satellite fixes: the hung-chunk deadline clock and the
    attempt ordinals of innocent chunks requeued by a timeout."""

    def test_hung_chunk_detected_promptly_with_fresh_clock(self):
        # regression for the stale-`now` deadline check: `now` was read
        # once per outer loop, before submission and result drains, so
        # detection could lag the real clock.  A 30 s hang against a
        # 0.4 s timeout must be killed in ~the timeout, never anywhere
        # near the hang duration.
        plan = FaultPlan.parse("chunk:0:hang:30")
        t0 = time.perf_counter()
        out = TileExecutor(2, chunk_size=1).run(
            _ident, None, list(range(6)), fault_plan=plan,
            timeout=0.4, max_retries=0,
        )
        elapsed = time.perf_counter() - t0
        assert out.results[0] is None
        assert out.results[1:] == [10, 20, 30, 40, 50]
        assert out.timeouts == 1
        assert [q.index for q in out.quarantined] == [0]
        assert elapsed < 15  # killed by the timeout, not the hang

    def test_innocent_requeue_preserves_fault_ordinals(self, tmp_path):
        """A chunk killed innocent by a sibling's timeout is requeued
        unpenalized — including its tiles' execution ordinals, which
        were bumped at submission.  Without the rollback, a
        ``tile:key:fail:n`` plan fires a different attempt sequence
        under jobs=2 than serially, breaking deterministic injection.

        Choreography (chunk_size=2 → c0=(0,1), c1=(2,3)): c0 hangs for
        30 s and times out at 0.5 s.  c1's tile 2 sleeps 0.3 s, tile 3
        fails its first execution — so c1 fails at ~0.3 s, retries, and
        is mid-sleep (0.3→0.6 s) when c0's timeout kills the pool at
        0.5 s.  c1 is requeued innocent; its third submission must
        re-run tile 3 at attempt 1 (as a serial run would), not drift
        to attempt 2.
        """
        rules = FaultPlan.parse(
            "chunk:0:hang:30,tile:2:hang:0.3,tile:3:fail:1"
        ).rules
        serial_log = str(tmp_path / "serial.log")
        serial = TileExecutor(1).run(
            _ident, None, list(range(4)),
            fault_plan=RecordingPlan(rules, serial_log),
            backoff_s=0.0,
        )
        assert serial.results == [0, 10, 20, 30]

        pooled_log = str(tmp_path / "pooled.log")
        pooled = TileExecutor(2, chunk_size=2).run(
            _ident, None, list(range(4)),
            fault_plan=RecordingPlan(rules, pooled_log),
            timeout=0.5, max_retries=2, backoff_s=0.0,
        )
        assert pooled.results == [0, 10, 20, 30]
        assert pooled.quarantined == []
        assert pooled.timeouts >= 1

        # the faulted tile's attempt stream is the contract: identical
        # fire ordinals serially and under the timeout/requeue path
        assert _fires_for(serial_log, "tile", 3) == [0, 1]
        assert _fires_for(pooled_log, "tile", 3) == _fires_for(
            serial_log, "tile", 3
        )


class TestPoolFailurePolicy:
    def test_construction_failure_falls_back_to_serial(self, monkeypatch):
        def no_pool(*a, **k):
            raise PermissionError("no semaphores in this sandbox")

        monkeypatch.setattr(TileExecutor, "_make_pool", no_pool)
        out = TileExecutor(4).map(_ident, None, list(range(6)))
        assert out == [i * 10 for i in range(6)]

    def test_mid_run_failure_propagates(self):
        # a worker exception is a real failure: map() must raise it, not
        # quietly rerun everything serially
        with pytest.raises(ValueError, match="boom"):
            TileExecutor(2).map(_boom_on_3, None, list(range(6)))

    def test_serial_map_propagates_too(self):
        with pytest.raises(ValueError, match="boom"):
            TileExecutor(1).map(_boom_on_3, None, list(range(6)))


@pytest.fixture(scope="module")
def chip64(tech45, stdlib45):
    """A block scanned as an 8x8 = 64-tile grid, plus its fault-free
    serial baseline."""
    spec = LogicBlockSpec(rows=1, row_width_nm=7500, net_count=4, seed=3, weak_spots=3)
    block = generate_logic_block(tech45, spec, stdlib45)
    model = LithoModel(tech45.litho)
    m1 = block.top.region(tech45.layers.metal1)
    extent = Rect(0, 0, 8000, 8000)
    limit = tech45.metal_width // 2
    kwargs = dict(extent=extent, tile_nm=1000, pinch_limit=limit)
    baseline = scan_full_chip(model, m1, **kwargs)
    assert baseline.tiles == 64
    return model, m1, kwargs, baseline


def _owned_hotspots(report, tile_index, tile_nm=1000, extent=Rect(0, 0, 8000, 8000)):
    from repro.parallel import tile_grid

    tile = tile_grid(extent, tile_nm)[tile_index]
    return [h for h in report.hotspots
            if tile.owns(h.marker.center.x, h.marker.center.y)]


class TestScanFaultAcceptance:
    def test_two_transient_one_permanent(self, chip64):
        """The issue's acceptance scenario: 64 tiles, two transient
        faults (recovered by retry) and one permanent fault (quarantined);
        every non-quarantined tile matches the fault-free serial scan."""
        model, m1, kwargs, baseline = chip64
        plan = FaultPlan.parse("tile:5:fail:1,tile:23:fail:1,tile:40:fail")
        report = scan_full_chip(
            model, m1, jobs=4, fault_plan=plan, max_retries=2, **kwargs
        )
        assert [q.index for q in report.quarantined] == [40]
        assert report.ok is False
        assert report.tiles_computed == 63
        # tile 40's owned hotspots are the only possible difference
        lost = _owned_hotspots(baseline, 40)
        assert report.hotspots == [h for h in baseline.hotspots if h not in lost]
        assert "QUARANTINED" in report.summary()

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_interrupt_then_resume_is_identical(self, chip64, tmp_path, jobs):
        model, m1, kwargs, baseline = chip64
        ckpt = str(tmp_path / f"scan-{jobs}.ckpt")
        with pytest.raises(AbortRun):
            scan_full_chip(
                model, m1, jobs=jobs,
                fault_plan=FaultPlan.parse("tile:20:abort"),
                checkpoint_file=ckpt, **kwargs,
            )
        resumed = scan_full_chip(
            model, m1, jobs=jobs, checkpoint_file=ckpt, resume=True, **kwargs
        )
        assert resumed.tiles_resumed > 0
        assert resumed.tiles_computed == 64 - resumed.tiles_resumed
        assert resumed.hotspots == baseline.hotspots
        assert resumed.quarantined == []
        import os

        assert not os.path.exists(ckpt)  # completed runs clear their checkpoint

    def test_resume_against_edited_geometry_recomputes_all(self, chip64, tmp_path):
        model, m1, kwargs, baseline = chip64
        ckpt = str(tmp_path / "scan.ckpt")
        with pytest.raises(AbortRun):
            scan_full_chip(
                model, m1, fault_plan=FaultPlan.parse("tile:20:abort"),
                checkpoint_file=ckpt, **kwargs,
            )
        edited = m1 | Region(Rect(7800, 7800, 7950, 7950))
        resumed = scan_full_chip(
            model, edited, checkpoint_file=ckpt, resume=True, **kwargs
        )
        assert resumed.tiles_resumed == 0  # stale signature: fresh run
        assert resumed.tiles_computed == 64


class TestDrcFaultTolerance:
    def test_quarantined_task_does_not_kill_run(self, small_block, tech45):
        from repro.drc import run_drc

        deck = tech45.rules.minimum()
        baseline = run_drc(small_block.top, deck, jobs=1, tile_nm=2500)
        report = run_drc(
            small_block.top, deck, jobs=2, tile_nm=2500,
            fault_plan=FaultPlan.parse("tile:1:fail"), max_retries=1,
        )
        assert [q.index for q in report.quarantined] == [1]
        assert report.ok is False
        assert report.tiles_computed == report.tiles - 1
        assert len(report.violations) <= len(baseline.violations)

    def test_transient_fault_recovers_identically(self, small_block, tech45):
        from repro.drc import run_drc

        deck = tech45.rules.minimum()
        baseline = run_drc(small_block.top, deck, jobs=1, tile_nm=2500)
        report = run_drc(
            small_block.top, deck, jobs=2, tile_nm=2500,
            fault_plan=FaultPlan.parse("tile:0:fail:1,tile:2:fail:1"),
        )
        assert report.quarantined == []
        assert report.violations == baseline.violations

    def test_drc_resume_after_abort(self, small_block, tech45, tmp_path):
        from repro.drc import run_drc

        deck = tech45.rules.minimum()
        baseline = run_drc(small_block.top, deck, jobs=1, tile_nm=2500)
        ckpt = str(tmp_path / "drc.ckpt")
        with pytest.raises(AbortRun):
            run_drc(
                small_block.top, deck, tile_nm=2500,
                fault_plan=FaultPlan.parse("tile:2:abort"),
                checkpoint_file=ckpt,
            )
        resumed = run_drc(
            small_block.top, deck, tile_nm=2500,
            checkpoint_file=ckpt, resume=True,
        )
        assert resumed.tiles_resumed > 0
        assert resumed.violations == baseline.violations
