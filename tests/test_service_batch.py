"""Tests for the batched service surface (PR 8's api redesign).

Covers ``VerificationService.submit_batch`` partial-failure semantics,
the ``batch-submit`` / ``stream-results`` wire ops over a live daemon,
connection reuse on :class:`SocketClient` (context-manager lifecycle
plus the legacy one-shot path), and the equivalence of the in-process
and socket batch event streams.
"""

from __future__ import annotations

import threading

import pytest

from repro.matrix import MatrixSpec, enumerate_scenarios
from repro.service import (
    BadRequestError,
    Job,
    Priority,
    QueueFullError,
    ServiceClient,
    ServiceDaemon,
    SocketClient,
    VerificationService,
)


def _matrix_items(count=3):
    """Cheap real job payloads: small DPT-only matrix scenarios."""
    spec = MatrixSpec(nodes=(45,), cells=("INV_X1",), corners=1, checks=("dpt",))
    scenarios = enumerate_scenarios(spec)
    assert len(scenarios) >= count
    return [
        {"kind": "matrix", "params": s.item()} for s in scenarios[:count]
    ]


@pytest.fixture()
def daemon(tmp_path):
    state_file = str(tmp_path / "svc.json")
    server = ServiceDaemon(VerificationService(jobs=1), state_file=state_file)
    thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
    thread.start()
    yield server, state_file
    SocketClient.from_state_file(path=state_file).shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive()


class TestInProcessBatch:
    def test_partial_failure_returns_errors_as_values(self):
        items = _matrix_items(2)
        items.insert(1, {"kind": "nope", "params": {}})
        items.append("not even a dict")
        with VerificationService(jobs=1) as service:
            entries = service.submit_batch(items)
            assert len(entries) == len(items)
            assert isinstance(entries[0], Job)
            assert isinstance(entries[1], BadRequestError)
            assert isinstance(entries[2], Job)
            assert isinstance(entries[3], BadRequestError)
            for entry in entries:
                if isinstance(entry, Job):
                    service.wait(entry, timeout=60)
                    assert entry.snapshot()["state"] == "done"

    def test_shed_mid_batch_never_aborts_the_rest(self):
        items = _matrix_items(3)
        with VerificationService(jobs=1, max_depth=1, autostart=False) as service:
            entries = service.submit_batch(items)
            assert isinstance(entries[0], Job)
            assert isinstance(entries[1], QueueFullError)
            assert isinstance(entries[2], QueueFullError)

    def test_service_client_batch_events(self):
        items = _matrix_items(2)
        items.insert(1, {"kind": "nope", "params": {}})
        with VerificationService(jobs=1) as service:
            events = list(ServiceClient(service).submit_batch(items))
        assert [e["index"] for e in events] == [0, 1, 2]
        assert events[0]["job"]["state"] == "done"
        assert events[0]["job"]["result"]["scenario"]["check"] == "dpt"
        assert events[1]["error"]["code"] == "bad-request"
        assert events[2]["job"]["state"] == "done"

    def test_batch_jobs_run_on_the_background_band(self):
        with VerificationService(jobs=1, autostart=False) as service:
            entries = service.submit_batch(_matrix_items(1))
            assert entries[0].priority is Priority.BACKGROUND


class TestDaemonBatch:
    def test_batch_submit_streams_results_in_index_order(self, daemon):
        _, state_file = daemon
        items = _matrix_items(3)
        items.insert(1, {"kind": "nope", "params": {}})
        with SocketClient.from_state_file(path=state_file) as client:
            events = list(client.submit_batch(items))
        assert [e["index"] for e in events] == [0, 1, 2, 3]
        assert events[1]["error"]["code"] == "bad-request"
        for event in (events[0], events[2], events[3]):
            assert event["job"]["state"] == "done"
            assert event["job"]["result"]["scenario"]["check"] == "dpt"

    def test_socket_and_in_process_batches_emit_identical_events(self, daemon):
        server, state_file = daemon
        items = _matrix_items(2)
        with SocketClient.from_state_file(path=state_file) as client:
            wire = list(client.submit_batch(items))
        local = list(ServiceClient(server.service).submit_batch(items))

        def comparable(events):
            return [
                (e["index"], e["job"]["state"], e["job"]["result"]["scenario"])
                for e in events
            ]

        assert comparable(wire) == comparable(local)

    def test_stream_results_after_nowait_submits(self, daemon):
        _, state_file = daemon
        with SocketClient.from_state_file(path=state_file) as client:
            ids = [
                client.submit("matrix", item["params"], wait=False)["id"]
                for item in _matrix_items(2)
            ]
            events = list(client.stream_results([*ids, 10**9]))
        assert [e["index"] for e in events] == [0, 1, 2]
        for event in events[:2]:
            assert event["job"]["state"] == "done"
        assert events[2]["error"]["code"] == "unknown-job"

    def test_connection_reuse_and_one_shot(self, daemon):
        _, state_file = daemon
        # context-managed client: many exchanges over one socket
        with SocketClient.from_state_file(path=state_file) as client:
            assert client.connected
            first = client.ping()
            sock = client._sock
            second = client.ping()
            assert client._sock is sock  # same connection, no re-dial
            assert first["pong"] and second["pong"]
        assert not client.connected  # __exit__ closed it
        # legacy one-shot path: no connect() call, closed after each use
        one_shot = SocketClient.from_state_file(path=state_file)
        assert one_shot.ping()["pong"]
        assert not one_shot.connected
        assert one_shot.metrics()["jobs"] is not None
        assert not one_shot.connected

    def test_empty_batch_is_a_protocol_error(self, daemon):
        _, state_file = daemon
        with SocketClient.from_state_file(path=state_file) as client:
            with pytest.raises(BadRequestError):
                list(client.submit_batch([]))
